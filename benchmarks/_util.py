"""Shared helpers for the benchmark suite.

Scale control
-------------
The paper's experiments run 32,768 simulated ranks; the benchmarks default
to a scaled machine so the whole suite completes in minutes.  Environment
variables select the scale:

* ``XSIM_BENCH_RANKS=<n>`` — rank count for the Table II reproduction and
  the heavier ablations (default 512);
* ``XSIM_FULL_SCALE=1``    — the paper-exact 32,768 ranks (tens of minutes
  of host time for the full Table II).

Reporting
---------
``report()`` prints *and* buffers each line; ``benchmarks/conftest.py``
re-emits the buffer in pytest's terminal summary, so the regenerated tables
always appear in ``pytest benchmarks/ --benchmark-only | tee ...`` output
regardless of the capture mode.
"""

from __future__ import annotations

import os

#: Lines accumulated for the end-of-run summary (see conftest.py).
REPORT_BUFFER: list[str] = []


def bench_ranks(default: int = 512) -> int:
    """Rank count for scaled benchmark runs (see module docstring)."""
    if os.environ.get("XSIM_FULL_SCALE") == "1":
        return 32768
    return int(os.environ.get("XSIM_BENCH_RANKS", default))


def report(*lines: str) -> None:
    """Record (and echo) regenerated-table lines."""
    for line in lines:
        REPORT_BUFFER.append(line)
        print(line)


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
