"""Benchmark-suite plumbing: regenerated tables are printed after the run.

pytest's default capture swallows stdout (including ``sys.__stdout__``
writes under fd-capture), so :func:`benchmarks._util.report` buffers its
lines and this hook emits them in the terminal summary — the regenerated
paper tables therefore always appear in
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` output.
"""

from benchmarks import _util


def pytest_terminal_summary(terminalreporter):
    if not _util.REPORT_BUFFER:
        return
    terminalreporter.write_sep("=", "regenerated paper tables and series")
    for line in _util.REPORT_BUFFER:
        terminalreporter.write_line(line)
