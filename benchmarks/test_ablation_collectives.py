"""Ablation: linear vs. tree vs. analytic collective algorithms.

The paper fixes "MPI collectives utilize linear algorithms" for its
simulated machine.  This bench quantifies that choice: the linear barrier's
cost grows linearly with rank count (the root serializes per-message
software overheads), while the binomial tree grows logarithmically — the
crossover behaviour any co-design study of collective algorithms needs.
The analytic fast path must track the linear algorithm it models.
"""

from repro.apps.collective_bench import CollectiveBenchConfig, collective_bench
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim

from benchmarks._util import once, report

SIZES = (32, 128, 512)


def _barrier_time(nranks: int, algo: str) -> float:
    system = SystemConfig.paper_system(nranks=nranks, collective_algorithm=algo)
    sim = XSim(system)
    cfg = CollectiveBenchConfig(operations=("barrier",), sizes=(0,))
    result = sim.run(collective_bench, args=(cfg,))
    timings = [v.timings[("barrier", 0)] for v in result.exit_values.values()]
    return max(timings)


def _sweep():
    return {
        algo: {n: _barrier_time(n, algo) for n in SIZES}
        for algo in ("linear", "tree", "analytic")
    }


def test_collective_algorithm_ablation(benchmark):
    results = once(benchmark, _sweep)

    report("", "=== Ablation: collective algorithms (barrier virtual time) ===",
           f"{'ranks':>6} {'linear':>12} {'tree':>12} {'analytic':>12}")
    for n in SIZES:
        report(
            f"{n:>6} {results['linear'][n]:>11.4f}s {results['tree'][n]:>11.4f}s "
            f"{results['analytic'][n]:>11.4f}s"
        )

    for n in SIZES:
        # the tree algorithm beats linear once overheads dominate
        assert results["tree"][n] < results["linear"][n]
        # the analytic model tracks the linear algorithm within 2x
        assert 0.4 < results["analytic"][n] / results["linear"][n] < 2.5

    # scaling: linear grows ~linearly (16x ranks -> >8x cost), tree ~log
    lin_growth = results["linear"][512] / results["linear"][32]
    tree_growth = results["tree"][512] / results["tree"][32]
    assert lin_growth > 8.0
    assert tree_growth < lin_growth / 2.0
