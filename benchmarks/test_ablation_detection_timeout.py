"""Ablation: the network failure-detection timeout.

Paper §IV-C: failure detection "is purely based on simulated network
communication timeouts when trying to communicate with a failed simulated
MPI process.  The simulated network communication timeout is configurable
as part of xSim's network model."  This bench quantifies that knob: the
time between a process failure and the resulting MPI_Abort equals the
configured timeout, and E2 of a full failure/restart experiment grows with
it (each failure cycle pays the detection latency once per blocked
detection path).
"""

import pytest

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver

from benchmarks._util import once, report

NRANKS = 64
WORKLOAD = HeatConfig.paper_workload(checkpoint_interval=250, nranks=NRANKS)
TIMEOUTS = ("1s", "10s", "60s", "300s")


def _run(timeout: str):
    system = SystemConfig.paper_system(nranks=NRANKS, detection_timeout=timeout)
    driver = RestartDriver(
        system,
        heat3d,
        make_args=lambda store: (WORKLOAD, store),
        schedule=FailureSchedule.of((13, 2000.0)),
    )
    run = driver.run()
    failure_t = run.segments[0].result.failures[0][1]
    abort_t = run.segments[0].result.abort_time
    return {"e2": run.e2, "detect_latency": abort_t - failure_t}


def test_detection_timeout_ablation(benchmark):
    results = once(benchmark, lambda: {t: _run(t) for t in TIMEOUTS})

    report("", "=== Ablation: failure-detection timeout (one failure at t=2000s) ===",
           f"{'timeout':>8} {'failure->abort':>15} {'E2':>12}")
    for t, r in results.items():
        report(f"{t:>8} {r['detect_latency']:>13.1f}s {r['e2']:>10,.1f}s")

    from repro.util.units import parse_time

    e2s = []
    for t in TIMEOUTS:
        r = results[t]
        # the failure->abort latency equals the configured timeout
        assert r["detect_latency"] == pytest.approx(parse_time(t), rel=1e-6)
        e2s.append(r["e2"])
    # E2 grows monotonically with the detection timeout
    assert e2s == sorted(e2s)
    assert e2s[-1] - e2s[0] == pytest.approx(299.0, abs=5.0)
