"""Ablation: the eager/rendezvous protocol threshold.

The paper fixes "the simulated eager communication threshold ... to 256 kB,
i.e., MPI payloads above 256 kB utilize the simulated rendezvous protocol."
This bench sweeps the message size across the threshold and shows the
protocol switch: a latency step of one RTS/CTS round trip right above
256 kB, and sender-completion semantics changing from buffered to
synchronizing.
"""

import pytest

from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim

from benchmarks._util import once, report

SIZES = (1_000, 64_000, 255_999, 256_000, 256_001, 512_000, 4_000_000)


def _pingpong_time(nbytes: int) -> float:
    system = SystemConfig.paper_system(nranks=2)

    def app(mpi):
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=nbytes, tag=0)
            yield from mpi.recv(1, tag=1)
        else:
            yield from mpi.recv(0, tag=0)
            yield from mpi.send(0, nbytes=nbytes, tag=1)
        done = mpi.wtime()
        yield from mpi.finalize()
        return done

    result = XSim(system).run(app)
    return result.exit_values[0]


def _sweep():
    return {n: _pingpong_time(n) for n in SIZES}


def test_eager_threshold_ablation(benchmark):
    times = once(benchmark, _sweep)

    report("", "=== Ablation: eager/rendezvous threshold (256 kB) ===",
           f"{'bytes':>10} {'pingpong':>14} {'protocol':>12}")
    for n, t in times.items():
        report(f"{n:>10} {t * 1e3:>12.4f}ms {'eager' if n <= 256_000 else 'rendezvous':>12}")

    # monotone in size within each protocol
    assert times[1_000] < times[64_000] < times[256_000]
    assert times[256_001] < times[512_000] < times[4_000_000]

    # the protocol switch adds a visible latency step at the threshold:
    # crossing 256,000 -> 256,001 costs more than the 1-byte bandwidth delta
    step = times[256_001] - times[256_000]
    smooth = times[256_000] - times[255_999]
    assert step > 100 * max(smooth, 1e-12)

    # the step is at least one RTS/CTS round trip (2 wire latencies)
    net = SystemConfig.paper_system(nranks=2).make_network()
    assert step == pytest.approx(2 * 2 * net.wire_latency(0, 1), rel=0.5)
