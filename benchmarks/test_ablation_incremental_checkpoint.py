"""Ablation (paper §II-B related work): incremental vs full checkpointing.

With a non-zero file-system model, compares plain full checkpointing
against incremental plans (full every k-th checkpoint, dirty fraction d):
write cost per checkpoint falls, restore cost grows with chain length —
the overhead/benefit trade-off the modeling-and-simulation comparisons the
paper cites were built to expose.
"""

from repro.core.checkpoint.incremental import IncrementalCheckpointProtocol, IncrementalPlan
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver
from repro.models.filesystem import FileSystemModel

from benchmarks._util import once, report

NRANKS = 16
SEGMENTS = 16
WORK = 25.0  # virtual seconds per segment
STATE = 2_000_000  # 2 MB full checkpoint per rank

SYSTEM = SystemConfig.small_test_system(nranks=NRANKS).scaled(
    filesystem=FileSystemModel(
        aggregate_bandwidth=1e9, client_bandwidth=1e6, metadata_latency=0.0
    )
)

PLANS = {
    "full-only": IncrementalPlan(full_interval=1),
    "incr k=4 d=0.25": IncrementalPlan(full_interval=4, dirty_fraction=0.25),
    "incr k=8 d=0.10": IncrementalPlan(full_interval=8, dirty_fraction=0.10),
}


def _app(plan: IncrementalPlan):
    def app(mpi, store):
        yield from mpi.init()
        proto = IncrementalCheckpointProtocol(mpi, store, plan)
        _, data = yield from proto.restore_latest()
        done = data["segment"] if data else 0
        while done < SEGMENTS:
            yield from mpi.compute(WORK)
            done += 1
            yield from proto.checkpoint(done, {"segment": done}, STATE)
        yield from mpi.finalize()
        return done

    return app


def _measure(plan: IncrementalPlan):
    clean = RestartDriver(
        SYSTEM, _app(plan), make_args=lambda store: (store,)
    ).run()
    faulty = RestartDriver(
        SYSTEM,
        _app(plan),
        make_args=lambda store: (store,),
        schedule=FailureSchedule.of((3, 0.8 * clean.e2)),
    ).run()
    return {"e1": clean.e2, "e2": faulty.e2, "restarts": faulty.restarts}


def test_incremental_checkpoint_ablation(benchmark):
    results = once(benchmark, lambda: {name: _measure(p) for name, p in PLANS.items()})

    report("", "=== Ablation: incremental vs full checkpointing "
               f"({SEGMENTS} checkpoints of {STATE / 1e6:.0f} MB at 1 MB/s/client) ===",
           f"{'plan':>16} {'E1':>9} {'E2 (1 failure)':>15} {'mean write':>11}")
    for name, r in results.items():
        plan = PLANS[name]
        report(f"{name:>16} {r['e1']:>7,.0f}s {r['e2']:>13,.0f}s "
               f"{plan.mean_write_nbytes(STATE) / 1e6:>9.2f}MB")

    full = results["full-only"]
    inc4 = results["incr k=4 d=0.25"]
    inc8 = results["incr k=8 d=0.10"]
    # incremental plans write less -> smaller failure-free time
    assert inc4["e1"] < full["e1"]
    assert inc8["e1"] < inc4["e1"]
    # every variant survives the failure and restarts once
    for r in results.values():
        assert r["restarts"] >= 1
    # with failures the incremental plans keep their advantage here (the
    # restore chain penalty is small next to the per-checkpoint savings)
    assert inc4["e2"] < full["e2"]
