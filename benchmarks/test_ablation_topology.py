"""Ablation: interconnect topology sensitivity.

The paper's machine is a 3-D wrapped torus.  This bench runs the same
heat3d workload over torus, mesh, fat-tree, and ideal-crossbar
interconnects and reports E1 and a cross-machine ping time — the network-
model sensitivity a co-design study sweeps.
"""

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim

from benchmarks._util import once, report

NRANKS = 64
KINDS = ("torus", "mesh", "fattree", "crossbar")


def _run(kind: str):
    system = SystemConfig.paper_system(nranks=NRANKS, topology_kind=kind, topology_dims=None)
    wl = HeatConfig.paper_workload(checkpoint_interval=125, nranks=NRANKS)
    sim = XSim(system)
    res = sim.run(heat3d, args=(wl, CheckpointStore()))
    assert res.completed
    net = system.make_network()
    corner_ping = net.transfer_time(8, 0, NRANKS - 1)
    return {"e1": res.exit_time, "diameter": net.topology.diameter(), "ping": corner_ping}


def test_topology_ablation(benchmark):
    results = once(benchmark, lambda: {k: _run(k) for k in KINDS})

    report("", f"=== Ablation: topology ({NRANKS} ranks, heat3d C=125) ===",
           f"{'topology':>9} {'diameter':>9} {'corner ping':>13} {'E1':>12}")
    for k, r in results.items():
        report(f"{k:>9} {r['diameter']:>9} {r['ping'] * 1e6:>11.2f}us {r['e1']:>10,.2f}s")

    # the ideal crossbar is the lower bound on E1
    for k in ("torus", "mesh", "fattree"):
        assert results[k]["e1"] >= results["crossbar"]["e1"]
    # removing wrap-around links cannot help: mesh >= torus
    assert results["mesh"]["e1"] >= results["torus"]["e1"]
    assert results["mesh"]["ping"] > results["torus"]["ping"]
    # diameters ordered as the theory says
    assert results["crossbar"]["diameter"] <= results["torus"]["diameter"] <= results["mesh"]["diameter"]
    # the compute-dominated workload keeps E1 within ~1% across topologies
    e1s = [r["e1"] for r in results.values()]
    assert (max(e1s) - min(e1s)) / min(e1s) < 0.01
