"""Ablation: workload communication profile vs. resilience overheads.

The paper's heat application is compute-dominated ("the computation phase
is by orders of magnitudes significantly longer than the communication and
checkpoint phases"), which shapes everything it observes — failures are
almost always injected into compute, detection happens at the next halo
exchange, and shrinking the checkpoint interval is cheap.  A proxy with the
opposite profile (the CG solver's three allreduces per iteration) stresses
the simulated machine differently: its global collectives make it
latency/overhead-bound, so the same architectural overheads cost it
proportionally more.
"""

from repro.apps.cg import CgConfig, cg
from repro.apps.heat3d import HeatConfig, heat3d
from repro.apps.samplesort import SampleSortConfig, samplesort
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim

from benchmarks._util import once, report

NRANKS = 64


def _profile(app, cfg, label):
    """Run twice — with and without per-message software overheads — to
    split virtual time into compute vs communication-sensitive parts."""
    out = {}
    for variant, overhead in (("with-overheads", 2.6e-6), ("zero-overheads", 0.0)):
        system = SystemConfig.paper_system(
            nranks=NRANKS,
            send_overhead_native=overhead,
            recv_overhead_native=overhead,
        )
        sim = XSim(system, record_trace=(variant == "with-overheads"))
        result = sim.run(app, args=(cfg, CheckpointStore()))
        assert result.completed
        out[variant] = result.exit_time
        if variant == "with-overheads":
            out["messages"] = sim.world.messages_sent
    out["comm_share"] = 1.0 - out["zero-overheads"] / out["with-overheads"]
    out["label"] = label
    return out


def _profile_nostore(app, cfg, label):
    """Like _profile for apps that take no checkpoint store argument."""
    out = {}
    for variant, overhead in (("with-overheads", 2.6e-6), ("zero-overheads", 0.0)):
        system = SystemConfig.paper_system(
            nranks=NRANKS,
            send_overhead_native=overhead,
            recv_overhead_native=overhead,
        )
        sim = XSim(system)
        result = sim.run(app, args=(cfg,))
        assert result.completed
        out[variant] = result.exit_time
        if variant == "with-overheads":
            out["messages"] = sim.world.messages_sent
    out["comm_share"] = 1.0 - out["zero-overheads"] / out["with-overheads"]
    out["label"] = label
    return out


def _sweep():
    heat_cfg = HeatConfig.paper_workload(checkpoint_interval=125, nranks=NRANKS)
    cg_cfg = CgConfig.for_ranks(
        NRANKS, points_per_side=16, max_iterations=250, checkpoint_interval=50
    )
    sort_cfg = SampleSortConfig(keys_per_rank=65536, data_mode="modeled")
    return {
        "heat3d": _profile(heat3d, heat_cfg, "heat3d (stencil, compute-bound)"),
        "cg": _profile(cg, cg_cfg, "cg (allreduce-bound proxy)"),
        "sort": _profile_nostore(samplesort, sort_cfg, "samplesort (alltoallv-bound)"),
    }


def test_workload_sensitivity(benchmark):
    results = once(benchmark, _sweep)

    report("", f"=== Ablation: workload profile vs software-overhead sensitivity "
               f"({NRANKS} ranks) ===",
           f"{'app':>8} {'E1':>11} {'E1 (no overheads)':>18} {'overhead share':>15} {'messages':>9}")
    for name, r in results.items():
        report(f"{name:>8} {r['with-overheads']:>9,.1f}s {r['zero-overheads']:>16,.1f}s "
               f"{r['comm_share'] * 100:>13.2f}% {r['messages']:>9,}")

    heat, cgr, srt = results["heat3d"], results["cg"], results["sort"]
    # heat3d is compute-dominated: overheads shift E1 by well under 1 %
    assert heat["comm_share"] < 0.01
    # the CG proxy's per-iteration collectives make it far more sensitive
    assert cgr["comm_share"] > 10 * heat["comm_share"]
    # it also sends far more messages per unit of virtual time
    assert cgr["messages"] / cgr["with-overheads"] > heat["messages"] / heat["with-overheads"]
    # the redistribution sort sits between: one big exchange, short runtime
    assert srt["comm_share"] > heat["comm_share"]
