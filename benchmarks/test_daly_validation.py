"""Validation: the simulator's measured optimal checkpoint interval tracks
Daly's closed-form optimum.

The paper's related work cites Daly [31] as *the* checkpoint/restart
optimization.  Here the naive compute/checkpoint workload is swept over
checkpoint intervals under MTTF-driven random failures; the E2-minimizing
interval must land near Daly's higher-order estimate, and the measured E2
curve must be convex-ish around it (long intervals lose work, short ones
pay overhead).
"""

import numpy as np

from repro.apps.naive_cr import NaiveCrConfig, naive_cr
from repro.core.checkpoint.daly import daly_higher_order_interval, expected_completion_time
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver

from benchmarks._util import once, report

WORK = 2_000.0
DELTA = 10.0
MTTF = 1_000.0
# Note the sweep stops at tau=1000: under the paper's placement policy the
# failure time is uniform in [0, 2*MTTF), so a restart segment longer than
# 2*MTTF = 2000 s is *guaranteed* to fail and the run never completes —
# checkpointing less often than that is not merely slow but fatal.
TAUS = (25.0, 50.0, 100.0, 200.0, 400.0, 1000.0)
SEEDS = range(12)


def _mean_e2(tau: float) -> float:
    system = SystemConfig.small_test_system(nranks=4)
    cfg = NaiveCrConfig(work=WORK, tau=tau, delta=DELTA)
    e2s = []
    for seed in SEEDS:
        driver = RestartDriver(
            system,
            naive_cr,
            make_args=lambda store: (cfg, store),
            mttf=MTTF,
            seed=seed,
            max_restarts=5000,
        )
        e2s.append(driver.run().e2)
    return float(np.mean(e2s))


def test_daly_interval_validation(benchmark):
    measured = once(benchmark, lambda: {tau: _mean_e2(tau) for tau in TAUS})

    daly_tau = daly_higher_order_interval(DELTA, MTTF)
    report(
        "",
        f"=== Daly validation: work={WORK:.0f}s, delta={DELTA:.0f}s, MTTF={MTTF:.0f}s ===",
        f"Daly higher-order optimal interval: {daly_tau:.0f} s",
        f"{'tau':>8} {'measured mean E2':>17} {'Daly model E[T]':>17}",
    )
    for tau, e2 in measured.items():
        model = expected_completion_time(WORK, tau, DELTA, MTTF)
        report(f"{tau:>8.0f} {e2:>16,.0f}s {model:>16,.0f}s")

    best_tau = min(measured, key=measured.get)
    # the measured optimum brackets Daly's prediction (~131 s here)
    assert TAUS[0] < best_tau < TAUS[-1]
    assert 0.25 * daly_tau <= best_tau <= 4.0 * daly_tau
    # the curve's wings are worse than the optimum
    assert measured[TAUS[0]] > measured[best_tau]
    assert measured[TAUS[-1]] > measured[best_tau]
    # measured E2 correlates with the analytic model across the sweep
    ratios = [measured[t] / expected_completion_time(WORK, t, DELTA, MTTF) for t in TAUS]
    assert all(0.5 < r < 2.0 for r in ratios)
