"""Paper §V-D "First Impressions": observed application failure modes.

"As the computation phase is by orders of magnitudes significantly longer
than the communication and checkpoint phases, the probability of failure
during the computation phase is correspondingly larger.  However, a failure
during the computation phase is detected in the halo exchange due to
failing communication.  Also, a failure during the checkpoint phase is
detected in the following barrier.  As detected failures lead to an
application abort, the application aborted during the halo exchange and/or
checkpoint phase, always resulting in an incomplete or corrupted
checkpoint, or during the barrier phase resulting in only partially deleted
old checkpoints."
"""

from repro.apps.heat3d import HeatConfig
from repro.core.harness.config import SystemConfig
from repro.core.harness.experiment import observe_failure_mode
from repro.models.filesystem import FileSystemModel

from benchmarks._util import once, report

NRANKS = 64
WORKLOAD = HeatConfig.paper_workload(checkpoint_interval=25, nranks=NRANKS, iterations=100)
SYSTEM = SystemConfig.paper_system(nranks=NRANKS)
# visible checkpoint-write duration so failures can land inside the phase
SLOW_FS = SYSTEM.scaled(filesystem=FileSystemModel.create("1GB/s", "1kB/s", "1ms"))


def _run_scenarios():
    return [
        ("computation", observe_failure_mode(SYSTEM, WORKLOAD, rank=31, time=60.0)),
        ("checkpoint", observe_failure_mode(SLOW_FS, WORKLOAD, rank=31, time=140.0)),
        ("computation(late)", observe_failure_mode(SYSTEM, WORKLOAD, rank=31, time=300.0)),
    ]


def test_first_impressions_failure_modes(benchmark):
    scenarios = once(benchmark, _run_scenarios)

    report("", "=== SV-D First Impressions: failure modes ===")
    for label, obs in scenarios:
        report(
            f"{label:>18}: activated@{obs.activated[1]:8.1f}s "
            f"detected-in={obs.detected_phase:<10} "
            f"corrupted={obs.corrupted_checkpoint} "
            f"incomplete={obs.incomplete_checkpoint} "
            f"partial-old-delete={obs.partially_deleted_old}"
        )

    by = dict(scenarios)

    # computation-phase failures are detected in the halo exchange (pt2pt)
    assert by["computation"].detected_phase == "pt2pt"
    assert by["computation(late)"].detected_phase == "pt2pt"
    # checkpoint-phase failures are detected in the following barrier
    assert by["checkpoint"].detected_phase == "collective"
    assert by["checkpoint"].corrupted_checkpoint

    # every abort damaged the checkpoint state in one of the three ways
    for label, obs in scenarios:
        assert obs.aborted
        assert (
            obs.corrupted_checkpoint
            or obs.incomplete_checkpoint
            or obs.partially_deleted_old
        ), label
