"""Paper Figure 1: xSim's implementation architecture and design.

Figure 1 is a structural diagram, not a data series: (a) the layered
architecture — application processes as virtual processes over an MPI
interposition layer over the simulator — and (b) the component design
(processor/network models, per-VP contexts, event-driven core).  The
reproduction is the toolkit's architecture self-description; this bench
instantiates the paper's full-size machine description, verifies each
diagram element is present, and prints the rendered layering.
"""

from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim

from benchmarks._util import report


def _build():
    return XSim(SystemConfig.paper_system())  # the 32,768-node machine


def test_figure1_architecture_description(benchmark):
    sim = benchmark(_build)
    d = sim.describe_architecture()

    report(
        "",
        "=== Figure 1: implementation architecture and design ===",
        sim.render_architecture(),
        f"eager threshold: {d['eager_threshold_B']} B, "
        f"link: {d['link_latency_s'] * 1e6:.0f} us / {d['link_bandwidth_Bps'] / 1e9:.0f} GB/s, "
        f"detection timeout: {d['detection_timeout_s']:.0f} s",
    )

    # Figure 1(a): the layering
    layers = " | ".join(d["layers"])
    assert "application" in layers
    assert "MPI layer" in layers
    assert "resilience extensions" in layers
    assert "PDES engine" in layers
    assert "hardware models" in layers

    # Figure 1(b): the components and the paper's machine parameters
    assert d["virtual_processes"] == 32768
    assert d["nodes"] == 32768
    assert d["topology"] == "TorusTopology"
    assert d["ranks_per_node"] == 1  # "each simulated MPI rank ... one node"
    assert d["eager_threshold_B"] == 256_000
    assert d["link_latency_s"] == 1e-6
    assert d["link_bandwidth_Bps"] == 32e9
    assert d["collective_algorithm"] == "linear"
    assert d["processor_slowdown"] == 1000.0
    for component in ("engine", "world", "network_model", "processor_model",
                      "filesystem_model", "memory_tracker"):
        assert component in d["components"]
