"""Extension (paper future work 4): the parallel file system model.

The paper excludes checkpoint I/O cost ("the file system overhead for
checkpoint/restart was not considered") because its file system model was
work in progress.  This bench turns the model on: per-checkpoint cost
becomes size/bandwidth-dependent, E1 grows with checkpoint frequency much
faster than in the zero-cost configuration, and aggregate-bandwidth
contention among concurrent writers is visible.
"""

import pytest

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.models.filesystem import FileSystemModel

from benchmarks._util import once, report

NRANKS = 64
INTERVALS = (1000, 250, 125)

FS = FileSystemModel.create(
    aggregate_bandwidth="100MB/s",  # deliberately slow: visible cost
    client_bandwidth="10MB/s",
    metadata_latency="10ms",
)


def _e1(interval: int, fs: FileSystemModel):
    system = SystemConfig.paper_system(nranks=NRANKS, filesystem=fs)
    wl = HeatConfig.paper_workload(checkpoint_interval=interval, nranks=NRANKS)
    sim = XSim(system)
    res = sim.run(heat3d, args=(wl, CheckpointStore()))
    assert res.completed
    return res.exit_time


def _sweep():
    return {
        "disabled": {c: _e1(c, FileSystemModel.disabled()) for c in INTERVALS},
        "modeled": {c: _e1(c, FS) for c in INTERVALS},
    }


def test_filesystem_checkpoint_cost(benchmark):
    results = once(benchmark, _sweep)

    report("", f"=== File system model: E1 vs checkpoint interval ({NRANKS} ranks) ===",
           f"{'C':>5} {'E1 (FS disabled)':>17} {'E1 (FS modeled)':>16} {'I/O cost':>10}")
    for c in INTERVALS:
        off, on = results["disabled"][c], results["modeled"][c]
        report(f"{c:>5} {off:>15,.1f}s {on:>14,.1f}s {on - off:>8,.1f}s")

    # the modeled file system always costs extra
    for c in INTERVALS:
        assert results["modeled"][c] > results["disabled"][c]

    # analytic cross-check: each checkpoint writes ~33 kB per rank with 64
    # concurrent writers sharing 100 MB/s -> per-checkpoint ~ nbytes/bw
    wl = HeatConfig.paper_workload(checkpoint_interval=125, nranks=NRANKS)
    per_ckpt = FS.write_time(wl.checkpoint_nbytes, NRANKS)
    n_ckpts = wl.iterations // 125
    predicted = per_ckpt * n_ckpts
    measured = results["modeled"][125] - results["disabled"][125]
    assert measured == pytest.approx(predicted, rel=0.35)

    # more checkpoints -> more I/O cost, superlinear vs the disabled deltas
    io = {c: results["modeled"][c] - results["disabled"][c] for c in INTERVALS}
    assert io[125] > io[250] > io[1000]
