"""Extension (paper future work 5): power/energy under checkpoint/restart.

The paper's goal is "to optimize parallel application performance within a
given power consumption budget".  This bench integrates the two-state node
power model over Table-II-style runs: machine energy as a function of the
checkpoint interval and failure rate, separating the energy spent on
useful work from the energy burned on checkpoint overhead and recomputed
(lost) work.
"""

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver
from repro.models.power import PowerModel

from benchmarks._util import once, report

NRANKS = 64
POWER = PowerModel(idle_watts=60.0, busy_watts=180.0)
INTERVALS = (500, 250, 125)
MTTF = 3000.0


def _row(interval: int):
    system = SystemConfig.paper_system(nranks=NRANKS)
    wl = HeatConfig.paper_workload(checkpoint_interval=interval, nranks=NRANKS)
    driver = RestartDriver(
        system, heat3d, make_args=lambda store: (wl, store), mttf=MTTF, seed=5
    )
    run = driver.run()
    # measured CPU-busy time per node, summed over all run segments (the
    # engine accounts Advance(busy=True) intervals per virtual process)
    busy_by_rank = [0.0] * NRANKS
    for seg in run.segments:
        for rank, busy in seg.result.busy_times.items():
            busy_by_rank[rank] += busy
    avg_busy = min(run.e2, sum(busy_by_rank) / NRANKS)
    compute_per_node = wl.iterations * wl.points_per_rank * wl.native_seconds_per_point * 1000.0
    energy = POWER.machine_energy(NRANKS, run.e2, avg_busy)
    useful = POWER.machine_energy(NRANKS, compute_per_node, compute_per_node)
    return {"e2": run.e2, "f": run.f, "energy_MJ": energy / 1e6, "useful_MJ": useful / 1e6}


def test_power_under_checkpoint_restart(benchmark):
    rows = once(benchmark, lambda: {c: _row(c) for c in INTERVALS})

    report("", f"=== Power model: machine energy vs checkpoint interval "
               f"(MTTF={MTTF:.0f}s, {NRANKS} nodes) ===",
           f"{'C':>5} {'E2':>11} {'F':>3} {'energy':>10} {'useful':>10} {'overhead':>9}")
    for c, r in rows.items():
        over = (r["energy_MJ"] / r["useful_MJ"] - 1) * 100
        report(f"{c:>5} {r['e2']:>9,.0f}s {r['f']:>3} {r['energy_MJ']:>8.1f}MJ "
               f"{r['useful_MJ']:>8.1f}MJ {over:>8.1f}%")

    for r in rows.values():
        # energy burned always exceeds the useful-work minimum
        assert r["energy_MJ"] > r["useful_MJ"]
    # under failures, the shortest interval wastes the least energy
    # (it wastes the least time; the model is time-dominated)
    assert rows[125]["energy_MJ"] < rows[500]["energy_MJ"]
    # sanity: energies in a physically plausible band for 64 nodes
    for r in rows.values():
        floor = POWER.machine_energy(NRANKS, r["e2"], 0.0) / 1e6
        ceil = POWER.machine_energy(NRANKS, r["e2"], r["e2"]) / 1e6
        assert floor <= r["energy_MJ"] <= ceil
