"""Extension (paper refs [9]/[17]/[19]): proactive migration vs reactive
checkpoint/restart.

Sweeps the failure predictor's recall: at recall 1.0 every failure becomes
a short migration pause; at 0.0 everything falls back to abort/restart;
in between the two mechanisms combine (Wang et al.'s proactive+reactive
hybrid).  E2 should fall monotonically as prediction improves.
"""

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.harness.config import SystemConfig
from repro.core.migration import FailurePredictor, ProactiveMigration
from repro.core.restart import RestartDriver

from benchmarks._util import once, report

NRANKS = 64
WORKLOAD = HeatConfig.paper_workload(checkpoint_interval=250, nranks=NRANKS)
SYSTEM = SystemConfig.paper_system(nranks=NRANKS)
RECALLS = (0.0, 0.5, 1.0)
MTTF = 2500.0


def _run(recall: float):
    manager = ProactiveMigration(
        FailurePredictor(lead_time=120.0, recall=recall),
        spares=8,
        state_bytes=WORKLOAD.checkpoint_nbytes,
        migration_bandwidth=1e9,
        migration_latency=2.0,
        seed=1,
    )
    driver = RestartDriver(
        SYSTEM,
        heat3d,
        make_args=lambda store: (WORKLOAD, store),
        mttf=MTTF,
        seed=2,
        interceptor=manager.intercept,
    )
    run = driver.run()
    return run, manager.stats


def test_proactive_migration_vs_restart(benchmark):
    results = once(benchmark, lambda: {r: _run(r) for r in RECALLS})

    report("", f"=== Proactive migration vs checkpoint/restart "
               f"(MTTF={MTTF:.0f}s, lead time 120s) ===",
           f"{'recall':>7} {'E2':>11} {'failures':>9} {'restarts':>9} "
           f"{'migrations':>11} {'downtime':>9}")
    for r, (run, stats) in results.items():
        report(f"{r:>7.1f} {run.e2:>9,.0f}s {run.f:>9} {run.restarts:>9} "
               f"{stats.migrations:>11} {stats.downtime:>8.1f}s")

    blind, _ = results[0.0]
    oracle, oracle_stats = results[1.0]
    # perfect prediction avoids every failure -> no restarts at all
    assert oracle.f == 0
    assert oracle.restarts == 0
    assert oracle_stats.migrations >= 1
    # zero recall degenerates to the plain Table II behaviour
    assert blind.f >= 1
    # better prediction never hurts
    e2s = [results[r][0].e2 for r in RECALLS]
    assert e2s == sorted(e2s, reverse=True)
    # the oracle's residual overhead is just migration pauses (seconds,
    # not the thousands of seconds a restart cycle costs)
    assert oracle.e2 < blind.e2
    assert oracle.e2 - 5250.0 < 100.0
