"""Extension (paper §II-C, redMPI): redundancy overhead vs detection.

redMPI runs applications with double/triple process-level redundancy to
detect (and with 3x, correct) silent data corruption online.  This bench
measures the cost side of that trade-off in the simulator: virtual run
time and message traffic of heat3d at redundancy factors 1/2/3, plus the
detection capability (an injected bit flip in one replica's grid is caught
at the next halo exchange by hash comparison).
"""

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.harness.config import SystemConfig
from repro.core.redundancy import RedundancyMonitor, redundant
from repro.core.simulator import XSim

from benchmarks._util import once, report

LOGICAL = 8
CFG = HeatConfig(
    grid=(16, 16, 16),
    ranks=(2, 2, 2),
    iterations=8,
    checkpoint_interval=8,
    exchange_interval=2,
    data_mode="real",
)


def _run(factor: int, flips: int = 0):
    monitor = RedundancyMonitor(factor=factor)
    system = SystemConfig.paper_system(nranks=LOGICAL * factor, slowdown=1.0)
    sim = XSim(system, seed=3)
    for i in range(flips):
        # corrupt replica-1 copies early in the run
        sim.soft_errors.schedule_flip(rank=LOGICAL + (i % LOGICAL), time=1e-4 * (i + 1))
    result = sim.run(redundant(heat3d, factor, monitor), args=(CFG, None))
    assert result.completed
    return {
        "time": result.exit_time,
        "messages": sim.world.messages_sent,
        "bytes": sim.world.bytes_sent,
        "compared": monitor.messages_compared,
        "detections": len(monitor.detections),
    }


def test_redundancy_overhead_and_detection(benchmark):
    results = once(
        benchmark,
        lambda: {
            1: _run(1),
            2: _run(2),
            3: _run(3),
            "2+flips": _run(2, flips=6),
        },
    )

    report("", "=== redMPI-style redundancy: overhead and SDC detection (heat3d) ===",
           f"{'factor':>9} {'virtual time':>13} {'messages':>9} {'bytes':>10} "
           f"{'compared':>9} {'detections':>11}")
    for k, r in results.items():
        report(f"{k!s:>9} {r['time']:>11.5f}s {r['messages']:>9} {r['bytes']:>10,} "
               f"{r['compared']:>9} {r['detections']:>11}")

    r1, r2, r3 = results[1], results[2], results[3]
    # replication multiplies traffic (payloads x factor + hash channel)
    assert r2["messages"] > 2 * r1["messages"]
    assert r3["messages"] > 3 * r1["messages"]
    assert r2["bytes"] > 2 * r1["bytes"]
    # modest virtual-time overhead (messaging, not compute, is replicated)
    assert r1["time"] <= r2["time"] <= r3["time"] * 1.01
    # clean runs compare everything and detect nothing
    assert r2["compared"] > 0 and r2["detections"] == 0
    assert r3["detections"] == 0
    # injected replica divergence is caught online
    assert results["2+flips"]["detections"] >= 1
