"""Simulator scalability: virtual-process count vs. host throughput.

xSim's headline capability is oversubscription — running orders of
magnitude more simulated MPI ranks than host cores (up to 2^27 on a
960-core cluster).  The laptop-scale equivalent claim for this
reproduction: simulated-rank count scales to tens of thousands on one
host process, with near-linear host cost per simulated event — and, since
the sharded conservative-parallel engine, one large run also speeds up
with host cores.

The measurements live in :mod:`repro.core.harness.bench` (shared with the
``xsim-run bench`` subcommand); this module adds the regression
assertions.  Both tests merge their records into ``BENCH_pdes.json`` at
the repository root, which CI uploads as an artifact so throughput
regressions are visible across commits.
"""

import os

from repro.core.harness.bench import (
    PAIRED_AB_512,
    SCALES,
    measure_sharded,
    merge_bench,
    run_scaling,
    scaling_record,
)

from benchmarks._util import once, report

#: The sharded comparison's scale: the acceptance target is >= 1.8x at
#: 4096 ranks on 4 cores.
SHARDED_RANKS = 4096
SHARDED_SHARDS = 4


def test_vp_count_scaling(benchmark):
    # min-of-5 at the 512-rank reference scale for a stable throughput
    # figure; single runs elsewhere (see bench.run_scaling).
    results = once(benchmark, run_scaling)

    report("", "=== Simulator scaling: virtual processes vs host cost ===",
           f"{'ranks':>6} {'events':>10} {'host':>8} {'events/s':>10} {'E1':>11}")
    for n, r in results.items():
        report(
            f"{n:>6} {r['events']:>10,} {r['host_s']:>7.2f}s "
            f"{r['events'] / r['host_s']:>10,.0f} {r['e1']:>9,.1f}s"
        )

    record = scaling_record(results)
    merge_bench(record)
    report("", f"wrote BENCH_pdes.json: {record['events_per_sec']:,.0f} events/s "
           f"at 512 ranks ({record['speedup_vs_seed']:.2f}x vs recorded seed "
           f"baseline; paired A/B: {PAIRED_AB_512['speedup']:.2f}x)")

    # events grow roughly linearly with rank count
    ev_ratio = results[4096]["events"] / results[64]["events"]
    assert 32 < ev_ratio < 128  # 64x ranks -> ~64x events
    # per-event host cost stays within 4x across two orders of magnitude
    rates = [r["events"] / r["host_s"] for r in results.values()]
    assert max(rates) / min(rates) < 4.0
    # virtual time stays at the workload's operating point at every scale
    for r in results.values():
        assert abs(r["e1"] - 5248.0) / 5248.0 < 0.05


def test_sharded_speedup(benchmark):
    """Serial vs ``shards=4`` on one 4096-rank simulation.

    Headline scenario: tree collectives, where the partition's critical
    path genuinely shrinks.  A linear-collective run is recorded alongside
    as a co-design observation — the rank-0-rooted linear barrier
    serializes O(nranks) releases and caps any parallel engine (Amdahl)
    regardless of shard count.

    On hosts with fewer cores than shards only the critical-path
    projection is asserted (see the bench module docstring for why it is
    an honest lower-bound figure); the wall-clock assertion arms when the
    cores exist.
    """
    rec = once(
        benchmark,
        lambda: measure_sharded(
            nranks=SHARDED_RANKS,
            shards=SHARDED_SHARDS,
            collective_algorithm="tree",
        ),
    )
    # Secondary record: the linear-collective bottleneck, inline only (its
    # fork run is slow on small hosts and adds no information).
    linear = measure_sharded(
        nranks=SHARDED_RANKS,
        shards=SHARDED_SHARDS,
        collective_algorithm="linear",
        transports=("inline",),
    )
    merge_bench({"sharded": rec, "sharded_linear_collectives": linear})

    report("", f"=== Sharded engine: serial vs {SHARDED_SHARDS} shards at "
           f"{SHARDED_RANKS} ranks (tree collectives) ===")
    for t, r in rec["transports"].items():
        report(f"  {t:<7}: wall {r['wall_s']:.3f}s ({r['speedup_wall']:.2f}x), "
               f"critical path {r['critical_path_s']:.3f}s, "
               f"{r['windows']:,} windows, imbalance {r['imbalance']:.2f}")
    report(f"  serial {rec['serial_s']:.3f}s; projected speedup on >= "
           f"{SHARDED_SHARDS} cores: {rec['projected_speedup']:.2f}x "
           f"(host has {rec['host_cpus']} CPUs); linear collectives project "
           f"{linear['projected_speedup']:.2f}x (barrier-root Amdahl)")

    inline = rec["transports"]["inline"]
    # The partition is balanced and genuinely parallel.
    assert inline["imbalance"] < 1.25
    assert inline["parallelism"] > 2.0
    # Acceptance target: >= 1.8x at 4096 ranks on 4 cores.  The projection
    # (serial / critical path) is what a 4-core host's wall clock would
    # show and is measurable on any host.
    assert rec["projected_speedup"] >= 1.8
    if (os.cpu_count() or 1) >= SHARDED_SHARDS:
        assert rec["speedup_wall"] >= 1.5
    # Hot-path floor: sharding must not burn host work — total worker busy
    # time stays within 2x of the serial run.
    assert inline["worker_busy_s"] < 2.0 * rec["serial_s"]


# Re-exported for external readers of the historical record (these frozen
# figures documented the PR 1 optimization pass).
__all__ = ["SCALES", "PAIRED_AB_512"]
