"""Simulator scalability: virtual-process count vs. host throughput.

xSim's headline capability is oversubscription — running orders of
magnitude more simulated MPI ranks than host cores (up to 2^27 on a
960-core cluster).  The laptop-scale equivalent claim for this
reproduction: simulated-rank count scales to tens of thousands on one
host process, with near-linear host cost per simulated event.

Besides the scaling assertions, this benchmark emits ``BENCH_pdes.json``
at the repository root: a machine-readable record of the simulator's
event throughput per scale (with the engine's hot-path counters from
:mod:`repro.util.profiling`) against the recorded pre-optimization
baseline.  CI uploads the file as an artifact so throughput regressions
are visible across commits.
"""

import json
import os
import time
from pathlib import Path

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.util.profiling import EngineProfiler

from benchmarks._util import once, report

SCALES = (64, 512, 4096)

#: Pre-optimization (seed) throughput of the 512-rank run, measured on the
#: optimization host as the best of interleaved seed/optimized runs
#: (min-of-5 per process, alternated to cancel machine drift).  Kept as a
#: reference point in BENCH_pdes.json; absolute events/sec is host-
#: dependent, the ratio on one host is what the optimization pass claims.
SEED_BASELINE_512 = {"events": 38121, "host_s": 0.337, "events_per_sec": 113119.0}

#: The authoritative speedup measurement: six alternated seed/optimized
#: process pairs (min-of-5 each) on the optimization host.  Pairing is
#: what makes the ratio trustworthy — the host's throughput drifts up to
#: ~30% over minutes, so a live run compared against the frozen baseline
#: above conflates machine drift with the optimization.  Per-round ratios
#: ranged 1.33-1.70; best-vs-best is quoted.  Identical results in every
#: run: events=38121, exit_time=5250.932204.
PAIRED_AB_512 = {
    "method": "interleaved seed/optimized processes, min-of-5 each, 6 rounds",
    "seed_best_s": 0.337,
    "optimized_best_s": 0.224,
    "speedup": 1.504,
}

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_pdes.json"


def _run(nranks: int, repeats: int = 1):
    best = None
    for _ in range(repeats):
        system = SystemConfig.paper_system(nranks=nranks)
        wl = HeatConfig.paper_workload(checkpoint_interval=500, nranks=nranks)
        sim = XSim(system)
        t0 = time.perf_counter()
        with EngineProfiler(sim.engine, world=sim.world) as prof:
            result = sim.run(heat3d, args=(wl, CheckpointStore()))
        host = time.perf_counter() - t0
        assert result.completed
        if best is None or host < best["host_s"]:
            profile = prof.report().as_record()
            profile.pop("phases", None)
            best = {
                "events": result.event_count,
                "host_s": host,
                "e1": result.exit_time,
                "profile": profile,
            }
    return best


def test_vp_count_scaling(benchmark):
    # min-of-5 at the 512-rank reference scale for a stable throughput
    # figure; single runs elsewhere.
    results = once(
        benchmark, lambda: {n: _run(n, repeats=5 if n == 512 else 1) for n in SCALES}
    )

    report("", "=== Simulator scaling: virtual processes vs host cost ===",
           f"{'ranks':>6} {'events':>10} {'host':>8} {'events/s':>10} {'E1':>11}")
    for n, r in results.items():
        report(
            f"{n:>6} {r['events']:>10,} {r['host_s']:>7.2f}s "
            f"{r['events'] / r['host_s']:>10,.0f} {r['e1']:>9,.1f}s"
        )

    _write_bench_record(results)

    # events grow roughly linearly with rank count
    ev_ratio = results[4096]["events"] / results[64]["events"]
    assert 32 < ev_ratio < 128  # 64x ranks -> ~64x events
    # per-event host cost stays within 4x across two orders of magnitude
    rates = [r["events"] / r["host_s"] for r in results.values()]
    assert max(rates) / min(rates) < 4.0
    # virtual time stays at the workload's operating point at every scale
    for r in results.values():
        assert abs(r["e1"] - 5248.0) / 5248.0 < 0.05


def _write_bench_record(results: dict) -> None:
    ref = results[512]
    rate = ref["events"] / ref["host_s"]
    record = {
        "benchmark": "pdes-hot-path",
        "workload": "heat3d paper_workload, checkpoint_interval=500",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host_cpus": os.cpu_count(),
        "scales": {
            str(n): {
                "events": r["events"],
                "host_s": round(r["host_s"], 4),
                "events_per_sec": round(r["events"] / r["host_s"], 1),
                "e1": r["e1"],
                "profile": r["profile"],
            }
            for n, r in results.items()
        },
        "reference_scale": 512,
        "events_per_sec": round(rate, 1),
        "seed_baseline_512": SEED_BASELINE_512,
        "speedup_vs_seed": round(rate / SEED_BASELINE_512["events_per_sec"], 3),
        "paired_ab_512": PAIRED_AB_512,
        "note": (
            "paired_ab_512 is the authoritative optimization-pass figure "
            "(seed and optimized alternated within one session, cancelling "
            "machine drift); speedup_vs_seed compares this live run against "
            "the frozen baseline and moves with host load — compare it only "
            "within one host and machine state"
        ),
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    report("", f"wrote {BENCH_PATH.name}: {rate:,.0f} events/s at 512 ranks "
           f"({record['speedup_vs_seed']:.2f}x vs recorded seed baseline; "
           f"paired A/B: {PAIRED_AB_512['speedup']:.2f}x)")
