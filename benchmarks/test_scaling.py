"""Simulator scalability: virtual-process count vs. host throughput.

xSim's headline capability is oversubscription — running orders of
magnitude more simulated MPI ranks than host cores (up to 2^27 on a
960-core cluster).  The laptop-scale equivalent claim for this
reproduction: simulated-rank count scales to tens of thousands on one
host process, with near-linear host cost per simulated event.
"""

import time

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim

from benchmarks._util import once, report

SCALES = (64, 512, 4096)


def _run(nranks: int):
    system = SystemConfig.paper_system(nranks=nranks)
    wl = HeatConfig.paper_workload(checkpoint_interval=500, nranks=nranks)
    t0 = time.perf_counter()
    sim = XSim(system)
    result = sim.run(heat3d, args=(wl, CheckpointStore()))
    host = time.perf_counter() - t0
    assert result.completed
    return {"events": result.event_count, "host_s": host, "e1": result.exit_time}


def test_vp_count_scaling(benchmark):
    results = once(benchmark, lambda: {n: _run(n) for n in SCALES})

    report("", "=== Simulator scaling: virtual processes vs host cost ===",
           f"{'ranks':>6} {'events':>10} {'host':>8} {'events/s':>10} {'E1':>11}")
    for n, r in results.items():
        report(
            f"{n:>6} {r['events']:>10,} {r['host_s']:>7.2f}s "
            f"{r['events'] / r['host_s']:>10,.0f} {r['e1']:>9,.1f}s"
        )

    # events grow roughly linearly with rank count
    ev_ratio = results[4096]["events"] / results[64]["events"]
    assert 32 < ev_ratio < 128  # 64x ranks -> ~64x events
    # per-event host cost stays within 4x across two orders of magnitude
    rates = [r["events"] / r["host_s"] for r in results.values()]
    assert max(rates) / min(rates) < 4.0
    # virtual time stays at the workload's operating point at every scale
    for r in results.values():
        assert abs(r["e1"] - 5248.0) / 5248.0 < 0.05
