"""Extension (paper future work 1): soft-error injection campaigns.

Injects Poisson bit flips into heat3d's tracked memory and reports the
outcome distribution (crashes / silent data corruption / benign), plus the
crash-driven abort behaviour: a flip in a critical region feeds the
ordinary process-failure machinery, so the job aborts exactly as for an
injected process failure.
"""

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.faults.softerror import Effect
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.models.memory import RegionKind

from benchmarks._util import once, report

NRANKS = 64


def _campaign(rate: float, seed: int):
    system = SystemConfig.paper_system(nranks=NRANKS)
    wl = HeatConfig.paper_workload(checkpoint_interval=250, nranks=NRANKS)
    sim = XSim(system, seed=seed)
    # track a critical runtime region next to the app's DATA grid so both
    # outcome classes are reachable
    for rank in range(NRANKS):
        sim.memory.allocate(rank, "mpi-runtime", 64 * 1024, RegionKind.CRITICAL)
    injector = sim.soft_errors
    if rate > 0:
        injector.schedule_poisson(rate_per_rank=rate, horizon=6000.0, ranks=list(range(NRANKS)))
    result = sim.run(heat3d, args=(wl, CheckpointStore()))
    return injector.counts(), result


def test_soft_error_campaign(benchmark):
    (benign_counts, clean_result), (hot_counts, hot_result) = once(
        benchmark, lambda: (_campaign(0.0, 0), _campaign(2e-4, 0))
    )

    report(
        "",
        f"=== Soft-error campaign on heat3d ({NRANKS} ranks) ===",
        f"{'rate/rank/s':>12} {'flips':>6} {'crash':>6} {'sdc':>6} {'benign':>7} {'aborted':>8}",
        f"{'0':>12} {sum(benign_counts.values()):>6} {benign_counts[Effect.CRASH]:>6} "
        f"{benign_counts[Effect.SDC]:>6} {benign_counts[Effect.BENIGN]:>7} "
        f"{str(clean_result.aborted):>8}",
        f"{'2e-4':>12} {sum(hot_counts.values()):>6} {hot_counts[Effect.CRASH]:>6} "
        f"{hot_counts[Effect.SDC]:>6} {hot_counts[Effect.BENIGN]:>7} "
        f"{str(hot_result.aborted):>8}",
    )

    # no flips -> clean completion
    assert sum(benign_counts.values()) == 0
    assert clean_result.completed

    # with flips: some landed, outcomes split across the classes
    total = sum(hot_counts.values())
    assert total > 10
    assert hot_counts[Effect.SDC] > 0
    # the grid (DATA, 32 kB) is ~1/3 of the tracked footprint beside the
    # 64 kB critical runtime region, so both classes appear
    assert hot_counts[Effect.CRASH] > 0
    # a critical hit crashes a process, which aborts the job
    assert hot_result.aborted
    assert len(hot_result.failures) >= 1
    # the crash was logged as a soft error
    assert hot_result.log.category("soft-error")
