"""Paper Table I: Finject fault (bit flip) injection results.

Regenerates the 100-victim bit-flip campaign and checks the measured
statistics land in the paper's neighbourhood:

    Victims 100, Injections 2197, Min 1, Max 98, Mean 21.97, Median 17,
    Mode 4, Std.Dev. 21.42  (# of injections to victim failure)
"""

from repro.core.faults.finject import FinjectCampaign
from repro.core.harness.report import format_table

from benchmarks._util import report

PAPER = {
    "Victims": 100,
    "Injections": 2197,
    "Minimum": 1,
    "Maximum": 98,
    "Mean": 21.97,
    "Median": 17,
    "Mode": 4,
    "Std.Dev.": 21.42,
}


def test_table1_finject_campaign(benchmark):
    result = benchmark(lambda: FinjectCampaign().run())
    s = result.stats

    rows = [
        (field, value, f"{PAPER[field]}", desc)
        for field, value, desc in result.table_rows()
    ]
    report(
        "",
        "=== Table I: fault (bit flip) injection results ===",
        format_table(["Field", "Value", "Paper", "Description"], rows),
    )

    # exact experiment shape
    assert s.count == 100
    assert result.censored == 0
    assert s.total == sum(result.injections_to_failure)
    # statistical neighbourhood of the paper's numbers
    assert abs(s.mean - PAPER["Mean"]) < 7.0
    assert abs(s.median - PAPER["Median"]) < 7.0
    assert abs(s.stddev - PAPER["Std.Dev."]) < 7.0
    assert s.minimum <= 5
    assert 60 <= s.maximum <= 100
    assert s.mode <= 10
    # geometric-like skew: median below mean, as in the paper
    assert s.median < s.mean
