"""Paper Table II: varying the checkpoint interval and system MTTF.

Regenerates the full table — heat3d with checkpoint interval C in
{1000, 500, 250, 125} and system MTTF in {6000 s, 3000 s}; columns E1
(failure-free simulated time), E2 (simulated time with failures and
restarts), F (activated failures), MTTF_a = E2/(F+1) — and checks the
paper's qualitative findings:

* E1 grows as C shrinks (checkpoint-phase overhead);
* under failures, E2 *shrinks* as C shrinks (less lost work), at both
  failure rates;
* more failures (and larger E2) at the smaller system MTTF;
* MTTF_a = E2/(F+1) exactly, and MTTF_a differs from MTTF_s (the paper's
  "worst case" application-vs-platform MTTF observation).

Default scale is 512 ranks (XSIM_BENCH_RANKS / XSIM_FULL_SCALE=1 for the
paper-exact 32,768); the paper's 32,768-rank values are printed alongside.
"""

from repro.core.harness.experiment import Table2Config, run_table2
from repro.core.harness.report import render_table2

from benchmarks._util import bench_ranks, once, report


def test_table2_checkpoint_interval_vs_mttf(benchmark):
    nranks = bench_ranks()
    cfg = Table2Config(nranks=nranks)
    cells = once(benchmark, run_table2, cfg)

    report(
        "",
        f"=== Table II: varying the checkpoint interval and system MTTF "
        f"({nranks} simulated ranks; paper columns measured at 32,768) ===",
        render_table2(cells),
    )

    by_key = {(c.mttf, c.interval): c for c in cells}
    baseline = by_key[(None, cfg.baseline_interval)]

    # E1 monotone: shorter checkpoint interval costs more without failures
    e1_500 = by_key[(6000.0, 500)].e1
    e1_250 = by_key[(6000.0, 250)].e1
    e1_125 = by_key[(6000.0, 125)].e1
    assert baseline.e1 <= e1_500 < e1_250 < e1_125

    for mttf in cfg.mttfs:
        rows = [by_key[(mttf, c)] for c in cfg.intervals]
        # every failure row had failures and took longer than failure-free
        for cell in rows:
            assert cell.f >= 1
            assert cell.e2 > cell.e1
            # MTTF_a = E2 / (F + 1) exactly
            assert abs(cell.mttf_a - cell.e2 / (cell.f + 1)) < 1e-6
            # the application MTTF differs from the system MTTF (worst case)
            assert cell.mttf_a != mttf
        # the paper's headline: shorter C -> smaller E2 under failures
        e2s = [c.e2 for c in rows]  # ordered C = 500, 250, 125
        assert e2s[0] > e2s[1] > e2s[2]

    # higher failure rate hurts: at equal C, E2(3000s) > E2(6000s)
    for interval in cfg.intervals:
        assert by_key[(3000.0, interval)].e2 > by_key[(6000.0, interval)].e2
        assert by_key[(3000.0, interval)].f >= by_key[(6000.0, interval)].f

    # baseline E1 calibration: the paper reports 5,248 s.  At small scale
    # the checkpoint-phase cost is negligible and the match is tight; at
    # larger scales the linear-barrier phases add up to ~6 % (see
    # EXPERIMENTS.md for the full-scale intercept discussion).
    tolerance = 0.02 if nranks <= 1024 else 0.10
    assert abs(baseline.e1 - 5248.0) / 5248.0 < tolerance
