"""Extension (paper future work 3): ULFM recovery vs. abort-and-restart.

Runs one iterative workload under an identical injected failure with both
fault-handling strategies and compares total simulated time:

* classic application-level checkpoint/restart (the paper's base model:
  detection -> MPI_Abort -> restart from checkpoint, virtual time carried
  over);
* ULFM shrink-and-continue (MPI_ERR_PROC_FAILED -> revoke -> shrink ->
  survivors absorb the lost rank's share).
"""

from repro.core.checkpoint.protocol import CheckpointProtocol
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.restart import RestartDriver
from repro.core.simulator import XSim
from repro.mpi.errhandler import ERRORS_RETURN, MpiError

from benchmarks._util import once, report

NRANKS = 32
ITERS = 50
WORK = 10.0
CKPT = 10
FAIL = FailureSchedule.of((7, 215.0))

SYSTEM = SystemConfig.paper_system(
    nranks=NRANKS, slowdown=1.0, send_overhead_native=0.0, recv_overhead_native=0.0
)


def _cr_app(mpi, store):
    yield from mpi.init()
    proto = CheckpointProtocol(mpi, store)
    start, _ = yield from proto.restore_latest()
    it = start or 0
    while it < ITERS:
        yield from mpi.compute(WORK)
        it += 1
        if it % CKPT == 0 or it == ITERS:
            yield from proto.checkpoint(it, {"it": it}, 1024)
    yield from mpi.finalize()
    return it


def _ulfm_app(mpi):
    yield from mpi.init()
    mpi.set_errhandler(ERRORS_RETURN)
    comm = None
    it = 0
    scale = 1.0
    while it < ITERS:
        try:
            yield from mpi.compute(WORK * scale)
            it += 1
            if it % CKPT == 0:
                yield from mpi.barrier(comm=comm)
        except MpiError:
            yield from mpi.comm_revoke(comm=comm)
            comm = yield from mpi.comm_shrink(comm=comm)
            scale = NRANKS / mpi.comm_size(comm)  # absorb the lost share
    return mpi.wtime()


def _run_cr():
    driver = RestartDriver(SYSTEM, _cr_app, make_args=lambda store: (store,), schedule=FAIL)
    return driver.run()


def _run_ulfm():
    sim = XSim(SYSTEM.scaled(strict_finalize=False))
    sim.inject_schedule(FAIL)
    result = sim.run(_ulfm_app)
    survivors = [r for r, s in result.states.items() if s.value == "done"]
    return result, max(result.end_times[r] for r in survivors), len(survivors)


def test_ulfm_vs_checkpoint_restart(benchmark):
    cr, (ulfm_result, ulfm_e2, survivors) = once(
        benchmark, lambda: (_run_cr(), _run_ulfm())
    )

    report(
        "",
        f"=== ULFM shrink-and-continue vs abort+restart "
        f"({NRANKS} ranks, failure of rank 7 at t=215s) ===",
        f"checkpoint/restart: E2 = {cr.e2:10,.1f}s  (F={cr.f}, restarts={cr.restarts})",
        f"ULFM recovery     : E2 = {ulfm_e2:10,.1f}s  ({survivors} survivors continued)",
        f"ULFM advantage    : {cr.e2 - ulfm_e2:,.1f}s ({(1 - ulfm_e2 / cr.e2) * 100:.0f}%)",
    )

    assert cr.completed
    assert cr.f == 1
    assert survivors == NRANKS - 1
    # the failure-free time is 500s of work + checkpoint barriers; both
    # strategies must exceed it
    assert cr.e2 > ITERS * WORK
    assert ulfm_e2 > ITERS * WORK
    # for this scenario (cheap shrink, modest work redistribution) ULFM
    # avoids the full lost-work recomputation and wins
    assert ulfm_e2 < cr.e2
