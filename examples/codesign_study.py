#!/usr/bin/env python3
"""Hardware/software co-design parameter study.

The paper's thesis is that resilience must be part of the architecture
co-design loop.  This example runs the heat application over a grid of
*machine* design points — interconnect link bandwidth, collective algorithm
family, and checkpoint interval — under a fixed failure rate, and reports
the E2 (time-to-solution with failures) and machine-energy surface that a
co-design study would optimize over.

Run:  python examples/codesign_study.py
"""

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core import RestartDriver, SystemConfig
from repro.models.power import PowerModel

NRANKS = 64
MTTF = 3000.0
POWER = PowerModel(idle_watts=60.0, busy_watts=180.0)

DESIGN_POINTS = [
    # (label, link bandwidth, collective algorithm)
    ("baseline torus / linear colls", "32GB/s", "linear"),
    ("baseline torus / tree colls", "32GB/s", "tree"),
    ("thin links (8 GB/s) / linear", "8GB/s", "linear"),
    ("fat links (128 GB/s) / linear", "128GB/s", "linear"),
]
INTERVALS = (500, 125)


def measure(bandwidth: str, algo: str, interval: int) -> tuple[float, int, float]:
    system = SystemConfig.paper_system(
        nranks=NRANKS, link_bandwidth=bandwidth, collective_algorithm=algo
    )
    workload = HeatConfig.paper_workload(checkpoint_interval=interval, nranks=NRANKS)
    driver = RestartDriver(
        system, heat3d, make_args=lambda store: (workload, store), mttf=MTTF, seed=7
    )
    run = driver.run()
    # busy time per node ~ the useful compute plus recomputed work
    compute = workload.iterations * workload.points_per_rank * \
        workload.native_seconds_per_point * system.slowdown
    busy = min(run.e2, compute * (1 + 0.5 * run.restarts))
    energy = POWER.machine_energy(NRANKS, run.e2, busy)
    return run.e2, run.f, energy / 1e6


print(f"co-design study: heat3d, {NRANKS} ranks, system MTTF {MTTF:,.0f}s, "
      f"checkpoint intervals {INTERVALS}\n")
print(f"{'design point':<32} {'C':>5} {'E2':>11} {'F':>3} {'energy':>9}")
rows = {}
for label, bw, algo in DESIGN_POINTS:
    for interval in INTERVALS:
        e2, f, mj = measure(bw, algo, interval)
        rows[(label, interval)] = (e2, f, mj)
        print(f"{label:<32} {interval:>5} {e2:>9,.0f}s {f:>3} {mj:>7.1f}MJ")

best = min(rows, key=lambda k: rows[k][0])
print(f"\nfastest design point: {best[0]} at C={best[1]} "
      f"(E2 = {rows[best][0]:,.0f}s, {rows[best][2]:.1f} MJ)")
print("\nObservations:")
print(" * the checkpoint interval dominates E2 at this failure rate -")
print("   architecture changes matter less than the resilience strategy;")
print(" * tree collectives shave the checkpoint-phase barriers;")
print(" * link bandwidth barely moves this compute-bound workload -")
print("   the co-design loop should spend the budget elsewhere.")
