#!/usr/bin/env python3
"""First Impressions (paper SV-D): where failures are detected and what
they leave behind in the checkpoint store.

The heat application cycles through computation, halo exchange,
checkpoint, and barrier phases.  The paper observed:

* a failure during the *computation* phase is detected in the halo
  exchange (failing point-to-point communication);
* a failure during the *checkpoint* phase is detected in the following
  barrier, leaving a corrupted (partially written) checkpoint file;
* aborts leave an incomplete/corrupted checkpoint or partially deleted
  old checkpoints.

This script injects one failure into each phase and reports what the
simulator observed.
"""

from repro.apps.heat3d import HeatConfig
from repro.core.harness.config import SystemConfig
from repro.core.harness.experiment import observe_failure_mode
from repro.models.filesystem import FileSystemModel

NRANKS = 27
system = SystemConfig.paper_system(nranks=NRANKS)
# Give checkpoint writes a visible duration so a failure can land inside
# one (the Table II config writes in zero time, making that phase a
# measure-zero target).
slow_fs = system.scaled(filesystem=FileSystemModel.create("1GB/s", "1kB/s", "1ms"))
workload = HeatConfig.paper_workload(checkpoint_interval=25, nranks=NRANKS, iterations=100)

# Iteration costs ~5.24 s; checkpoints at iterations 25/50/75/100.
# Phase map (slow-FS system): compute 0..131, checkpoint ~131..164, ...
SCENARIOS = [
    ("computation phase", system, 60.0),
    ("checkpoint phase", slow_fs, 140.0),
    ("second computation phase", system, 200.0),
]

print(f"{NRANKS}-rank heat3d, checkpoint interval 25 of 100 iterations\n")
for label, sys_cfg, t in SCENARIOS:
    obs = observe_failure_mode(sys_cfg, workload, rank=13, time=t)
    print(f"failure injected during the {label} (t={t:.0f}s):")
    print(f"  activated at         : rank {obs.activated[0]} @ {obs.activated[1]:.1f}s")
    site = {"pt2pt": "halo exchange (point-to-point)", "collective": "barrier (collective)"}
    print(f"  detected in          : {site.get(obs.detected_phase, obs.detected_phase)}")
    print(f"  job aborted          : {obs.aborted}")
    print(f"  corrupted checkpoint : {obs.corrupted_checkpoint}")
    print(f"  incomplete checkpoint: {obs.incomplete_checkpoint}")
    print(f"  partially deleted old: {obs.partially_deleted_old}")
    print()
