#!/usr/bin/env python3
"""Checkpoint-interval / system-MTTF trade-off study (paper Table II).

Sweeps the heat application's checkpoint interval against the simulated
system MTTF and prints the paper's table — E1 (failure-free time), E2
(time with failures and restarts), F (activated failures), and
MTTF_a = E2/(F+1) — side by side with the paper's 32,768-rank values.

The default runs at 512 simulated ranks (a ~30 s study); pass a rank
count to scale up, e.g.:

    python examples/heat3d_resilience.py 4096
"""

import sys
import time

from repro.core.harness.experiment import Table2Config, run_table2
from repro.core.harness.report import render_table2

nranks = int(sys.argv[1]) if len(sys.argv) > 1 else 512
cfg = Table2Config(nranks=nranks)

print(f"Reproducing Table II at {nranks} simulated ranks "
      f"(paper: 32,768 ranks on a 32x32x32 torus) ...")
t0 = time.time()
cells = run_table2(cfg)
print(f"... {time.time() - t0:.1f} s of host time\n")

print(render_table2(cells))
print()
from repro.util.ascii_chart import bar_chart

with_failures = [c for c in cells if c.mttf is not None]
print("E2 by (MTTF_s, C) - shorter checkpoint intervals win under failures:")
print(bar_chart(
    [(f"MTTF={c.mttf:,.0f}s C={c.interval}", c.e2) for c in with_failures],
    width=44, unit=" s", zero_based=False,
))
print()
print("Shape checks (the paper's observations):")
by_key = {(c.mttf, c.interval): c for c in cells}
# cfg.intervals is ordered largest-to-smallest C, so E1 should ascend
e1s = [by_key[(6000.0, c)].e1 for c in cfg.intervals]
print(f"  * E1 grows as C shrinks (checkpoint overhead): "
      f"{' < '.join(f'{v:,.0f}' for v in e1s)}  "
      f"{'OK' if e1s == sorted(e1s) else 'VIOLATED'}")
for mttf in cfg.mttfs:
    e2s = [by_key[(mttf, c)].e2 for c in cfg.intervals]
    ok = all(a >= b for a, b in zip(e2s, e2s[1:]))
    print(f"  * E2 shrinks as C shrinks at MTTF={mttf:,.0f}s "
          f"(less lost work): {'OK' if ok else 'VIOLATED'}")
for c in cells:
    if c.f:
        rel = c.mttf_a / (c.e2 / (c.f + 1))
        assert abs(rel - 1) < 1e-9
print("  * MTTF_a == E2 / (F + 1) on every row: OK")
