#!/usr/bin/env python3
"""Quickstart: simulate an MPI job, inject a process failure, watch the
detection -> MPI_Abort -> checkpoint/restart cycle.

Run:  python examples/quickstart.py
"""

import sys

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core import RestartDriver, SystemConfig, XSim
from repro.core.checkpoint.store import CheckpointStore

# ----------------------------------------------------------------------
# 1. Describe the simulated machine.  This is the paper's system scaled
#    down to 64 nodes: a 4x4x4 wrapped torus, 1 us links, 32 GB/s,
#    256 kB eager threshold, linear-algorithm collectives, and compute
#    nodes 1000x slower than a 1.7 GHz Opteron core.
# ----------------------------------------------------------------------
system = SystemConfig.paper_system(nranks=64)

# ----------------------------------------------------------------------
# 2. Describe the workload: the paper's heat-equation application with
#    4,096 grid points per rank, 1000 iterations, and a checkpoint (plus
#    halo exchange) every 250 iterations.
# ----------------------------------------------------------------------
workload = HeatConfig.paper_workload(checkpoint_interval=250, nranks=64)

# ----------------------------------------------------------------------
# 3. A clean run: measure E1, the failure-free simulated execution time.
# ----------------------------------------------------------------------
sim = XSim(system)
result = sim.run(heat3d, args=(workload, CheckpointStore()))
print(f"E1 (no failures) = {result.exit_time:,.1f} simulated seconds")
print(result.timing_report())

# ----------------------------------------------------------------------
# 4. Now with an injected MPI process failure.  The rank/time pair is the
#    paper's injection interface; the simulator logs the failure, the
#    surviving ranks detect it via the network timeout, the job aborts,
#    and the restart driver resumes from the last valid checkpoint with
#    virtual time carried over.
# ----------------------------------------------------------------------
from repro.core.faults.schedule import FailureSchedule

driver = RestartDriver(
    system,
    heat3d,
    make_args=lambda store: (workload, store),
    schedule=FailureSchedule.parse("13@2000s"),
    log_stream=sys.stdout,
)
run = driver.run()

print()
print(f"E2 (with failure + restart) = {run.e2:,.1f} simulated seconds")
print(f"activated failures F = {run.f}, restarts = {run.restarts}")
print(f"application MTTF  = {run.mttf_a:,.1f} s  (= E2 / (F + 1))")
print(f"lost work paid for: E2 - E1 = {run.e2 - result.exit_time:,.1f} s")

# ----------------------------------------------------------------------
# 5. The cost/benefit metrics the paper's co-design goal calls for.
# ----------------------------------------------------------------------
from repro.core.harness.metrics import compute_metrics

useful = workload.iterations * workload.points_per_rank *     workload.native_seconds_per_point * system.slowdown
metrics = compute_metrics(run, useful_time=useful, e1=result.exit_time,
                          nranks=system.nranks)
print()
print(metrics.summary())
