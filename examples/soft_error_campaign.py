#!/usr/bin/env python3
"""Soft errors: the Finject campaign (Table I) and real silent data
corruption propagating through the heat application.

Part 1 reruns the Finject-style bit-flip robustness campaign and prints
the paper's Table I next to the reproduction.

Part 2 runs heat3d in *real-data* mode, flips one bit in a victim rank's
grid mid-run, and measures how far the corruption spreads — the
redMPI-style observation the paper's related work discusses ("depending
on the application properties, a single bit flip can corrupt all MPI
processes of an application within a short period of time, or may be
corrected by the application's computational structure").
"""

import numpy as np

from repro.apps.heat3d import HeatConfig, heat3d, heat3d_serial_reference
from repro.core import SystemConfig, XSim
from repro.core.faults.finject import FinjectCampaign

# ----------------------------------------------------------------------
# Part 1: Table I
# ----------------------------------------------------------------------
PAPER_TABLE1 = {
    "Victims": "100",
    "Injections": "2197",
    "Minimum": "1",
    "Maximum": "98",
    "Mean": "21.97",
    "Median": "17",
    "Mode": "4",
    "Std.Dev.": "21.42",
}

print("=" * 64)
print("Part 1 - Finject bit-flip campaign (paper Table I)")
print("=" * 64)
result = FinjectCampaign().run()
print(f"{'Field':<12}{'measured':>10}{'paper':>10}   description")
for field, value, desc in result.table_rows():
    print(f"{field:<12}{value:>10}{PAPER_TABLE1[field]:>10}   {desc}")
print(f"\n(per-injection failure probability of the victim model: "
      f"{FinjectCampaign().victim.failure_probability:.4f}; "
      f"{result.sdc_hits} flips were silent data corruption, "
      f"{result.benign_hits} benign)")

# ----------------------------------------------------------------------
# Part 2: SDC propagation through heat3d (real-data mode)
# ----------------------------------------------------------------------
print()
print("=" * 64)
print("Part 2 - silent data corruption propagating through heat3d")
print("=" * 64)

cfg = HeatConfig(
    grid=(16, 16, 16),
    ranks=(2, 2, 2),
    iterations=24,
    checkpoint_interval=24,
    exchange_interval=1,  # exchange every iteration: corruption can travel
    data_mode="real",
    native_seconds_per_point=1e-3,  # slow virtual clock so the flip lands mid-run
)
system = SystemConfig.paper_system(nranks=8, slowdown=1.0)

# clean reference
clean = XSim(system).run(heat3d, args=(cfg, None))
clean_sums = {r: s.checksum for r, s in clean.exit_values.items()}

# Corrupted runs: one bit flip into rank 3's grid after ~8 iterations.
# Outcomes vary wildly with where the flip lands (a high exponent bit of
# an interior point vs. the low mantissa of a zero-valued ghost cell), so
# run a small campaign of independent single-flip trials.
mid_run = 8 * cfg.points_per_rank * 1e-3  # virtual time of iteration ~8
trials = []
for trial_seed in range(10):
    sim = XSim(system, seed=trial_seed)
    sim.soft_errors.schedule_flip(rank=3, time=mid_run)
    dirty = sim.run(heat3d, args=(cfg, None))
    dirty_sums = {r: s.checksum for r, s in dirty.exit_values.items()}
    flip = sim.soft_errors.outcomes[0].record
    touched = sum(abs(clean_sums[r] - dirty_sums[r]) > 1e-12 for r in clean_sums)
    worst = max(abs(clean_sums[r] - dirty_sums[r]) for r in clean_sums)
    trials.append((trial_seed, flip, touched, worst))

print(f"{'trial':>5} {'byte':>6} {'bit':>4} {'ranks touched':>14} {'max |delta checksum|':>21}")
for seed, flip, touched, worst in trials:
    print(f"{seed:>5} {flip.byte_offset:>6} {flip.bit:>4} {touched:>11}/8   {worst:>21.3e}")
spread = [t for _, _, t, _ in trials]
print(f"\nsingle bit flips reached between {min(spread)} and {max(spread)} of 8 ranks "
      f"within {cfg.iterations - 8} further iterations of "
      f"{cfg.effective_exchange_interval}-iteration halo exchanges -")
print("exactly the paper's redMPI observation: a flip can corrupt the whole"
      "\njob quickly, or be absorbed by the computation's structure.")

serial = float(heat3d_serial_reference(cfg).sum())
print(f"(clean distributed total {sum(clean_sums.values()):.12f} matches "
      f"the serial reference {serial:.12f})")
