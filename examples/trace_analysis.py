#!/usr/bin/env python3
"""Communication-trace analysis (the DUMPI-trace workflow).

The xSim ecosystem feeds MPI traces into downstream tools (SST/macro
consumes DUMPI traces).  This example records the full message trace of
three applications with different communication profiles, then does the
standard post-mortem analyses: traffic matrices, protocol split, busiest
pairs, and a message-rate timeline.
"""

from repro.apps.cg import CgConfig, cg
from repro.apps.heat3d import HeatConfig, heat3d
from repro.apps.samplesort import SampleSortConfig, samplesort
from repro.core import SystemConfig, XSim
from repro.util.ascii_chart import bar_chart, sparkline

NRANKS = 27


def run_traced(app, args, label):
    sim = XSim(SystemConfig.paper_system(nranks=NRANKS), record_trace=True)
    result = sim.run(app, args=args)
    assert result.completed, label
    return sim.world.trace, result.exit_time


WORKLOADS = [
    (
        "heat3d (stencil halos)",
        heat3d,
        (HeatConfig.paper_workload(checkpoint_interval=250, nranks=NRANKS, iterations=500), None),
    ),
    (
        "cg (allreduce per iteration)",
        cg,
        (CgConfig.for_ranks(NRANKS, max_iterations=60, checkpoint_interval=60), None),
    ),
    (
        "samplesort (alltoallv)",
        samplesort,
        (SampleSortConfig(keys_per_rank=2000, data_mode="real"),),
    ),
]

for label, app, args in WORKLOADS:
    trace, e1 = run_traced(app, args, label)
    msgs = list(trace)
    eager = sum(1 for m in msgs if m.protocol == "eager")
    print("=" * 72)
    print(f"{label}: {len(msgs)} messages, {trace.total_bytes():,} bytes, "
          f"E1 = {e1:,.2f} s")
    print(f"protocol split: {eager} eager / {len(msgs) - eager} rendezvous; "
          f"dropped: {len(trace.dropped_messages())}")
    print("busiest pairs:")
    pairs = trace.busiest_pairs(5)
    print(bar_chart([(f"{s}->{d}", b) for (s, d), b in pairs], width=30, unit=" B"))
    # message-rate timeline: bucket post times into 24 bins
    times = [m.post_time for m in msgs]
    span = max(times) - min(times) or 1.0
    bins = [0] * 24
    for t in times:
        bins[min(23, int((t - min(times)) / span * 24))] += 1
    print(f"message-rate timeline: {sparkline(bins)}")
    print()

print("The three profiles are visibly different: heat3d's sparse periodic")
print("halo bursts, cg's steady collective drumbeat, and samplesort's")
print("single all-to-all redistribution spike.")
