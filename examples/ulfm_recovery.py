#!/usr/bin/env python3
"""ULFM shrink-and-continue vs. abort-and-restart (paper future work 3).

The paper's base fault model aborts the whole job on any process failure
and restarts from a checkpoint.  Its conclusion announces initial ULFM
support: applications see MPI_ERR_PROC_FAILED, revoke the communicator,
shrink it, and continue on the survivors without a restart.

This example runs the same iterative workload both ways under one injected
failure and compares the total simulated time.
"""

import sys

from repro.core import RestartDriver, SystemConfig, XSim
from repro.core.faults.schedule import FailureSchedule
from repro.mpi.errhandler import ERRORS_RETURN, MpiError

NRANKS = 16
ITERS = 40
WORK_PER_ITER = 10.0  # simulated seconds per rank per iteration
CKPT_EVERY = 10
FAIL_AT = 215.0  # mid iteration 21

system = SystemConfig.paper_system(
    nranks=NRANKS, slowdown=1.0, send_overhead_native=0.0, recv_overhead_native=0.0
)


# ----------------------------------------------------------------------
# Variant 1: classic abort + application-level checkpoint/restart
# ----------------------------------------------------------------------
def cr_app(mpi, store):
    from repro.core.checkpoint.protocol import CheckpointProtocol

    yield from mpi.init()
    proto = CheckpointProtocol(mpi, store)
    start, _ = yield from proto.restore_latest()
    it = start or 0
    while it < ITERS:
        yield from mpi.compute(WORK_PER_ITER)
        it += 1
        if it % CKPT_EVERY == 0 or it == ITERS:
            yield from proto.checkpoint(it, {"it": it}, 1024)
    yield from mpi.finalize()
    return it


driver = RestartDriver(
    system,
    cr_app,
    make_args=lambda store: (store,),
    schedule=FailureSchedule.of((7, FAIL_AT)),
)
cr = driver.run()


# ----------------------------------------------------------------------
# Variant 2: ULFM — revoke, shrink, survivors redistribute the work
# ----------------------------------------------------------------------
def ulfm_app(mpi):
    yield from mpi.init()
    mpi.set_errhandler(ERRORS_RETURN)
    comm = None  # world
    it = 0
    while it < ITERS:
        try:
            yield from mpi.compute(WORK_PER_ITER)
            it += 1
            if it % CKPT_EVERY == 0:
                yield from mpi.barrier(comm=comm)
        except MpiError as err:
            # failure observed: revoke so blocked peers wake, then shrink
            yield from mpi.comm_revoke(comm=comm)
            comm = yield from mpi.comm_shrink(comm=comm)
            survivors = mpi.comm_size(comm)
            # survivors absorb the dead rank's share of remaining work
            extra = WORK_PER_ITER * (NRANKS / survivors - 1.0)
            yield from mpi.compute(extra * (ITERS - it) / max(1, ITERS - it))
    done_at = mpi.wtime()
    return done_at


sim = XSim(system.scaled(strict_finalize=False))
sim.inject_schedule(FailureSchedule.of((7, FAIL_AT)))
ulfm_result = sim.run(ulfm_app)
ulfm_e2 = max(
    t for r, t in ulfm_result.end_times.items() if ulfm_result.states[r].value == "done"
)

# ----------------------------------------------------------------------
print(f"workload: {ITERS} iterations x {WORK_PER_ITER:.0f}s, checkpoint every "
      f"{CKPT_EVERY}, failure of rank 7 at t={FAIL_AT:.0f}s\n")
print(f"abort + checkpoint/restart : E2 = {cr.e2:9,.1f} s "
      f"({cr.restarts} restart(s), lost work recomputed)")
print(f"ULFM shrink-and-continue   : E2 = {ulfm_e2:9,.1f} s "
      f"(no restart; survivors continue)")
if ulfm_e2 < cr.e2:
    print(f"\nULFM saves {cr.e2 - ulfm_e2:,.1f} simulated seconds "
          f"({(1 - ulfm_e2 / cr.e2) * 100:.0f}%) on this scenario.")
else:
    print("\nCheckpoint/restart wins on this scenario.")
sys.exit(0)
