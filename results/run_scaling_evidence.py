"""Fallback full-scale evidence: paper-exact E1 column at 32,768 ranks
(row-by-row logging), plus the complete table at 8,192 ranks."""
import time

from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.experiment import Table2Config, measure_e1, run_table2
from repro.core.harness.report import render_table2

log = open("/root/repo/results/plan_b.txt", "w", buffering=1)

cfg = Table2Config(nranks=32768)
system = cfg.system()
log.write("E1 at the paper-exact 32,768 ranks:\n")
for interval in (1000, 500, 250, 125):
    t0 = time.time()
    e1 = measure_e1(system, cfg.workload(interval))
    log.write(f"  C={interval:>4}: E1 = {e1:,.1f} s   (host {time.time()-t0:.0f} s)\n")

log.write("\nFull table at 8,192 ranks:\n")
t0 = time.time()
cells = run_table2(Table2Config(nranks=8192))
log.write(render_table2(cells) + "\n")
log.write(f"(host {time.time()-t0:.0f} s)\n")
log.close()
print("done")
