"""xsim-resilience: a performance/resilience simulation toolkit for HPC
hardware/software co-design.

Reproduction of C. Engelmann and T. Naughton, "Toward a Performance/
Resilience Tool for Hardware/Software Co-Design of High-Performance
Computing Systems" (ICPP 2013): the Extreme-scale Simulator (xSim)
execution model plus its resilience extensions - MPI process failure
injection, failure propagation/detection/notification, simulated
``MPI_Abort``, and application-level checkpoint/restart - built from
scratch in Python.

Quick start::

    from repro.core import XSim, SystemConfig
    from repro.apps.heat3d import heat3d, HeatConfig

    sim = XSim(SystemConfig.paper_system(nranks=512))
    sim.inject_failure(rank=3, time=100.0)
    result = sim.run(heat3d, args=(HeatConfig.paper_workload(nranks=512),))
    print(result.timing_report())

Package map:

* :mod:`repro.pdes`   - discrete event engine (virtual processes, clocks)
* :mod:`repro.models` - processor/network/file-system/power/memory models
* :mod:`repro.mpi`    - the simulated MPI layer (pt2pt, collectives, ULFM)
* :mod:`repro.core`   - the resilience toolkit: fault injection, detection,
  checkpoint/restart, restart driver, experiment harness
* :mod:`repro.apps`   - simulated applications (heat3d et al.)
"""

__version__ = "1.0.0"
