"""Simulated MPI applications.

* :mod:`repro.apps.heat3d` — the paper's target application: an iterative
  3-D heat-equation solver with cube domain decomposition, periodic halo
  exchanges, and application-level checkpoint/restart.  Runs in *modeled*
  mode (computation is pure virtual time; the Table II configuration) or
  *real-data* mode (actual numpy stencil updates carried through the
  simulated messages, validated against a serial reference).
* :mod:`repro.apps.cg` — a Mantevo-style conjugate-gradient proxy whose
  per-iteration allreduces give the opposite communication profile
  (collective/latency-bound; validated against a serial solve).
* :mod:`repro.apps.samplesort` — distributed sample sort, an
  alltoallv-dominated redistribution workload (validated against
  ``np.sort``).
* :mod:`repro.apps.stencil2d` — a 2-D five-point stencil with the same
  checkpoint discipline (a second stencil workload for the harness).
* :mod:`repro.apps.ring` — token ring microbenchmark (latency paths).
* :mod:`repro.apps.collective_bench` — collective-operation sweep app.
* :mod:`repro.apps.naive_cr` — a minimal compute/checkpoint loop with an
  analytically known optimum (Daly validation).
"""

from repro.apps.cg import CgConfig, cg
from repro.apps.heat3d import HeatConfig, heat3d
from repro.apps.samplesort import SampleSortConfig, samplesort

__all__ = [
    "CgConfig",
    "HeatConfig",
    "SampleSortConfig",
    "cg",
    "heat3d",
    "samplesort",
]
