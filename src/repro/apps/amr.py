"""AMR-like load-imbalanced application: a moving refinement front.

The other workloads decompose uniformly, so every rank advances in
lockstep and the shard balancer / resilience strategies never face skew.
This app models an adaptive-mesh-refinement pattern on a 1-D domain: each
rank owns ``base_cells`` coarse cells, and a refinement front — a window
of ranks around a centre that moves every ``regrid_interval`` iterations —
multiplies the cell count of nearby ranks by up to ``refine_factor``.
Per-iteration compute is proportional to the *current* cell count, so the
load profile is deliberately non-uniform and time-varying; neighbour flux
exchanges every iteration make the imbalance visible as wait time, and a
global cell census (``allreduce``) at every regrid models the
load-balancer bookkeeping.

Checkpoint sizes also track the live cell count, so resilience-strategy
comparisons see size-varying checkpoints.  Everything is a deterministic
function of (rank, iteration) — no RNG — so digests are stable across
backends and the restart discipline is exactly the heat3d one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.core.checkpoint.protocol import resolve_protocol
from repro.mpi.api import MpiApi
from repro.mpi.constants import PROC_NULL
from repro.util.errors import ConfigurationError

Gen = Generator[Any, Any, Any]

#: Flux-exchange tags (left-going, right-going).
_TAG_LEFT = 31
_TAG_RIGHT = 32
#: Census allreduce payload (one double).
_CENSUS_NBYTES = 8


@dataclass(frozen=True)
class AmrConfig:
    """One AMR-like run: domain width, refinement shape, cadences."""

    nranks: int = 64
    #: Coarse cells per rank (the unrefined load).
    base_cells: int = 512
    iterations: int = 100
    checkpoint_interval: int = 25
    #: Iterations between regrids (the front moves one step per regrid).
    regrid_interval: int = 10
    #: Peak cell multiplier at the centre of the refinement front.
    refine_factor: int = 4
    #: Ranks the front spans on each side of its centre (None = nranks/4,
    #: at least 1).
    front_halfwidth: int | None = None
    native_seconds_per_cell: float = 2.0e-6
    item_bytes: int = 8
    #: Wire bytes exchanged per neighbour flux per 16 cells.
    flux_bytes_per_16_cells: int = 8
    checkpoint_header_bytes: int = 256

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ConfigurationError(f"nranks must be >= 1, got {self.nranks}")
        if self.base_cells < 1:
            raise ConfigurationError(f"base_cells must be >= 1, got {self.base_cells}")
        if self.regrid_interval < 1:
            raise ConfigurationError(
                f"regrid_interval must be >= 1, got {self.regrid_interval}"
            )
        if self.refine_factor < 1:
            raise ConfigurationError(
                f"refine_factor must be >= 1, got {self.refine_factor}"
            )
        if self.front_halfwidth is not None and self.front_halfwidth < 1:
            raise ConfigurationError(
                f"front_halfwidth must be >= 1, got {self.front_halfwidth}"
            )

    @classmethod
    def for_ranks(cls, nranks: int, **overrides: Any) -> "AmrConfig":
        return cls(nranks=nranks, **overrides)

    @property
    def halfwidth(self) -> int:
        if self.front_halfwidth is not None:
            return self.front_halfwidth
        return max(1, self.nranks // 4)

    def cells_at(self, rank: int, iteration: int) -> int:
        """Live cell count of ``rank`` during ``iteration`` (deterministic:
        the front centre advances one rank per regrid epoch, wrapping)."""
        epoch = iteration // self.regrid_interval
        centre = epoch % self.nranks
        distance = min((rank - centre) % self.nranks, (centre - rank) % self.nranks)
        w = self.halfwidth
        if distance >= w:
            return self.base_cells
        boost = (self.refine_factor - 1) * (w - distance) // w
        return self.base_cells * (1 + boost)

    def flux_nbytes(self, cells: int) -> int:
        return max(self.item_bytes, cells // 16 * self.flux_bytes_per_16_cells)

    def checkpoint_nbytes(self, cells: int) -> int:
        return self.checkpoint_header_bytes + cells * self.item_bytes


def amr(mpi: MpiApi, cfg: AmrConfig, store: Any = None) -> Gen:
    """The AMR-like app: compute-per-cell, neighbour flux, regrid census,
    heat3d-style checkpoint/restart."""
    yield from mpi.init()
    if cfg.nranks != mpi.size:
        raise ConfigurationError(f"config is for {cfg.nranks} ranks, job has {mpi.size}")
    rank, size = mpi.rank, mpi.size
    left = rank - 1 if rank > 0 else PROC_NULL
    right = rank + 1 if rank < size - 1 else PROC_NULL
    # Tracked allocation sized for the worst-case refined load.
    mpi.malloc("amr-cells", nbytes=cfg.base_cells * cfg.refine_factor * cfg.item_bytes)

    proto = resolve_protocol(mpi, store)
    start_iter = 0
    if proto is not None:
        cid, payload = yield from proto.restore_latest()
        if cid is not None:
            start_iter = cid

    it = start_iter
    ck = cfg.checkpoint_interval
    max_cells = 0
    while it < cfg.iterations:
        cells = cfg.cells_at(rank, it)
        max_cells = max(max_cells, cells)
        yield from mpi.compute_ops(cells, cfg.native_seconds_per_cell)
        # Neighbour flux exchange: refined ranks ship (and wait on)
        # proportionally more, so the imbalance surfaces as wait time.
        nbytes = cfg.flux_nbytes(cells)
        rreqs = [mpi.irecv(peer, tag=tag) for peer, tag in
                 ((left, _TAG_RIGHT), (right, _TAG_LEFT))]
        sreqs = []
        for peer, tag in ((left, _TAG_LEFT), (right, _TAG_RIGHT)):
            req = yield from mpi.isend(peer, payload=None, nbytes=nbytes, tag=tag)
            sreqs.append(req)
        yield from mpi.waitall(sreqs)
        yield from mpi.waitall(rreqs)
        it += 1
        # Regrid: global cell census (the load-balancer bookkeeping).
        if it % cfg.regrid_interval == 0 and it < cfg.iterations:
            yield from mpi.allreduce(None, nbytes=_CENSUS_NBYTES)
        if proto is not None and (it % ck == 0 or it == cfg.iterations):
            payload = {"iteration": it}
            yield from proto.checkpoint(it, payload, cfg.checkpoint_nbytes(cells))
    yield from mpi.finalize()
    return max_cells
