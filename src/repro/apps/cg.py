"""Conjugate-gradient proxy application (Mantevo-style mini-app).

The co-design ecosystem the paper situates itself in runs "proxy/mini
applications" (SST + the Mantevo project) whose communication patterns
differ from stencil codes: a CG solve is dominated by *global* allreduce
dot products every iteration, interleaved with a halo-exchange sparse
matrix-vector product.  That makes it latency/collective-bound where
heat3d is compute-bound — the complementary workload a resilience study
needs (checkpoint-phase barriers are marginal for heat3d but CG already
synchronizes globally every iteration).

The solver is distributed CG on the standard 7-point 3-D Laplacian with
Dirichlet boundaries, decomposed into cubes like heat3d:

* ``modeled`` mode: per-iteration flops and message sizes only;
* ``real`` mode: the actual distributed CG iteration on numpy arrays —
  halo exchanges carry face data, dot products go through the simulated
  ``allreduce`` — validated against a serial reference solve.

Checkpointing stores (iteration, x, r, p) per rank with the same
write/barrier/prune discipline as the paper's target application.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Generator

import numpy as np

from repro.apps.heat3d import factor3, neighbor_ranks, rank_coords
from repro.core.checkpoint.protocol import resolve_protocol
from repro.mpi import ops
from repro.mpi.api import MpiApi
from repro.mpi.constants import PROC_NULL
from repro.util.errors import ConfigurationError

Gen = Generator[Any, Any, Any]

#: Calibrated native per-point cost of one CG iteration (SpMV + 3 axpys +
#: 2 local dot products) on the reference core.
NATIVE_SECONDS_PER_POINT_ITER = 2.6e-6

_HALO_TAGS = {(0, -1): 21, (0, +1): 22, (1, -1): 23, (1, +1): 24, (2, -1): 25, (2, +1): 26}


@dataclass(frozen=True)
class CgConfig:
    """Distributed CG solve parameters."""

    grid: tuple[int, int, int] = (64, 64, 64)
    ranks: tuple[int, int, int] = (4, 4, 4)
    max_iterations: int = 100
    tolerance: float = 1e-8
    checkpoint_interval: int = 25
    native_seconds_per_point_iter: float = NATIVE_SECONDS_PER_POINT_ITER
    data_mode: str = "modeled"
    item_bytes: int = 8
    checkpoint_header_bytes: int = 256

    def __post_init__(self) -> None:
        if self.data_mode not in ("modeled", "real"):
            raise ConfigurationError(f"data_mode must be modeled/real, got {self.data_mode!r}")
        if self.max_iterations < 1 or self.checkpoint_interval < 1:
            raise ConfigurationError("max_iterations and checkpoint_interval must be >= 1")
        for g, p in zip(self.grid, self.ranks):
            if p < 1 or g < p or g % p:
                raise ConfigurationError(f"grid {self.grid} not divisible by ranks {self.ranks}")

    @classmethod
    def for_ranks(cls, nranks: int, points_per_side: int = 8, **overrides: Any) -> "CgConfig":
        px, py, pz = factor3(nranks)
        base = cls(
            grid=(points_per_side * px, points_per_side * py, points_per_side * pz),
            ranks=(px, py, pz),
        )
        return replace(base, **overrides) if overrides else base

    @property
    def nranks(self) -> int:
        px, py, pz = self.ranks
        return px * py * pz

    @property
    def local_shape(self) -> tuple[int, int, int]:
        return tuple(g // p for g, p in zip(self.grid, self.ranks))  # type: ignore[return-value]

    @property
    def points_per_rank(self) -> int:
        lx, ly, lz = self.local_shape
        return lx * ly * lz

    def face_bytes(self, axis: int) -> int:
        """Wire size of one halo face perpendicular to ``axis``."""
        lx, ly, lz = self.local_shape
        return {0: ly * lz, 1: lx * lz, 2: lx * ly}[axis] * self.item_bytes

    @property
    def checkpoint_nbytes(self) -> int:
        """x, r, and p vectors plus the header."""
        return self.checkpoint_header_bytes + 3 * self.points_per_rank * self.item_bytes


@dataclass(frozen=True)
class CgResult:
    """Per-rank outcome of a CG solve."""

    rank: int
    iterations: int
    converged: bool
    residual_norm: float | None
    solution_norm_sq: float | None
    restarted_from: int


# ----------------------------------------------------------------------
# real-data linear algebra
# ----------------------------------------------------------------------
def rhs_block(cfg: CgConfig, rank: int) -> np.ndarray:
    """This rank's block of the deterministic right-hand side."""
    lx, ly, lz = cfg.local_shape
    cx, cy, cz = rank_coords(rank, cfg.ranks)
    nx, ny, nz = cfg.grid
    gx = np.arange(cx * lx, (cx + 1) * lx)
    gy = np.arange(cy * ly, (cy + 1) * ly)
    gz = np.arange(cz * lz, (cz + 1) * lz)
    fx = np.sin(2 * np.pi * (gx + 0.5) / nx) + 0.1
    fy = np.cos(2 * np.pi * (gy + 0.5) / ny) + 0.1
    fz = np.sin(4 * np.pi * (gz + 0.5) / nz) + 0.1
    return (fx[:, None, None] * fy[None, :, None] * fz[None, None, :]).astype(np.float64)


def apply_laplacian(p_ghost: np.ndarray) -> np.ndarray:
    """7-point operator ``A p`` on the interior of a ghosted block
    (Dirichlet zero outside the global domain)."""
    core = p_ghost[1:-1, 1:-1, 1:-1]
    return (
        6.0 * core
        - p_ghost[:-2, 1:-1, 1:-1]
        - p_ghost[2:, 1:-1, 1:-1]
        - p_ghost[1:-1, :-2, 1:-1]
        - p_ghost[1:-1, 2:, 1:-1]
        - p_ghost[1:-1, 1:-1, :-2]
        - p_ghost[1:-1, 1:-1, 2:]
    )


def cg_serial_reference(cfg: CgConfig) -> tuple[np.ndarray, int, float]:
    """Serial CG on the global grid: (solution, iterations, residual)."""
    nx, ny, nz = cfg.grid
    b = np.zeros((nx, ny, nz))
    for rank in range(cfg.nranks):
        lx, ly, lz = cfg.local_shape
        cx, cy, cz = rank_coords(rank, cfg.ranks)
        b[cx * lx:(cx + 1) * lx, cy * ly:(cy + 1) * ly, cz * lz:(cz + 1) * lz] = rhs_block(
            cfg, rank
        )
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rs = float((r * r).sum())
    tol2 = cfg.tolerance**2 * rs
    it = 0
    while it < cfg.max_iterations and rs > tol2:
        pg = np.zeros((nx + 2, ny + 2, nz + 2))
        pg[1:-1, 1:-1, 1:-1] = p
        ap = apply_laplacian(pg)
        alpha = rs / float((p * ap).sum())
        x += alpha * p
        r -= alpha * ap
        rs_new = float((r * r).sum())
        p = r + (rs_new / rs) * p
        rs = rs_new
        it += 1
    return x, it, float(np.sqrt(rs))


# ----------------------------------------------------------------------
# halo exchange for the ghosted search direction
# ----------------------------------------------------------------------
_FACE_SEND = {
    (0, -1): lambda u: u[1, 1:-1, 1:-1],
    (0, +1): lambda u: u[-2, 1:-1, 1:-1],
    (1, -1): lambda u: u[1:-1, 1, 1:-1],
    (1, +1): lambda u: u[1:-1, -2, 1:-1],
    (2, -1): lambda u: u[1:-1, 1:-1, 1],
    (2, +1): lambda u: u[1:-1, 1:-1, -2],
}

_FACE_SET = {
    (0, -1): lambda u, v: u.__setitem__((0, slice(1, -1), slice(1, -1)), v),
    (0, +1): lambda u, v: u.__setitem__((-1, slice(1, -1), slice(1, -1)), v),
    (1, -1): lambda u, v: u.__setitem__((slice(1, -1), 0, slice(1, -1)), v),
    (1, +1): lambda u, v: u.__setitem__((slice(1, -1), -1, slice(1, -1)), v),
    (2, -1): lambda u, v: u.__setitem__((slice(1, -1), slice(1, -1), 0), v),
    (2, +1): lambda u, v: u.__setitem__((slice(1, -1), slice(1, -1), -1), v),
}


def _halo(mpi: MpiApi, cfg: CgConfig, neighbors: dict, ghosted: np.ndarray | None) -> Gen:
    recvs = {k: mpi.irecv(peer, tag=_HALO_TAGS[(k[0], -k[1])]) for k, peer in neighbors.items()}
    sends = []
    for (axis, step), peer in neighbors.items():
        payload = None
        if ghosted is not None and peer != PROC_NULL:
            payload = np.ascontiguousarray(_FACE_SEND[(axis, step)](ghosted))
        req = yield from mpi.isend(
            peer, payload=payload, nbytes=cfg.face_bytes(axis), tag=_HALO_TAGS[(axis, step)]
        )
        sends.append(req)
    yield from mpi.waitall(sends)
    for (axis, step), req in recvs.items():
        face = yield from mpi.wait(req)
        if ghosted is not None and face is not None:
            _FACE_SET[(axis, step)](ghosted, face)


# ----------------------------------------------------------------------
# the application
# ----------------------------------------------------------------------
def cg(mpi: MpiApi, cfg: CgConfig, store: Any = None) -> Gen:
    """Distributed conjugate-gradient solve (generator coroutine)."""
    yield from mpi.init()
    if cfg.nranks != mpi.size:
        raise ConfigurationError(f"config is for {cfg.nranks} ranks, job has {mpi.size}")
    neighbors = neighbor_ranks(mpi.rank, cfg.ranks)
    real = cfg.data_mode == "real"
    lx, ly, lz = cfg.local_shape

    x = r = p = None
    if real:
        b = rhs_block(cfg, mpi.rank)
        x = np.zeros_like(b)
        r = b.copy()
        p = r.copy()
        mpi.malloc("x", array=x)
        mpi.malloc("r", array=r)

    proto = resolve_protocol(mpi, store)
    start_iter = 0
    if proto is not None:
        cid, payload = yield from proto.restore_latest()
        if cid is not None:
            start_iter = cid
            if real:
                x = payload["x"].copy()
                r = payload["r"].copy()
                p = payload["p"].copy()
                mpi.malloc("x", array=x)
                mpi.malloc("r", array=r)

    # global residual norm (one allreduce, like the real solver's setup)
    local_rs = float((r * r).sum()) if real else None
    rs = yield from mpi.allreduce(local_rs, nbytes=8, op=ops.SUM)
    tol2 = cfg.tolerance**2 * rs if real else None

    it = start_iter
    converged = False
    while it < cfg.max_iterations:
        # SpMV: exchange the search direction's halo, apply the operator
        pg = None
        if real:
            pg = np.zeros((lx + 2, ly + 2, lz + 2))
            pg[1:-1, 1:-1, 1:-1] = p
        yield from _halo(mpi, cfg, neighbors, pg)
        yield from mpi.compute_ops(cfg.points_per_rank, cfg.native_seconds_per_point_iter)
        if real:
            ap = apply_laplacian(pg)
            local_pap = float((p * ap).sum())
        else:
            local_pap = None
        pap = yield from mpi.allreduce(local_pap, nbytes=8, op=ops.SUM)
        if real:
            alpha = rs / pap
            x += alpha * p
            r -= alpha * ap
            local_rs = float((r * r).sum())
        rs_new = yield from mpi.allreduce(local_rs, nbytes=8, op=ops.SUM)
        if real:
            p = r + (rs_new / rs) * p
            rs = rs_new
        it += 1
        if real and rs <= tol2:
            converged = True
        if proto is not None and (
            it % cfg.checkpoint_interval == 0 or it == cfg.max_iterations or converged
        ):
            payload = {
                "iteration": it,
                "x": x.copy() if real else None,
                "r": r.copy() if real else None,
                "p": p.copy() if real else None,
            }
            yield from proto.checkpoint(it, payload, cfg.checkpoint_nbytes)
        if converged:
            break

    yield from mpi.finalize()
    return CgResult(
        rank=mpi.rank,
        iterations=it,
        converged=converged,
        residual_norm=float(np.sqrt(rs)) if real else None,
        solution_norm_sq=float((x * x).sum()) if real else None,
        restarted_from=start_iter,
    )
