"""Collective-operation sweep application.

Runs a configurable list of collectives over a range of payload sizes and
reports the per-operation virtual durations — the workload behind the
collective-algorithm and eager-threshold ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.mpi import ops
from repro.mpi.api import MpiApi

Gen = Generator[Any, Any, Any]

SUPPORTED = ("barrier", "bcast", "reduce", "allreduce", "gather", "allgather", "alltoall", "scan")


@dataclass(frozen=True)
class CollectiveBenchConfig:
    operations: tuple[str, ...] = ("barrier", "bcast", "allreduce")
    sizes: tuple[int, ...] = (8, 1024, 65536)
    repeats: int = 1


@dataclass
class CollectiveTiming:
    """(operation, payload bytes) -> virtual seconds, as seen by this rank."""

    rank: int
    timings: dict[tuple[str, int], float] = field(default_factory=dict)


def collective_bench(mpi: MpiApi, cfg: CollectiveBenchConfig) -> Gen:
    """Time each configured collective at each payload size."""
    yield from mpi.init()
    result = CollectiveTiming(rank=mpi.rank)
    for op_name in cfg.operations:
        if op_name not in SUPPORTED:
            raise ValueError(f"unsupported collective {op_name!r}")
        for nbytes in cfg.sizes:
            yield from mpi.barrier()  # isolate measurements
            t0 = mpi.wtime()
            for _ in range(cfg.repeats):
                yield from _run_one(mpi, op_name, nbytes)
            result.timings[(op_name, nbytes)] = (mpi.wtime() - t0) / cfg.repeats
    yield from mpi.finalize()
    return result


def _run_one(mpi: MpiApi, op_name: str, nbytes: int) -> Gen:
    if op_name == "barrier":
        yield from mpi.barrier()
    elif op_name == "bcast":
        yield from mpi.bcast(value=None, nbytes=nbytes, root=0)
    elif op_name == "reduce":
        yield from mpi.reduce(value=None, nbytes=nbytes, op=ops.SUM, root=0)
    elif op_name == "allreduce":
        yield from mpi.allreduce(value=None, nbytes=nbytes, op=ops.SUM)
    elif op_name == "gather":
        yield from mpi.gather(value=None, nbytes=nbytes, root=0)
    elif op_name == "allgather":
        yield from mpi.allgather(value=None, nbytes=nbytes)
    elif op_name == "alltoall":
        yield from mpi.alltoall(values=[None] * mpi.size, nbytes=nbytes)
    elif op_name == "scan":
        yield from mpi.scan(value=None, nbytes=nbytes, op=ops.SUM)
