"""The paper's target application: an iterative 3-D heat-equation solver.

Paper §V-B: "a simple MPI application that iteratively solves the heat
equation of a regular 3D grid.  It decomposes the 3D problem by splitting
it into cubes distributed across the MPI ranks.  Each rank performs the
same total number of iterations, in which each data point is updated using
the values of the surrounding data points.  A halo exchange between
neighboring cubes is performed at a certain iteration interval.  This
structures the application into distinct computation and communication
phases.  A checkpoint is written to disk at a certain iteration interval,
containing the application's configuration and the current iteration's
data.  After writing out a checkpoint, a global barrier synchronizes all
processes, such that the previous checkpoint can be deleted safely.  In
case of a failure, the application can be restarted using the same number
of MPI ranks.  It automatically loads the last checkpoint and automatically
deletes any corrupted checkpoint."

Two data modes:

* ``"modeled"`` (the Table II configuration): computation is modeled
  virtual time (points x calibrated per-point cost on the slowed node) and
  halo/checkpoint payloads are size-only.  This is what lets the simulator
  run the full 512^3-on-32,768-ranks workload.
* ``"real"``: the rank really holds its (ghosted) sub-grid, halo faces are
  real numpy arrays travelling through the simulated messages, checkpoints
  carry the grid, and restarts restore it — validated against
  :func:`heat3d_serial_reference`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Generator

import numpy as np

from repro.core.checkpoint.protocol import resolve_protocol
from repro.mpi.api import MpiApi
from repro.mpi.constants import PROC_NULL
from repro.util.errors import ConfigurationError

Gen = Generator[Any, Any, Any]

#: Calibrated native cost of one stencil point update on the 1.7 GHz
#: reference core.  Chosen so the paper's workload (4,096 points/rank,
#: 1000x slowdown) computes one iteration in 5.24 simulated seconds,
#: reproducing the Table II baseline E1 of ~5,248 s for 1000 iterations.
NATIVE_SECONDS_PER_POINT = 1.28e-6

#: Tag space: halo messages use 1..6 (one per face direction).
_HALO_TAGS = {(0, -1): 1, (0, +1): 2, (1, -1): 3, (1, +1): 4, (2, -1): 5, (2, +1): 6}


def factor3(n: int) -> tuple[int, int, int]:
    """Factor ``n`` into three near-equal integer factors (exactly)."""
    if n < 1:
        raise ConfigurationError(f"cannot factor {n}")
    best: tuple[int, int, int] | None = None
    a = 1
    for a in range(int(round(n ** (1 / 3))) + 1, 0, -1):
        if n % a:
            continue
        m = n // a
        for b in range(int(math.isqrt(m)), 0, -1):
            if m % b == 0:
                cand = tuple(sorted((a, b, m // b), reverse=True))
                if best is None or max(cand) < max(best):
                    best = cand  # type: ignore[assignment]
                break
        if best is not None and max(best) <= 2 * a:
            break
    assert best is not None
    return best  # type: ignore[return-value]


@dataclass(frozen=True)
class HeatConfig:
    """Workload parameters (paper §V-B: problem size, total iteration
    count, halo exchange interval, checkpoint interval)."""

    grid: tuple[int, int, int] = (512, 512, 512)
    ranks: tuple[int, int, int] = (32, 32, 32)
    iterations: int = 1000
    checkpoint_interval: int = 1000
    #: ``None``: equal to the checkpoint interval ("the halo exchange
    #: interval is set to the checkpoint interval, i.e., a halo exchange
    #: takes place right before a checkpoint").
    exchange_interval: int | None = None
    native_seconds_per_point: float = NATIVE_SECONDS_PER_POINT
    data_mode: str = "modeled"
    #: Diffusion coefficient of the explicit update (real mode); must be
    #: <= 1/6 for stability.
    alpha: float = 0.1
    item_bytes: int = 8
    checkpoint_header_bytes: int = 256

    def __post_init__(self) -> None:
        if self.data_mode not in ("modeled", "real"):
            raise ConfigurationError(f"data_mode must be modeled/real, got {self.data_mode!r}")
        if self.iterations < 1 or self.checkpoint_interval < 1:
            raise ConfigurationError("iterations and checkpoint_interval must be >= 1")
        if self.exchange_interval is not None and self.exchange_interval < 1:
            raise ConfigurationError("exchange_interval must be >= 1")
        for g, p in zip(self.grid, self.ranks):
            if p < 1 or g < p or g % p:
                raise ConfigurationError(
                    f"grid {self.grid} not divisible by rank grid {self.ranks}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def paper_workload(
        cls, checkpoint_interval: int = 1000, nranks: int = 32768, **overrides: Any
    ) -> "HeatConfig":
        """The Table II workload, optionally scaled to ``nranks`` while
        keeping 16^3 = 4,096 points per rank (so per-iteration compute time
        stays at the paper's operating point)."""
        px, py, pz = (32, 32, 32) if nranks == 32768 else factor3(nranks)
        base = cls(
            grid=(16 * px, 16 * py, 16 * pz),
            ranks=(px, py, pz),
            iterations=1000,
            checkpoint_interval=checkpoint_interval,
        )
        return replace(base, **overrides) if overrides else base

    @property
    def nranks(self) -> int:
        return self.ranks[0] * self.ranks[1] * self.ranks[2]

    @property
    def local_shape(self) -> tuple[int, int, int]:
        return tuple(g // p for g, p in zip(self.grid, self.ranks))  # type: ignore[return-value]

    @property
    def points_per_rank(self) -> int:
        lx, ly, lz = self.local_shape
        return lx * ly * lz

    @property
    def effective_exchange_interval(self) -> int:
        return self.exchange_interval if self.exchange_interval is not None else self.checkpoint_interval

    def face_bytes(self, axis: int) -> int:
        """Wire size of one halo face perpendicular to ``axis``."""
        lx, ly, lz = self.local_shape
        faces = {0: ly * lz, 1: lx * lz, 2: lx * ly}
        return faces[axis] * self.item_bytes

    @property
    def checkpoint_nbytes(self) -> int:
        """Per-rank checkpoint file size: configuration header plus the
        current iteration's data (paper §V-B)."""
        return self.checkpoint_header_bytes + self.points_per_rank * self.item_bytes

    def validate_for(self, nranks: int) -> None:
        """Reject a decomposition that does not match the job size."""
        if self.nranks != nranks:
            raise ConfigurationError(
                f"workload decomposed for {self.nranks} ranks but the job has {nranks}"
            )


@dataclass(frozen=True)
class HeatRunStats:
    """Per-rank return value of a completed run."""

    rank: int
    iterations: int
    restarted_from: int
    checksum: float | None


# ----------------------------------------------------------------------
# decomposition helpers
# ----------------------------------------------------------------------
def rank_coords(rank: int, ranks: tuple[int, int, int]) -> tuple[int, int, int]:
    """Cube coordinates of ``rank`` (row-major: z fastest)."""
    px, py, pz = ranks
    if not 0 <= rank < px * py * pz:
        raise ConfigurationError(f"rank {rank} outside {ranks} decomposition")
    return rank // (py * pz), (rank // pz) % py, rank % pz


def coords_rank(coords: tuple[int, int, int], ranks: tuple[int, int, int]) -> int:
    """Rank at cube ``coords`` (inverse of :func:`rank_coords`)."""
    cx, cy, cz = coords
    px, py, pz = ranks
    return (cx * py + cy) * pz + cz


def neighbor_ranks(rank: int, ranks: tuple[int, int, int]) -> dict[tuple[int, int], int]:
    """Neighbors per (axis, direction); domain boundaries map to PROC_NULL
    (the heat equation's grid is regular, not periodic)."""
    coords = rank_coords(rank, ranks)
    out: dict[tuple[int, int], int] = {}
    for axis in range(3):
        for step in (-1, +1):
            c = list(coords)
            c[axis] += step
            if 0 <= c[axis] < ranks[axis]:
                out[(axis, step)] = coords_rank(tuple(c), ranks)  # type: ignore[arg-type]
            else:
                out[(axis, step)] = PROC_NULL
    return out


# ----------------------------------------------------------------------
# real-data machinery
# ----------------------------------------------------------------------
def initial_grid(cfg: HeatConfig, rank: int) -> np.ndarray:
    """This rank's ghosted sub-grid with a deterministic initial condition
    (a smooth bump keyed to global coordinates, so any two decompositions
    agree)."""
    lx, ly, lz = cfg.local_shape
    cx, cy, cz = rank_coords(rank, cfg.ranks)
    gx = np.arange(cx * lx, (cx + 1) * lx, dtype=np.float64)
    gy = np.arange(cy * ly, (cy + 1) * ly, dtype=np.float64)
    gz = np.arange(cz * lz, (cz + 1) * lz, dtype=np.float64)
    nx, ny, nz = cfg.grid
    bx = np.sin(np.pi * (gx + 0.5) / nx)
    by = np.sin(np.pi * (gy + 0.5) / ny)
    bz = np.sin(np.pi * (gz + 0.5) / nz)
    u = np.zeros((lx + 2, ly + 2, lz + 2), dtype=np.float64)
    u[1:-1, 1:-1, 1:-1] = bx[:, None, None] * by[None, :, None] * bz[None, None, :]
    return u


def stencil_step(u: np.ndarray, alpha: float) -> None:
    """One explicit heat update of the interior, in place (ghosts fixed)."""
    core = u[1:-1, 1:-1, 1:-1]
    lap = (
        u[:-2, 1:-1, 1:-1]
        + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1]
        + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2]
        + u[1:-1, 1:-1, 2:]
        - 6.0 * core
    )
    core += alpha * lap


def heat3d_serial_reference(cfg: HeatConfig, iterations: int | None = None) -> np.ndarray:
    """Serial solution on the global grid with zero Dirichlet boundaries —
    what a real-mode run with exchange_interval=1 must reproduce."""
    nx, ny, nz = cfg.grid
    u = np.zeros((nx + 2, ny + 2, nz + 2), dtype=np.float64)
    x = np.sin(np.pi * (np.arange(nx) + 0.5) / nx)
    y = np.sin(np.pi * (np.arange(ny) + 0.5) / ny)
    z = np.sin(np.pi * (np.arange(nz) + 0.5) / nz)
    u[1:-1, 1:-1, 1:-1] = x[:, None, None] * y[None, :, None] * z[None, None, :]
    for _ in range(iterations if iterations is not None else cfg.iterations):
        stencil_step(u, cfg.alpha)
    return u[1:-1, 1:-1, 1:-1]


_FACE_SEND = {
    (0, -1): lambda u: u[1, 1:-1, 1:-1],
    (0, +1): lambda u: u[-2, 1:-1, 1:-1],
    (1, -1): lambda u: u[1:-1, 1, 1:-1],
    (1, +1): lambda u: u[1:-1, -2, 1:-1],
    (2, -1): lambda u: u[1:-1, 1:-1, 1],
    (2, +1): lambda u: u[1:-1, 1:-1, -2],
}

_FACE_RECV = {
    (0, -1): lambda u, v: u.__setitem__((0, slice(1, -1), slice(1, -1)), v),
    (0, +1): lambda u, v: u.__setitem__((-1, slice(1, -1), slice(1, -1)), v),
    (1, -1): lambda u, v: u.__setitem__((slice(1, -1), 0, slice(1, -1)), v),
    (1, +1): lambda u, v: u.__setitem__((slice(1, -1), -1, slice(1, -1)), v),
    (2, -1): lambda u, v: u.__setitem__((slice(1, -1), slice(1, -1), 0), v),
    (2, +1): lambda u, v: u.__setitem__((slice(1, -1), slice(1, -1), -1), v),
}


def exchange_plan(
    cfg: HeatConfig, neighbors: dict[tuple[int, int], int]
) -> tuple[tuple[tuple[int, int], int, int, int, int], ...]:
    """Precomputed per-face exchange schedule: ``((axis, step), peer,
    send_tag, recv_tag, face_nbytes)`` rows.  Computed once per rank so the
    per-call halo exchange avoids rebuilding face sizes and tag lookups."""
    return tuple(
        ((axis, step), peer, _HALO_TAGS[(axis, step)], _HALO_TAGS[(axis, -step)], cfg.face_bytes(axis))
        for (axis, step), peer in neighbors.items()
    )


def halo_exchange(
    mpi: MpiApi,
    cfg: HeatConfig,
    neighbors: dict[tuple[int, int], int],
    u: np.ndarray | None,
    plan: tuple[tuple[tuple[int, int], int, int, int, int], ...] | None = None,
) -> Gen:
    """Exchange the six halo faces with the neighboring cubes.

    Nonblocking receives are posted first, then sends; a failed neighbor
    surfaces here — the paper's "failure during the computation phase is
    detected in the halo exchange due to failing communication".
    """
    if plan is None:
        plan = exchange_plan(cfg, neighbors)
    recvs = []
    for key, peer, _stag, rtag, _nbytes in plan:
        recvs.append((key, mpi.irecv(peer, tag=rtag)))
    sends = []
    post = getattr(mpi, "post_isend", None)
    if post is not None:
        # Plain MpiApi facade: pay the send overhead explicitly and post
        # via the plain-call post_isend — same virtual-time behavior as
        # isend without a generator frame per message (PROC_NULL faces owe
        # no overhead, as in isend).
        overhead_adv = (
            mpi.world.send_overhead_advance if mpi.world.network.send_overhead > 0.0 else None
        )
        for key, peer, stag, _rtag, nbytes in plan:
            payload = None
            if u is not None and peer != PROC_NULL:
                payload = np.ascontiguousarray(_FACE_SEND[key](u))
            if overhead_adv is not None and peer != PROC_NULL:
                yield overhead_adv
            sends.append(post(peer, payload=payload, nbytes=nbytes, tag=stag))
    else:
        # Wrapping facades (e.g. redundancy) route every send themselves.
        for key, peer, stag, _rtag, nbytes in plan:
            payload = None
            if u is not None and peer != PROC_NULL:
                payload = np.ascontiguousarray(_FACE_SEND[key](u))
            req = yield from mpi.isend(peer, payload=payload, nbytes=nbytes, tag=stag)
            sends.append(req)
    yield from mpi.waitall(sends)
    for key, req in recvs:
        face = yield from mpi.wait(req)
        if u is not None and face is not None:
            _FACE_RECV[key](u, face)


# ----------------------------------------------------------------------
# the application
# ----------------------------------------------------------------------
def heat3d(mpi: MpiApi, cfg: HeatConfig, store: Any = None) -> Gen:
    """The paper's heat-equation application (generator coroutine).

    Per phase: compute up to the next exchange/checkpoint boundary, halo
    exchange, write the checkpoint, barrier, delete the previous
    checkpoint.  With ``store=None`` the app runs checkpoint-free (no
    barrier either), which is useful for pure communication studies.
    """
    yield from mpi.init()
    cfg.validate_for(mpi.size)
    neighbors = neighbor_ranks(mpi.rank, cfg.ranks)
    real = cfg.data_mode == "real"
    u = initial_grid(cfg, mpi.rank) if real else None
    if real:
        mpi.malloc("grid", array=u)
    else:
        mpi.malloc("grid", nbytes=cfg.points_per_rank * cfg.item_bytes)

    proto = resolve_protocol(mpi, store)
    start_iter = 0
    if proto is not None:
        cid, payload = yield from proto.restore_latest()
        if cid is not None:
            start_iter = cid
            if real:
                u = payload["data"].copy()
                mpi.malloc("grid", array=u)  # replaces the tracked region

    # Startup/restart halo exchange so the first computation phase sees its
    # neighbours' current faces.
    plan = exchange_plan(cfg, neighbors)
    yield from halo_exchange(mpi, cfg, neighbors, u, plan)

    it = start_iter
    exch = cfg.effective_exchange_interval
    ckpt = cfg.checkpoint_interval
    points = cfg.points_per_rank
    while it < cfg.iterations:
        next_exch = ((it // exch) + 1) * exch
        next_ckpt = ((it // ckpt) + 1) * ckpt
        target = min(cfg.iterations, next_exch, next_ckpt)
        steps = target - it
        if real:
            for _ in range(steps):
                stencil_step(u, cfg.alpha)  # type: ignore[arg-type]
        yield from mpi.compute_ops(steps * points, cfg.native_seconds_per_point)
        it = target
        if it == next_exch or it == cfg.iterations:
            yield from halo_exchange(mpi, cfg, neighbors, u, plan)
        if proto is not None and (it == next_ckpt or it == cfg.iterations):
            payload = {"iteration": it, "data": u.copy() if real else None}
            yield from proto.checkpoint(it, payload, cfg.checkpoint_nbytes)

    yield from mpi.finalize()
    checksum = float(u[1:-1, 1:-1, 1:-1].sum()) if real else None
    return HeatRunStats(
        rank=mpi.rank, iterations=it, restarted_from=start_iter, checksum=checksum
    )
