"""Minimal compute/checkpoint loop with analytically known behaviour.

``naive_cr`` does nothing but compute for ``work`` virtual seconds, cut
into checkpoint segments of ``tau`` seconds, each followed by a checkpoint
of cost ``delta`` (modeled directly as virtual time, plus the barrier).
Because every quantity is a configuration parameter, Daly's expected
completion-time model applies exactly — this is the workload behind
:mod:`benchmarks.test_daly_validation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator

from repro.core.checkpoint.protocol import CheckpointProtocol
from repro.core.checkpoint.store import CheckpointStore
from repro.mpi.api import MpiApi
from repro.util.errors import ConfigurationError

Gen = Generator[Any, Any, Any]


@dataclass(frozen=True)
class NaiveCrConfig:
    """``work`` seconds of useful computation, checkpoint every ``tau``
    seconds of work at ``delta`` seconds checkpoint cost."""

    work: float = 1000.0
    tau: float = 100.0
    delta: float = 5.0
    checkpoint_nbytes: int = 1024

    def __post_init__(self) -> None:
        if min(self.work, self.tau) <= 0 or self.delta < 0:
            raise ConfigurationError(f"invalid NaiveCrConfig {self!r}")

    @property
    def segments(self) -> int:
        return math.ceil(self.work / self.tau)


def naive_cr(mpi: MpiApi, cfg: NaiveCrConfig, store: CheckpointStore | None = None) -> Gen:
    """Compute/checkpoint loop; checkpoint ids count completed segments."""
    yield from mpi.init()
    proto = CheckpointProtocol(mpi, store) if store is not None else None
    done_segments = 0
    if proto is not None:
        cid, payload = yield from proto.restore_latest()
        if cid is not None:
            done_segments = cid
    while done_segments < cfg.segments:
        remaining = cfg.work - done_segments * cfg.tau
        yield from mpi.compute(min(cfg.tau, remaining))
        done_segments += 1
        if proto is not None:
            if cfg.delta > 0:
                yield from mpi.compute(cfg.delta)  # modeled checkpoint cost
            yield from proto.checkpoint(
                done_segments, {"segment": done_segments}, cfg.checkpoint_nbytes
            )
    yield from mpi.finalize()
    return done_segments
