"""Token-ring microbenchmark application.

A token circulates rank 0 -> 1 -> ... -> N-1 -> 0, ``rounds`` times.  The
per-hop virtual latency exercises the point-to-point path (eager or
rendezvous depending on ``token_bytes``), and the app doubles as a failure
demonstration: killing any rank breaks the ring and the blocked successor
detects it via the network timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.mpi.api import MpiApi


@dataclass(frozen=True)
class RingConfig:
    rounds: int = 1
    token_bytes: int = 8
    #: Optional modeled work between hops (simulated seconds).
    compute_per_hop: float = 0.0


def ring(mpi: MpiApi, cfg: RingConfig) -> Generator[Any, Any, float]:
    """Returns the virtual time this rank finished its part."""
    yield from mpi.init()
    size = mpi.size
    left = (mpi.rank - 1) % size
    right = (mpi.rank + 1) % size
    for round_no in range(cfg.rounds):
        if mpi.rank == 0:
            yield from mpi.send(right, nbytes=cfg.token_bytes, tag=round_no)
            yield from mpi.recv(left, tag=round_no)
        else:
            yield from mpi.recv(left, tag=round_no)
            if cfg.compute_per_hop > 0.0:
                yield from mpi.compute(cfg.compute_per_hop)
            yield from mpi.send(right, nbytes=cfg.token_bytes, tag=round_no)
    done = mpi.wtime()
    yield from mpi.finalize()
    return done
