"""Distributed sample sort — an alltoall(v)-dominated proxy application.

A third communication profile next to the stencil (heat3d, nearest
neighbour) and the CG solver (global allreduces): sample sort's data
redistribution is a single *all-to-all with highly variable per-pair
volumes*, the pattern that stresses bisection bandwidth rather than
latency or collectives.

The algorithm (classic p-splitter sample sort):

1. each rank sorts its local block;
2. each rank samples ``oversample`` local splitter candidates; a gather
   collects them at rank 0, which picks the p-1 global splitters and
   broadcasts them;
3. each rank partitions its sorted block by the splitters and exchanges
   partitions with every peer in one alltoallv;
4. each rank merges what it received: the concatenation over ranks is the
   globally sorted sequence.

``real`` mode carries actual numpy data end to end (validated against
``np.sort`` of the concatenated inputs); ``modeled`` mode ships the same
expected volumes as size-only messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.mpi.api import MpiApi
from repro.util.errors import ConfigurationError

Gen = Generator[Any, Any, Any]

#: Calibrated native cost of sorting one element (n log n amortized).
NATIVE_SECONDS_PER_KEY = 1.0e-7


@dataclass(frozen=True)
class SampleSortConfig:
    """Workload parameters."""

    keys_per_rank: int = 4096
    oversample: int = 8
    data_mode: str = "real"
    native_seconds_per_key: float = NATIVE_SECONDS_PER_KEY
    item_bytes: int = 8
    seed: int = 2013

    def __post_init__(self) -> None:
        if self.keys_per_rank < 1 or self.oversample < 1:
            raise ConfigurationError("keys_per_rank and oversample must be >= 1")
        if self.data_mode not in ("modeled", "real"):
            raise ConfigurationError(f"data_mode must be modeled/real, got {self.data_mode!r}")


@dataclass(frozen=True)
class SampleSortResult:
    """Per-rank outcome: this rank's slice of the global order."""

    rank: int
    count: int
    local_min: float | None
    local_max: float | None
    checksum: float | None


def local_block(cfg: SampleSortConfig, rank: int) -> np.ndarray:
    """Deterministic unsorted input block of this rank."""
    rng = np.random.Generator(np.random.PCG64(cfg.seed * 100_003 + rank))
    return rng.random(cfg.keys_per_rank)


def samplesort(mpi: MpiApi, cfg: SampleSortConfig) -> Gen:
    """The sample-sort application (generator coroutine)."""
    yield from mpi.init()
    size = mpi.size
    real = cfg.data_mode == "real"
    n = cfg.keys_per_rank

    data = local_block(cfg, mpi.rank) if real else None
    if real:
        mpi.malloc("keys", array=data)

    # 1. local sort: n log2 n key operations
    if real:
        data.sort()
    sort_ops = n * max(1.0, np.log2(n))
    yield from mpi.compute_ops(sort_ops, cfg.native_seconds_per_key)

    # 2. splitter selection: sample, gather, choose, broadcast
    sample = None
    if real:
        idx = np.linspace(0, n - 1, cfg.oversample, dtype=np.int64)
        sample = data[idx].copy()
    samples = yield from mpi.gather(sample, nbytes=cfg.oversample * cfg.item_bytes, root=0)
    splitters = None
    if mpi.rank == 0 and real:
        pool = np.sort(np.concatenate(samples))
        picks = np.linspace(0, len(pool) - 1, size + 1, dtype=np.int64)[1:-1]
        splitters = pool[picks].copy()
    splitters = yield from mpi.bcast(
        splitters, nbytes=max(1, (size - 1)) * cfg.item_bytes, root=0
    )

    # 3. partition and exchange (alltoallv: per-pair volumes vary)
    if real:
        bounds = np.searchsorted(data, splitters)
        parts = np.split(data, bounds)
        sizes = [int(p.nbytes) for p in parts]
        payloads: list[Any] = [np.ascontiguousarray(p) for p in parts]
    else:
        # modeled: expect ~uniform redistribution
        sizes = [max(1, n // size) * cfg.item_bytes] * size
        payloads = [None] * size
    received = yield from mpi.alltoall(payloads, nbytes=sizes)

    # 4. merge received runs: k-way merge ~ n' log2 k operations
    merged = None
    if real:
        merged = np.sort(np.concatenate([r for r in received if r is not None and len(r)]))
        merge_ops = max(1, len(merged)) * max(1.0, np.log2(max(2, size)))
    else:
        merge_ops = n * max(1.0, np.log2(max(2, size)))
    yield from mpi.compute_ops(merge_ops, cfg.native_seconds_per_key)

    yield from mpi.barrier()
    yield from mpi.finalize()
    if real:
        return SampleSortResult(
            rank=mpi.rank,
            count=int(len(merged)),
            local_min=float(merged[0]) if len(merged) else None,
            local_max=float(merged[-1]) if len(merged) else None,
            checksum=float(merged.sum()),
        )
    return SampleSortResult(
        rank=mpi.rank, count=n, local_min=None, local_max=None, checksum=None
    )
