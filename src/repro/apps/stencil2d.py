"""2-D five-point stencil application with the heat3d checkpoint discipline.

A second workload for the harness: the same
computation/halo/checkpoint/barrier cycle as the paper's target
application, but on a 2-D decomposition with four neighbours — different
surface-to-volume ratio, hence a different communication/computation
balance for ablation studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.core.checkpoint.protocol import resolve_protocol
from repro.mpi.api import MpiApi
from repro.mpi.constants import PROC_NULL
from repro.util.errors import ConfigurationError

Gen = Generator[Any, Any, Any]

_TAGS = {(0, -1): 11, (0, +1): 12, (1, -1): 13, (1, +1): 14}


def factor2(n: int) -> tuple[int, int]:
    """Two near-equal factors of ``n``."""
    for a in range(int(math.isqrt(n)), 0, -1):
        if n % a == 0:
            return (n // a, a)
    raise ConfigurationError(f"cannot factor {n}")  # pragma: no cover


@dataclass(frozen=True)
class Stencil2dConfig:
    grid: tuple[int, int] = (1024, 1024)
    ranks: tuple[int, int] = (4, 4)
    iterations: int = 100
    checkpoint_interval: int = 25
    native_seconds_per_point: float = 1.28e-6
    data_mode: str = "modeled"
    alpha: float = 0.2
    item_bytes: int = 8
    checkpoint_header_bytes: int = 256

    def __post_init__(self) -> None:
        if self.data_mode not in ("modeled", "real"):
            raise ConfigurationError(f"data_mode must be modeled/real, got {self.data_mode!r}")
        for g, p in zip(self.grid, self.ranks):
            if p < 1 or g < p or g % p:
                raise ConfigurationError(f"grid {self.grid} not divisible by ranks {self.ranks}")

    @classmethod
    def for_ranks(cls, nranks: int, points_per_rank_side: int = 64, **overrides: Any) -> "Stencil2dConfig":
        px, py = factor2(nranks)
        base = cls(grid=(px * points_per_rank_side, py * points_per_rank_side), ranks=(px, py))
        return base if not overrides else Stencil2dConfig(
            **{**base.__dict__, **overrides}
        )

    @property
    def nranks(self) -> int:
        return self.ranks[0] * self.ranks[1]

    @property
    def local_shape(self) -> tuple[int, int]:
        return tuple(g // p for g, p in zip(self.grid, self.ranks))  # type: ignore[return-value]

    @property
    def points_per_rank(self) -> int:
        lx, ly = self.local_shape
        return lx * ly

    def face_bytes(self, axis: int) -> int:
        """Wire size of one halo edge perpendicular to ``axis``."""
        lx, ly = self.local_shape
        return (ly if axis == 0 else lx) * self.item_bytes

    @property
    def checkpoint_nbytes(self) -> int:
        return self.checkpoint_header_bytes + self.points_per_rank * self.item_bytes


def _neighbors(rank: int, ranks: tuple[int, int]) -> dict[tuple[int, int], int]:
    px, py = ranks
    cx, cy = rank // py, rank % py
    out: dict[tuple[int, int], int] = {}
    for axis, (dx, dy) in ((0, (1, 0)), (1, (0, 1))):
        for step in (-1, +1):
            nx, ny = cx + dx * step, cy + dy * step
            if 0 <= nx < px and 0 <= ny < py:
                out[(axis, step)] = nx * py + ny
            else:
                out[(axis, step)] = PROC_NULL
    return out


def _halo(mpi: MpiApi, cfg: Stencil2dConfig, neighbors: dict, u: np.ndarray | None) -> Gen:
    recvs = {k: mpi.irecv(peer, tag=_TAGS[(k[0], -k[1])]) for k, peer in neighbors.items()}
    sends = []
    for (axis, step), peer in neighbors.items():
        payload = None
        if u is not None and peer != PROC_NULL:
            sl = {
                (0, -1): u[1, 1:-1],
                (0, +1): u[-2, 1:-1],
                (1, -1): u[1:-1, 1],
                (1, +1): u[1:-1, -2],
            }[(axis, step)]
            payload = np.ascontiguousarray(sl)
        req = yield from mpi.isend(peer, payload=payload, nbytes=cfg.face_bytes(axis), tag=_TAGS[(axis, step)])
        sends.append(req)
    yield from mpi.waitall(sends)
    for (axis, step), req in recvs.items():
        face = yield from mpi.wait(req)
        if u is not None and face is not None:
            if (axis, step) == (0, -1):
                u[0, 1:-1] = face
            elif (axis, step) == (0, +1):
                u[-1, 1:-1] = face
            elif (axis, step) == (1, -1):
                u[1:-1, 0] = face
            else:
                u[1:-1, -1] = face


def stencil2d(mpi: MpiApi, cfg: Stencil2dConfig, store: Any = None) -> Gen:
    """Five-point 2-D stencil with checkpoint/restart (same discipline as
    :func:`repro.apps.heat3d.heat3d`)."""
    yield from mpi.init()
    if cfg.nranks != mpi.size:
        raise ConfigurationError(f"config is for {cfg.nranks} ranks, job has {mpi.size}")
    neighbors = _neighbors(mpi.rank, cfg.ranks)
    real = cfg.data_mode == "real"
    u = None
    if real:
        lx, ly = cfg.local_shape
        rng = np.random.default_rng(1000 + mpi.rank)
        u = np.zeros((lx + 2, ly + 2))
        u[1:-1, 1:-1] = rng.random((lx, ly))
        mpi.malloc("grid", array=u)
    else:
        mpi.malloc("grid", nbytes=cfg.points_per_rank * cfg.item_bytes)

    proto = resolve_protocol(mpi, store)
    start_iter = 0
    if proto is not None:
        cid, payload = yield from proto.restore_latest()
        if cid is not None:
            start_iter = cid
            if real:
                u = payload["data"].copy()
                mpi.malloc("grid", array=u)
    yield from _halo(mpi, cfg, neighbors, u)

    it = start_iter
    ck = cfg.checkpoint_interval
    while it < cfg.iterations:
        target = min(cfg.iterations, ((it // ck) + 1) * ck)
        steps = target - it
        if real:
            for _ in range(steps):
                core = u[1:-1, 1:-1]
                core += cfg.alpha * (
                    u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:] - 4.0 * core
                )
        yield from mpi.compute_ops(steps * cfg.points_per_rank, cfg.native_seconds_per_point)
        it = target
        yield from _halo(mpi, cfg, neighbors, u)
        if proto is not None:
            payload = {"iteration": it, "data": u.copy() if real else None}
            yield from proto.checkpoint(it, payload, cfg.checkpoint_nbytes)
    yield from mpi.finalize()
    return float(u[1:-1, 1:-1].sum()) if real else None
