"""Content-addressed campaign result cache (``repro.cache``).

Co-design studies are campaign-shaped: the same scenario grid is
re-simulated across architecture and resilience knobs, and most cells of
most sweeps have been computed before — by the previous CI run, the
previous parameter scan, or another user of a shared cache directory.
Scenarios have stable content digests (:meth:`Scenario.scenario_digest
<repro.run.scenario.Scenario.scenario_digest>`), and every backend is
digest-identical for the same scenario, so a completed cell can be
memoized by content address and served instead of recomputed:

* :class:`ResultCache` — the store itself (SQLite WAL index + pickled
  filesystem blobs, safe under parallel workers and concurrent CLI
  invocations; see :mod:`repro.cache.store`);
* :func:`cache_key` — the content address: a normalized scenario digest
  (execution-parallelism fields removed) plus a schema/version/engine
  salt, so code changes invalidate rather than mis-serve;
* :func:`default_cache` / :func:`resolve_cache` — the ``XSIM_CACHE`` /
  ``XSIM_CACHE_DIR`` environment policy used by
  :func:`~repro.run.backends.run_scenario`, ``xsim-run --cache``, and
  campaign workers.

A hit is bit-identical to recomputation — result digest, summary, and
sim-domain exporter bytes — which the ``cache-parity`` simcheck enforces
(cold vs. warm, serial and sharded).  Hits/misses surface as host-domain
obs instants and in :class:`~repro.cache.store.CacheStats`.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.cache.store import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    GcResult,
    ResultCache,
    VerifyIssue,
    cache_key,
    cache_salt,
    cacheable,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "GcResult",
    "ResultCache",
    "VerifyIssue",
    "cache_dir_from_env",
    "cache_enabled",
    "cache_key",
    "cache_salt",
    "cacheable",
    "default_cache",
    "open_cache",
    "resolve_cache",
]


def cache_enabled(environ=None) -> bool:
    """Whether ``XSIM_CACHE`` turns the result cache on (any non-empty
    value other than ``0``; off by default)."""
    env = os.environ if environ is None else environ
    return env.get("XSIM_CACHE", "").strip() not in ("", "0")


def cache_dir_from_env(environ=None) -> Path:
    """The cache directory: ``XSIM_CACHE_DIR`` if set, else
    ``~/.cache/xsim``."""
    env = os.environ if environ is None else environ
    raw = env.get("XSIM_CACHE_DIR", "").strip()
    if raw:
        return Path(raw)
    return Path.home() / ".cache" / "xsim"


#: Memoized open stores, keyed by resolved root path.  One ResultCache
#: per directory per process keeps SQLite connections and stats shared
#: across every cell of a campaign instead of reopened per run.
_OPEN: dict[str, ResultCache] = {}


def open_cache(root: "str | Path | None" = None) -> ResultCache:
    """Open (and memoize) the store at ``root`` (default: environment
    directory policy)."""
    path = Path(root) if root is not None else cache_dir_from_env()
    key = str(path.expanduser().resolve())
    store = _OPEN.get(key)
    if store is None:
        store = ResultCache(path.expanduser())
        _OPEN[key] = store
    return store


def default_cache(environ=None) -> ResultCache | None:
    """The environment-selected cache: a store when ``XSIM_CACHE`` is
    truthy, else ``None`` (caching off)."""
    if not cache_enabled(environ):
        return None
    return open_cache(cache_dir_from_env(environ))


def resolve_cache(cache) -> ResultCache | None:
    """Normalize the ``cache`` argument every entry point accepts:
    ``None`` defers to the environment policy, ``False`` forces caching
    off, a :class:`ResultCache` is used as-is."""
    if cache is None:
        return default_cache()
    if cache is False:
        return None
    return cache
