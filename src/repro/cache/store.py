"""The content-addressed result store behind :mod:`repro.cache`.

Layout on disk (one directory per cache)::

    <root>/index.sqlite3          SQLite index, WAL mode
    <root>/blobs/<k[:2]>/<k>.pkl  pickled outcome payloads, keyed by cache key

The **index** maps a cache key to the entry's result digest, payload size,
creation/last-hit times, and hit count; the **blob** holds everything a
cache hit must reproduce bit-identically: the stripped
:class:`~repro.pdes.engine.SimulationResult` (or the full
:class:`~repro.core.restart.FailureRunResult` of a restart experiment),
the run's sim-domain :class:`~repro.obs.ObsEvent` list (so warm exporter
bytes equal cold ones), and the execution metadata.

Concurrency: SQLite runs in WAL mode with a generous busy timeout, every
process gets its own connection (connections are keyed by pid, so a
forked campaign worker transparently reopens), every index mutation is a
single autocommit statement, and blobs are written to a temp file and
atomically renamed — two `-j` workers or two concurrent CLI invocations
sharing one cache directory cannot corrupt it, the worst case is both
computing the same cell and one `INSERT OR REPLACE` winning.

Correctness before speed: a lookup re-derives the result digest from the
unpickled payload and compares it against the index row; any mismatch —
like a truncated or missing blob, an unpicklable payload, or an index
row whose blob vanished — demotes the entry to a miss (the row is
deleted, a ``RuntimeWarning`` is emitted, and the caller recomputes).
A schema-version mismatch disables the cache for the process instead of
guessing at the on-disk format.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import tempfile
import time as _time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.run.backends import ScenarioOutcome
    from repro.run.scenario import Scenario

#: On-disk format version (index schema + blob payload layout).  A cache
#: directory written by a different version is never read or written —
#: the open is disabled with a warning and every lookup is a miss.
CACHE_SCHEMA_VERSION = 1

#: Simulation-semantics salt.  Part of every cache key next to the package
#: version: bump it when the engine's observable behavior changes without
#: a version bump, and every old entry silently becomes a miss instead of
#: serving results the current code would not reproduce.
ENGINE_SALT = "pdes-2"


def cache_salt() -> str:
    """The invalidation salt mixed into every cache key."""
    from repro import __version__

    return f"schema={CACHE_SCHEMA_VERSION};version={__version__};engine={ENGINE_SALT}"


def cacheable(scenario: "Scenario") -> bool:
    """Whether a scenario's outcome can be served from the cache.

    ``record_events`` runs are excluded: their purpose is the live
    ``sim.event_trace`` object (record/replay debugging), which a cache
    hit cannot supply.
    """
    return not scenario.record_events


def cache_key(scenario: "Scenario") -> str:
    """Content address of a scenario's *result*.

    Execution-parallelism fields (backend, shards, shard transport, the
    campaign ``jobs`` width) and the trace destination path are
    normalized out before digesting: the simcheck parity harness
    enforces that they never change the result, so a cell computed
    serially must hit for the same cell requested on a sharded backend —
    that cross-backend sharing is most of a mixed sweep's hit rate.
    Result-relevant fields (machine, app, resilience, seed, engine) and
    the instrumentation switches that change the cached payload
    (``observe``, ``trace_detail``, ``check``) stay in the key.
    """
    normalized = scenario.with_(
        backend=None, shards=1, shard_transport=None, jobs=1, trace_out=""
    )
    h = hashlib.sha256()
    h.update(cache_salt().encode())
    h.update(b"\n")
    h.update(normalized.scenario_digest().encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# payload (what a blob stores)
# ----------------------------------------------------------------------
def _strip_result(result):
    """A picklable copy of a SimulationResult: same observable content,
    log stream detached (streams are process-local file objects)."""
    log = result.log
    if log.stream is not None:
        log = replace(log, stream=None)
    return replace(result, log=log)


def _strip_run(run):
    """A picklable copy of a FailureRunResult (per-segment log streams
    detached)."""
    segments = [replace(seg, result=_strip_result(seg.result)) for seg in run.segments]
    return replace(run, segments=segments)


def _payload_digest(payload: dict) -> str:
    """The canonical result digest of a payload — same derivation as
    :meth:`~repro.run.backends.ScenarioOutcome.digest`, recomputed from
    the unpickled objects so a corrupted blob cannot satisfy the index."""
    from repro.core.harness.experiment import campaign_digest, result_digest

    if payload["run"] is not None:
        return campaign_digest([result_digest(s.result) for s in payload["run"].segments])
    return result_digest(payload["result"])


def make_payload(outcome: "ScenarioOutcome", wall_s: float) -> dict:
    """The blob body for one computed outcome."""
    return {
        "format": CACHE_SCHEMA_VERSION,
        "mode": outcome.mode,
        "result": None if outcome.result is None else _strip_result(outcome.result),
        "run": None if outcome.run is None else _strip_run(outcome.run),
        "sim_events": (
            None if outcome.observer is None else list(outcome.observer.sim_events())
        ),
        "metadata": dict(outcome.metadata),
        "result_digest": outcome.digest(),
        "wall_s": float(wall_s),
    }


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Per-process cache counters (EngineProfiler-style observability).

    ``lookup_s``/``store_s`` accumulate host wall time spent in the cache
    itself, so ``xsim-run bench`` can report the lookup latency a warm
    sweep pays instead of simulation time.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    store_errors: int = 0
    hit_bytes: int = 0
    store_bytes: int = 0
    lookup_s: float = 0.0
    store_s: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        n = self.lookups
        return self.hits / n if n else 0.0

    def as_record(self) -> dict[str, Any]:
        """Primitive dict for bench records and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "store_errors": self.store_errors,
            "hit_bytes": self.hit_bytes,
            "store_bytes": self.store_bytes,
            "hit_rate": round(self.hit_rate, 4),
            "lookup_s": round(self.lookup_s, 6),
            "store_s": round(self.store_s, 6),
            "lookup_mean_s": round(self.lookup_s / self.lookups, 6) if self.lookups else 0.0,
        }


@dataclass
class GcResult:
    """What one :meth:`ResultCache.gc` pass removed and kept."""

    removed: list[tuple[str, str]] = field(default_factory=list)
    """(key, reason) pairs in eviction order; reason is "age" or "bytes"."""
    freed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0


@dataclass
class VerifyIssue:
    """One entry :meth:`ResultCache.verify` found unservable."""

    key: str
    problem: str


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    key             TEXT PRIMARY KEY,
    scenario_digest TEXT NOT NULL,
    result_digest   TEXT NOT NULL,
    mode            TEXT NOT NULL,
    nbytes          INTEGER NOT NULL,
    wall_s          REAL NOT NULL,
    created         REAL NOT NULL,
    last_hit        REAL NOT NULL,
    hits            INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS entries_last_hit ON entries(last_hit);
"""


class ResultCache:
    """One content-addressed result store rooted at a directory.

    The object is safe to share across forked workers: connections are
    opened lazily per pid, and all cross-process coordination happens in
    SQLite (WAL) and atomic blob renames.  :attr:`stats` counts this
    process's traffic only.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.blob_dir = self.root / "blobs"
        self.db_path = self.root / "index.sqlite3"
        self.stats = CacheStats()
        self._conns: dict[int, sqlite3.Connection] = {}
        #: Set when the on-disk cache cannot be used (schema mismatch,
        #: unwritable directory); every lookup misses, every store no-ops.
        self.disabled_reason: str | None = None
        self._warned_disabled = False
        #: Last corruption note, popped by the runner to SimLog it.
        self._pending_warning: str | None = None
        try:
            self.blob_dir.mkdir(parents=True, exist_ok=True)
            self._init_schema()
        except (OSError, sqlite3.Error) as exc:
            self.disabled_reason = f"cache directory unusable: {exc}"

    # ------------------------------------------------------------------
    # connections & schema
    # ------------------------------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        pid = os.getpid()
        conn = self._conns.get(pid)
        if conn is None:
            conn = sqlite3.connect(str(self.db_path), timeout=30.0, isolation_level=None)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=10000")
            self._conns[pid] = conn
        return conn

    def _init_schema(self) -> None:
        conn = self._conn()
        conn.executescript(_SCHEMA)
        row = conn.execute("SELECT value FROM meta WHERE key = 'schema'").fetchone()
        if row is None:
            conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema', ?)",
                (str(CACHE_SCHEMA_VERSION),),
            )
            # A racing creator may have won the INSERT; re-read to agree.
            row = conn.execute("SELECT value FROM meta WHERE key = 'schema'").fetchone()
        if row is not None and row[0] != str(CACHE_SCHEMA_VERSION):
            self.disabled_reason = (
                f"cache schema version {row[0]} != supported "
                f"{CACHE_SCHEMA_VERSION}; falling back to recomputation "
                f"(delete {self.root} to rebuild)"
            )

    def _check_enabled(self) -> bool:
        if self.disabled_reason is None:
            return True
        if not self._warned_disabled:
            warnings.warn(self.disabled_reason, RuntimeWarning, stacklevel=3)
            self._pending_warning = self.disabled_reason
            self._warned_disabled = True
        return False

    # ------------------------------------------------------------------
    # blob paths
    # ------------------------------------------------------------------
    def blob_path(self, key: str) -> Path:
        return self.blob_dir / key[:2] / f"{key}.pkl"

    def _write_blob(self, key: str, data: bytes) -> None:
        path = self.blob_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(self, scenario: "Scenario") -> "ScenarioOutcome | None":
        """The cached outcome for ``scenario``, or ``None`` (a miss).

        Any unservable entry — truncated/missing blob, unpicklable
        payload, digest mismatch against the index — is deleted, warned
        about, and reported as a miss; the cache never raises into the
        run path and never serves bytes it cannot re-verify.
        """
        t0 = _time.perf_counter()
        try:
            return self._lookup(scenario)
        finally:
            self.stats.lookup_s += _time.perf_counter() - t0

    def _lookup(self, scenario: "Scenario") -> "ScenarioOutcome | None":
        if not cacheable(scenario) or not self._check_enabled():
            self.stats.misses += 1
            return None
        key = cache_key(scenario)
        try:
            row = self._conn().execute(
                "SELECT result_digest, mode, nbytes FROM entries WHERE key = ?",
                (key,),
            ).fetchone()
        except sqlite3.Error as exc:
            self._corrupt(key, f"index read failed: {exc}", drop_row=False)
            self.stats.misses += 1
            return None
        if row is None:
            self.stats.misses += 1
            return None
        indexed_digest, mode, nbytes = row
        path = self.blob_path(key)
        try:
            data = path.read_bytes()
        except OSError as exc:
            self._corrupt(key, f"blob unreadable ({exc.__class__.__name__}): {exc}")
            self.stats.misses += 1
            return None
        try:
            payload = pickle.loads(data)
            if not isinstance(payload, dict) or payload.get("format") != CACHE_SCHEMA_VERSION:
                raise ValueError(f"unexpected payload format {type(payload).__name__}")
            digest = _payload_digest(payload)
        except Exception as exc:  # noqa: BLE001 - any blob damage is a miss
            self._corrupt(key, f"blob undecodable: {exc}")
            self.stats.misses += 1
            return None
        if digest != indexed_digest:
            self._corrupt(
                key,
                f"blob digest {digest[:16]} != indexed {indexed_digest[:16]} "
                "(truncated or stale blob)",
            )
            self.stats.misses += 1
            return None
        try:
            self._conn().execute(
                "UPDATE entries SET hits = hits + 1, last_hit = ? WHERE key = ?",
                (_time.time(), key),
            )
        except sqlite3.Error:
            pass  # hit bookkeeping is best-effort; the payload is good
        self.stats.hits += 1
        self.stats.hit_bytes += len(data)
        return self._rebuild(scenario, key, payload)

    def _rebuild(self, scenario: "Scenario", key: str, payload: dict) -> "ScenarioOutcome":
        from repro.run.backends import ScenarioOutcome

        observer = None
        if scenario.observe and payload["sim_events"] is not None:
            from repro.obs import Observer

            observer = Observer(detail=scenario.trace_detail)
            observer.extend(payload["sim_events"])
            observer.host_instant(
                _time.perf_counter(), "cache-hit", track="cache",
                args={"key": key[:16], "bytes": self.stats.hit_bytes},
            )
        metadata = dict(payload["metadata"])
        metadata["cache_hit"] = True
        metadata["cache_key"] = key
        metadata["cache_wall_s"] = payload["wall_s"]
        return ScenarioOutcome(
            scenario=scenario,
            mode=payload["mode"],
            result=payload["result"],
            run=payload["run"],
            sim=None,
            observer=observer,
            metadata=metadata,
        )

    def store(
        self, scenario: "Scenario", outcome: "ScenarioOutcome", wall_s: float = 0.0
    ) -> bool:
        """Memoize one computed outcome; returns True when stored.

        Never raises into the run path: an unpicklable payload or a full
        disk degrades to "not cached" with a warning.
        """
        t0 = _time.perf_counter()
        try:
            if not cacheable(scenario) or not self._check_enabled():
                return False
            key = cache_key(scenario)
            try:
                payload = make_payload(outcome, wall_s)
                data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
                self._write_blob(key, data)
                self._conn().execute(
                    "INSERT OR REPLACE INTO entries "
                    "(key, scenario_digest, result_digest, mode, nbytes, wall_s, "
                    " created, last_hit, hits) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0)",
                    (
                        key,
                        scenario.scenario_digest(),
                        payload["result_digest"],
                        payload["mode"],
                        len(data),
                        float(wall_s),
                        _time.time(),
                        _time.time(),
                    ),
                )
            except Exception as exc:  # noqa: BLE001 - degrade, never fail the run
                self.stats.store_errors += 1
                warnings.warn(
                    f"result cache store failed for {key[:16]}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return False
            self.stats.stores += 1
            self.stats.store_bytes += len(data)
            return True
        finally:
            self.stats.store_s += _time.perf_counter() - t0

    def _corrupt(self, key: str, problem: str, drop_row: bool = True) -> None:
        """Demote a damaged entry: drop index row + blob, warn once per
        event, and remember the note for the runner's SimLog."""
        self.stats.corrupt += 1
        message = f"result cache entry {key[:16]} unusable ({problem}); recomputing"
        warnings.warn(message, RuntimeWarning, stacklevel=4)
        self._pending_warning = message
        if drop_row:
            try:
                self._conn().execute("DELETE FROM entries WHERE key = ?", (key,))
            except sqlite3.Error:
                pass
            try:
                self.blob_path(key).unlink(missing_ok=True)
            except OSError:
                pass

    def pop_warning(self) -> str | None:
        """The last corruption/disable note (cleared on read) — the
        runner logs it into the recomputed run's SimLog."""
        note, self._pending_warning = self._pending_warning, None
        return note

    # ------------------------------------------------------------------
    # maintenance (CLI: cache stats / verify / gc)
    # ------------------------------------------------------------------
    def entries(self) -> list[dict[str, Any]]:
        """Every index row, LRU-first (the gc eviction order)."""
        rows = self._conn().execute(
            "SELECT key, scenario_digest, result_digest, mode, nbytes, wall_s, "
            "created, last_hit, hits FROM entries "
            "ORDER BY last_hit ASC, created ASC, key ASC"
        ).fetchall()
        names = (
            "key", "scenario_digest", "result_digest", "mode", "nbytes",
            "wall_s", "created", "last_hit", "hits",
        )
        return [dict(zip(names, r)) for r in rows]

    def index_stats(self) -> dict[str, Any]:
        """Aggregate index statistics for ``xsim-run cache stats``."""
        conn = self._conn()
        n, nbytes, hits, wall = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(nbytes), 0), COALESCE(SUM(hits), 0), "
            "COALESCE(SUM(wall_s * hits), 0.0) FROM entries"
        ).fetchone()
        modes = dict(
            conn.execute("SELECT mode, COUNT(*) FROM entries GROUP BY mode").fetchall()
        )
        return {
            "root": str(self.root),
            "schema": CACHE_SCHEMA_VERSION,
            "salt": cache_salt(),
            "entries": n,
            "bytes": nbytes,
            "hits": hits,
            "saved_s": wall,
            "modes": modes,
            "disabled": self.disabled_reason,
        }

    def verify(self, prune: bool = False) -> list[VerifyIssue]:
        """Audit every entry: blob present, unpicklable-free, digest
        matching the index.  ``prune`` deletes the failing entries."""
        issues: list[VerifyIssue] = []
        for entry in self.entries():
            key = entry["key"]
            path = self.blob_path(key)
            problem = None
            try:
                data = path.read_bytes()
            except OSError as exc:
                problem = f"blob missing/unreadable: {exc.__class__.__name__}"
            else:
                if len(data) != entry["nbytes"]:
                    problem = f"blob size {len(data)} != indexed {entry['nbytes']}"
                else:
                    try:
                        payload = pickle.loads(data)
                        digest = _payload_digest(payload)
                    except Exception as exc:  # noqa: BLE001
                        problem = f"blob undecodable: {exc.__class__.__name__}: {exc}"
                    else:
                        if digest != entry["result_digest"]:
                            problem = (
                                f"digest mismatch: blob {digest[:16]} != "
                                f"index {entry['result_digest'][:16]}"
                            )
            if problem is not None:
                issues.append(VerifyIssue(key, problem))
                if prune:
                    self._conn().execute("DELETE FROM entries WHERE key = ?", (key,))
                    try:
                        path.unlink(missing_ok=True)
                    except OSError:
                        pass
        return issues

    def gc(
        self,
        max_bytes: int | None = None,
        max_age: float | None = None,
        now: float | None = None,
    ) -> GcResult:
        """Evict entries: first everything idle longer than ``max_age``
        seconds (by last hit), then — LRU by last hit — until the cache
        fits ``max_bytes``.  Eviction order within a policy is
        deterministic: oldest ``last_hit`` first, ties broken by
        ``created`` then key."""
        now = _time.time() if now is None else now
        res = GcResult()
        survivors: list[dict[str, Any]] = []
        for entry in self.entries():  # LRU-first
            if max_age is not None and now - entry["last_hit"] > max_age:
                res.removed.append((entry["key"], "age"))
                res.freed_bytes += entry["nbytes"]
            else:
                survivors.append(entry)
        if max_bytes is not None:
            total = sum(e["nbytes"] for e in survivors)
            still: list[dict[str, Any]] = []
            for entry in survivors:
                if total > max_bytes:
                    res.removed.append((entry["key"], "bytes"))
                    res.freed_bytes += entry["nbytes"]
                    total -= entry["nbytes"]
                else:
                    still.append(entry)
            survivors = still
        for key, _reason in res.removed:
            self._conn().execute("DELETE FROM entries WHERE key = ?", (key,))
            try:
                self.blob_path(key).unlink(missing_ok=True)
            except OSError:
                pass
        res.kept = len(survivors)
        res.kept_bytes = sum(e["nbytes"] for e in survivors)
        return res

    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._conns.clear()
