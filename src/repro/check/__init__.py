"""simcheck: determinism and invariant tooling for the PDES/MPI core.

The toolkit's value proposition is *trustworthy* failure-injection results,
which requires runs to be provably deterministic and internally consistent.
This package provides three cooperating facilities:

* :class:`~repro.check.trace.EventTrace` — a compact recorder of every
  event the engine dispatches (virtual time, sequence number, VP, kind,
  origin), with save/load and a first-divergence diff for replay checking.
* :class:`~repro.check.sanitizer.Sanitizer` — an opt-in runtime invariant
  checker (``XSIM_CHECK=1`` in the environment, or ``--check`` on the CLI)
  enforced at engine dispatch and MPI-layer boundaries; violations raise
  :class:`~repro.util.errors.InvariantViolation` carrying a structured
  diagnostic dump.
* :mod:`~repro.check.differential` — a harness of differential runs
  (serial vs parallel campaigns, advance-coalescing on vs off, analytic vs
  event-level collectives, trace record vs replay) asserting that paths
  which must agree do agree.

Checking is off by default and costs one attribute test per event when
disabled; the sanitizer's per-event work is O(1) with full-state sweeps
reserved for rare boundaries (failure propagation, sync completion, end of
run).
"""

from __future__ import annotations

import os

from repro.check.sanitizer import Sanitizer, verify_store, verify_store_cleaned
from repro.check.trace import EventTrace, TraceDivergence
from repro.util.errors import InvariantViolation

__all__ = [
    "EventTrace",
    "InvariantViolation",
    "Sanitizer",
    "TraceDivergence",
    "checking_enabled",
    "verify_store",
    "verify_store_cleaned",
]


def checking_enabled() -> bool:
    """Is invariant checking requested via the environment?

    ``XSIM_CHECK=1`` (or any value other than ``0``/empty) turns the
    runtime sanitizer on for every simulation that does not explicitly
    override the setting.
    """
    return os.environ.get("XSIM_CHECK", "").strip() not in ("", "0")
