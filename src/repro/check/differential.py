"""Differential determinism harness (simcheck).

The paper's central repeatability claim — "the experiments are repeatable
as the simulator and the application are deterministic" — is only as good
as the equivalences the implementation promises.  This harness runs the
same workload down pairs of execution paths that must agree and asserts
they do, bit-for-bit where the promise is bit-identity:

* **rerun** — the same configuration twice: identical result digest.
* **coalescing** — advance coalescing on vs. off: the inline resume is
  documented as result- and count-identical to the heap path.
* **trace replay** — record the full dispatch trace of a failure run,
  rerun, and diff: zero divergence (first divergence reported otherwise).
* **campaign parallelism** — Finject with independent streams, serial vs.
  a 4-worker pool: identical campaign digest.
* **executor fallback** — the pool path vs. the degraded in-process
  fallback of :class:`~repro.core.harness.parallel.CampaignExecutor`:
  identical campaign digest.
* **collectives** — analytic vs. event-level (linear) collectives: each
  mode is bit-identical to itself across reruns, and the modes agree
  semantically (same completion, same failures) with exit times within a
  small tolerance — the analytic model is a ~1%-accurate closed form of
  the linear schedule, so cross-mode bit-identity is not promised.
* **sharded parity** — the conservative-parallel engine vs. serial on a
  failure run: identical per-rank traces and result digests.
* **obs parity** — the :mod:`repro.obs` timeline export of a failure run,
  serial vs. sharded: byte-identical Chrome-JSON and JSONL files.
* **scenario parity** — one :class:`~repro.run.scenario.Scenario` through
  the full TOML round trip and every registered backend: identical
  scenario digests and identical result digests.
* **flat parity** — the slab-pool flat event core vs. the heap core:
  identical result digests, event counts, dispatch traces, and obs export
  bytes, serially and sharded, including a failure + restart cycle.
* **cache parity** — a :mod:`repro.cache` hit vs. recomputation: identical
  result digest, summary, and obs export bytes on a cold/warm pair, with
  serial-computed entries serving sharded requests and vice versa.

:func:`run_all` executes every check and (optionally) writes failure
artifacts — traces, digests, divergence reports — into a directory for CI
to upload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.trace import EventTrace
from repro.util.errors import InvariantViolation


@dataclass
class CheckResult:
    """Outcome of one differential check."""

    name: str
    passed: bool
    detail: str
    #: Artifact file name -> contents, written out by :func:`run_all` when
    #: an artifacts directory is given and the check failed.
    artifacts: dict[str, str] = field(default_factory=dict)

    def __str__(self) -> str:
        mark = "ok  " if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


# ----------------------------------------------------------------------
# workload helpers
# ----------------------------------------------------------------------
def _heat_sim(
    nranks: int,
    iterations: int,
    checkpoint_interval: int,
    seed: int = 0,
    failure: tuple[int, float] | None = None,
    paper_timing: bool = False,
    **xsim_kwargs,
):
    """One small heat3d run; returns ``(sim, result)``.

    ``paper_timing`` selects the paper's timing parameters (nonzero
    per-message software overheads) instead of the fast zeroed test
    system — required by checks whose promise depends on the model
    serializing same-instant activity across ranks (sharded parity).
    """
    from repro.apps.heat3d import HeatConfig, heat3d
    from repro.core.checkpoint.store import CheckpointStore
    from repro.core.harness.config import SystemConfig
    from repro.core.simulator import XSim

    if paper_timing:
        system = SystemConfig.paper_system(nranks=nranks)
    else:
        system = SystemConfig.small_test_system(nranks=nranks)
    workload = HeatConfig.paper_workload(
        checkpoint_interval=checkpoint_interval, nranks=nranks, iterations=iterations
    )
    sim = XSim(system, seed=seed, **xsim_kwargs)
    if failure is not None:
        sim.inject_failure(*failure)
    result = sim.run(heat3d, args=(workload, CheckpointStore()))
    return sim, result


def _heat_failure_point(nranks: int, iterations: int, interval: int) -> tuple[int, float]:
    """A mid-run failure (rank, time) for the given workload: measured as
    a fraction of the clean run's exit time, so the choice tracks the
    timing model instead of hard-coding a virtual time."""
    _, clean = _heat_sim(nranks, iterations, interval)
    return (nranks // 3, 0.4 * clean.exit_time)


# ----------------------------------------------------------------------
# individual checks
# ----------------------------------------------------------------------
def check_rerun(nranks: int = 8, iterations: int = 40) -> CheckResult:
    """The same configuration twice must digest identically."""
    from repro.core.harness.experiment import result_digest

    digests = [
        result_digest(_heat_sim(nranks, iterations, 10, check=True)[1]) for _ in range(2)
    ]
    passed = digests[0] == digests[1]
    return CheckResult(
        "rerun",
        passed,
        f"digest {digests[0][:16]} == {digests[1][:16]}"
        if passed
        else f"digests differ: {digests[0]} vs {digests[1]}",
    )


def check_coalescing(nranks: int = 8, iterations: int = 40) -> CheckResult:
    """Advance coalescing on vs. off: bit-identical results and counts."""
    from repro.core.harness.experiment import result_digest

    _, on = _heat_sim(nranks, iterations, 10, check=True, coalesce_advances=True)
    _, off = _heat_sim(nranks, iterations, 10, check=True, coalesce_advances=False)
    d_on, d_off = result_digest(on), result_digest(off)
    if d_on != d_off:
        return CheckResult(
            "coalescing",
            False,
            f"coalesced digest {d_on} != heap-path digest {d_off}",
            artifacts={"coalescing-digests.txt": f"on  {d_on}\noff {d_off}\n"},
        )
    return CheckResult(
        "coalescing",
        True,
        f"digest {d_on[:16]} identical ({on.event_count} events either path)",
    )


def check_trace_replay(nranks: int = 64, iterations: int = 20) -> CheckResult:
    """Record -> replay of a failure run must diff with zero divergence."""
    import os
    import tempfile

    failure = _heat_failure_point(nranks, iterations, 10)
    sim1, res1 = _heat_sim(
        nranks, iterations, 10, failure=failure, check=True, record_events=True
    )
    sim2, res2 = _heat_sim(
        nranks, iterations, 10, failure=failure, check=True, record_events=True
    )
    with tempfile.TemporaryDirectory() as tmp:  # exercise save/load round-trip
        path = os.path.join(tmp, "trace.txt")
        sim1.event_trace.save(path)
        recorded = EventTrace.load(path)
    divergence = recorded.diff(sim2.event_trace)
    if divergence is not None:
        return CheckResult(
            "trace-replay",
            False,
            f"first divergence at event {divergence.index}",
            artifacts={
                "trace-divergence.txt": divergence.report(),
                "trace-digests.txt": (
                    f"recorded {sim1.event_trace.digest()}\n"
                    f"replayed {sim2.event_trace.digest()}\n"
                ),
            },
        )
    if not res1.failures or res1.failures != res2.failures:
        return CheckResult(
            "trace-replay",
            False,
            f"injected failure did not reproduce: {res1.failures} vs {res2.failures}",
        )
    return CheckResult(
        "trace-replay",
        True,
        f"{len(recorded)} events, {nranks} ranks, 1 injected failure, 0 divergences",
    )


def check_campaign_parallel(jobs: int = 4, victims: int = 16) -> CheckResult:
    """Finject (independent streams): serial vs. ``jobs``-worker pool."""
    from repro.core.faults.finject import FinjectCampaign
    from repro.core.harness.experiment import campaign_digest

    def run(n_jobs: int) -> str:
        campaign = FinjectCampaign(
            victims=victims, independent_streams=True, jobs=n_jobs
        )
        r = campaign.run()
        return campaign_digest(
            [list(r.injections_to_failure), r.censored, r.sdc_hits, r.benign_hits]
        )

    serial, pooled = run(1), run(jobs)
    passed = serial == pooled
    return CheckResult(
        "campaign-parallel",
        passed,
        f"serial == -j {jobs} ({serial[:16]})"
        if passed
        else f"serial {serial} != -j {jobs} {pooled}",
    )


def check_executor_fallback(jobs: int = 4, victims: int = 12) -> CheckResult:
    """Pool path vs. degraded in-process fallback: identical digests."""
    from repro.core.faults.finject import VictimModel
    from repro.core.harness.experiment import campaign_digest
    from repro.core.harness.parallel import CampaignExecutor, RunSpec

    specs = [
        RunSpec(
            "finject-victim",
            key=("victim", i),
            params={
                "victim": VictimModel(),
                "victim_id": i,
                "max_injections": 100,
                "seed": 7,
            },
        )
        for i in range(victims)
    ]
    pool_exec = CampaignExecutor(max_workers=jobs)
    pool_digest = campaign_digest(pool_exec.run(specs))
    fb_exec = CampaignExecutor(max_workers=jobs, force_fallback=True)
    fb_digest = campaign_digest(fb_exec.run(specs))
    if pool_exec.last_mode != "pool" or fb_exec.last_mode != "fallback-serial":
        return CheckResult(
            "executor-fallback",
            False,
            f"unexpected modes: {pool_exec.last_mode}/{fb_exec.last_mode}",
        )
    passed = pool_digest == fb_digest
    return CheckResult(
        "executor-fallback",
        passed,
        f"pool == fallback ({pool_digest[:16]})"
        if passed
        else f"pool {pool_digest} != fallback {fb_digest}",
    )


def check_collectives(
    nranks: int = 8, iterations: int = 30, tolerance: float = 0.05
) -> CheckResult:
    """Analytic vs. event-level collectives: within-mode bit-identity,
    cross-mode semantic agreement (exit time within ``tolerance``)."""
    from repro.apps.heat3d import HeatConfig, heat3d
    from repro.core.checkpoint.store import CheckpointStore
    from repro.core.harness.config import SystemConfig
    from repro.core.harness.experiment import result_digest
    from repro.core.simulator import XSim

    workload = HeatConfig.paper_workload(
        checkpoint_interval=10, nranks=nranks, iterations=iterations
    )

    def run(algo: str):
        system = SystemConfig.small_test_system(
            nranks=nranks, collective_algorithm=algo
        )
        sim = XSim(system, check=True)
        return sim.run(heat3d, args=(workload, CheckpointStore()))

    results = {algo: (run(algo), run(algo)) for algo in ("linear", "analytic")}
    for algo, (a, b) in results.items():
        if result_digest(a) != result_digest(b):
            return CheckResult(
                "collectives", False, f"{algo} collectives not deterministic"
            )
    lin, ana = results["linear"][0], results["analytic"][0]
    if lin.completed != ana.completed or lin.failures != ana.failures:
        return CheckResult(
            "collectives",
            False,
            f"modes disagree semantically: completed {lin.completed}/{ana.completed}, "
            f"failures {lin.failures}/{ana.failures}",
        )
    lo, hi = sorted((lin.exit_time, ana.exit_time))
    rel = (hi - lo) / hi if hi > 0 else 0.0
    if rel > tolerance:
        return CheckResult(
            "collectives",
            False,
            f"exit times diverge by {rel:.2%} (> {tolerance:.0%}): "
            f"linear {lin.exit_time} vs analytic {ana.exit_time}",
        )
    return CheckResult(
        "collectives",
        True,
        f"both modes deterministic; exit times agree within {rel:.2%}",
    )


def check_sharded_parity(
    nranks: int = 64, iterations: int = 20, shards: int = 4
) -> CheckResult:
    """Serial vs sharded engine on a failure run: identical per-rank trace.

    The sharded conservative-parallel engine (:mod:`repro.pdes.sharded`)
    promises bit-identical *per-rank* event sequences (global interleaving
    and seq numbers legitimately differ across shards — see
    :meth:`~repro.check.trace.EventTrace.rank_projection`).  Checks the
    in-process transport's trace projection against serial, then the
    forked-worker transport's result digest, both with a mid-run injected
    failure so the resilience envelope path (failure broadcast, detection,
    abort) is exercised.

    Runs under the paper's timing model: its nonzero per-message software
    overheads serialize same-instant activity at a rank, which is part of
    the parity contract — with a zero-overhead model, every rank resumes
    at the *same* virtual instant and the serial engine's ordering among
    those simultaneous events is emergent global heap-insertion history
    that no shard-local protocol can reproduce (see
    ``docs/INTERNALS.md``, "Sharded engine & conservative windows").
    """
    from repro.core.harness.experiment import result_digest

    _, clean = _heat_sim(nranks, iterations, 10, paper_timing=True)
    failure = (nranks // 3, 0.4 * clean.exit_time)
    serial_sim, serial = _heat_sim(
        nranks,
        iterations,
        10,
        failure=failure,
        check=True,
        record_events=True,
        paper_timing=True,
    )
    sharded_sim, sharded = _heat_sim(
        nranks,
        iterations,
        10,
        failure=failure,
        record_events=True,
        shards=shards,
        shard_transport="inline",
        paper_timing=True,
    )
    divergence = serial_sim.event_trace.diff_ranks(sharded_sim.event_trace)
    if divergence is not None:
        return CheckResult(
            "sharded-parity",
            False,
            "per-rank trace diverges from serial (inline transport)",
            artifacts={
                "sharded-divergence.txt": divergence,
                "sharded-digests.txt": (
                    f"serial  {result_digest(serial)}\n"
                    f"sharded {result_digest(sharded)}\n"
                ),
            },
        )
    d_serial, d_sharded = result_digest(serial), result_digest(sharded)
    if d_serial != d_sharded:
        return CheckResult(
            "sharded-parity",
            False,
            f"inline-shard digest {d_sharded} != serial {d_serial}",
        )
    _, forked = _heat_sim(
        nranks,
        iterations,
        10,
        failure=failure,
        shards=shards,
        shard_transport="fork",
        paper_timing=True,
    )
    d_forked = result_digest(forked)
    if d_forked != d_serial:
        return CheckResult(
            "sharded-parity",
            False,
            f"fork-shard digest {d_forked} != serial {d_serial}",
        )
    _, shm = _heat_sim(
        nranks,
        iterations,
        10,
        failure=failure,
        shards=shards,
        shard_transport="shm",
        paper_timing=True,
    )
    d_shm = result_digest(shm)
    if d_shm != d_serial:
        return CheckResult(
            "sharded-parity",
            False,
            f"shm-shard digest {d_shm} != serial {d_serial}",
        )
    return CheckResult(
        "sharded-parity",
        True,
        f"{shards} shards == serial at {nranks} ranks with injected failure "
        f"({serial.event_count} events; inline trace + fork/shm digests)",
    )


def check_obs_parity(
    nranks: int = 16, iterations: int = 10, shards: int = 2
) -> CheckResult:
    """Serial vs sharded observability export: byte-identical files.

    The :mod:`repro.obs` exporters promise that the *exported bytes* of a
    sim-domain timeline — Chrome trace-event JSON and JSONL alike — are a
    pure function of the run, independent of the shard count or the order
    worker reports arrive in (canonical sort + canonical JSON encoding).
    Runs a failure workload so the resilience track (inject, notify,
    detect, abort) is part of the compared payload, under the paper
    timing model for the same reason as ``check_sharded_parity``.
    """
    from repro.obs import to_chrome, to_jsonl

    _, clean = _heat_sim(nranks, iterations, 5, paper_timing=True)
    failure = (nranks // 3, 0.4 * clean.exit_time)
    serial_sim, serial = _heat_sim(
        nranks, iterations, 5, failure=failure, paper_timing=True, observe=True
    )
    sharded_sim, sharded = _heat_sim(
        nranks,
        iterations,
        5,
        failure=failure,
        paper_timing=True,
        observe=True,
        shards=shards,
        shard_transport="inline",
    )
    chrome_s, chrome_p = to_chrome(serial_sim.observer), to_chrome(sharded_sim.observer)
    jsonl_s, jsonl_p = to_jsonl(serial_sim.observer), to_jsonl(sharded_sim.observer)
    if chrome_s != chrome_p or jsonl_s != jsonl_p:
        which = "chrome" if chrome_s != chrome_p else "jsonl"
        return CheckResult(
            "obs-parity",
            False,
            f"{which} export differs between serial and {shards}-shard runs",
            artifacts={
                "obs-serial.json": chrome_s,
                "obs-sharded.json": chrome_p,
                "obs-serial.jsonl": jsonl_s,
                "obs-sharded.jsonl": jsonl_p,
            },
        )
    if serial.exit_time != sharded.exit_time:
        return CheckResult(
            "obs-parity",
            False,
            f"exit times differ under observation: "
            f"serial {serial.exit_time} vs sharded {sharded.exit_time}",
        )
    n = len(serial_sim.observer.sim_events())
    if not any(
        e.track == "resilience" and e.name == "inject"
        for e in serial_sim.observer.events
    ):
        return CheckResult(
            "obs-parity", False, "no inject instant recorded on a failure run"
        )
    return CheckResult(
        "obs-parity",
        True,
        f"{shards}-shard export byte-identical to serial "
        f"({n} sim events, chrome + jsonl)",
    )


def check_scenario_parity(
    nranks: int = 16, iterations: int = 20, shards: int = 2
) -> CheckResult:
    """One scenario, every backend, plus the TOML round trip.

    The :mod:`repro.run` layer promises that a scenario is a complete
    description of a run: serializing it to TOML and back must preserve
    the scenario digest, and executing it on any registered backend must
    produce the same result digest.  Uses a failure run (explicit
    schedule) so the restart loop is part of the compared behavior.
    """
    from repro.run.backends import backend_names, run_scenario
    from repro.run.scenario import Scenario

    _, clean = _heat_sim(nranks, iterations, 10, paper_timing=True)
    base = Scenario(
        ranks=nranks,
        iterations=iterations,
        interval=10,
        failures=f"{nranks // 3}@{0.4 * clean.exit_time}s",
    )
    round_tripped = Scenario.from_toml(base.to_toml())
    if round_tripped.scenario_digest() != base.scenario_digest():
        return CheckResult(
            "scenario-parity",
            False,
            "TOML round trip changed the scenario digest",
            artifacts={"scenario.toml": base.to_toml()},
        )
    digests: dict[str, str] = {}
    for name in backend_names():
        scenario = round_tripped.with_(
            shards=1 if name == "serial" else shards,
            shard_transport={
                "sharded-inline": "inline",
                "sharded-fork": "fork",
                "sharded-shm": "shm",
            }.get(name),
        )
        digests[name] = run_scenario(scenario).digest()
    if len(set(digests.values())) != 1:
        return CheckResult(
            "scenario-parity",
            False,
            "backends disagree: "
            + ", ".join(f"{n} {d[:16]}" for n, d in digests.items()),
            artifacts={
                "scenario-digests.txt": "".join(
                    f"{n} {d}\n" for n, d in digests.items()
                )
            },
        )
    return CheckResult(
        "scenario-parity",
        True,
        f"{len(digests)} backends agree on digest "
        f"{next(iter(digests.values()))[:16]} (restart run, TOML round trip)",
    )


def check_flat_parity(
    nranks: int = 16, iterations: int = 20, shards: int = 2
) -> CheckResult:
    """Heap event core vs. flat slab-pool core: observational bit-identity.

    The flat core (:mod:`repro.pdes.flatcore`) replaces the heap engine's
    per-event tuples with slab-allocated parallel arrays and batched
    same-timestamp dispatch, and promises the swap is *observationally
    invisible*: same result digest, same event count, same per-event
    dispatch trace, and byte-identical :mod:`repro.obs` exports, on every
    backend.  Checks, heap vs flat:

    * serial run with the sanitizer and event trace attached — result
      digest, event count, and full trace digest;
    * ``shards``-shard inline run — result digest;
    * observability export of a failure run — Chrome-JSON and JSONL bytes;
    * a failure + restart cycle through the restart driver
      (:func:`~repro.run.backends.run_scenario` with an explicit
      schedule) — campaign digest across both segments.
    """
    from repro.core.harness.experiment import result_digest
    from repro.run.backends import run_scenario
    from repro.run.scenario import Scenario

    # serial, instrumented
    heap_sim, heap_res = _heat_sim(
        nranks, iterations, 10, check=True, record_events=True, paper_timing=True
    )
    flat_sim, flat_res = _heat_sim(
        nranks, iterations, 10, check=True, record_events=True, paper_timing=True,
        engine="flat",
    )
    d_heap, d_flat = result_digest(heap_res), result_digest(flat_res)
    if d_heap != d_flat or heap_res.event_count != flat_res.event_count:
        return CheckResult(
            "flat-parity",
            False,
            f"serial digest/count mismatch: heap {d_heap[:16]}/"
            f"{heap_res.event_count} vs flat {d_flat[:16]}/{flat_res.event_count}",
            artifacts={"flat-digests.txt": f"heap {d_heap}\nflat {d_flat}\n"},
        )
    t_heap, t_flat = heap_sim.event_trace.digest(), flat_sim.event_trace.digest()
    if t_heap != t_flat:
        divergence = heap_sim.event_trace.diff(flat_sim.event_trace)
        return CheckResult(
            "flat-parity",
            False,
            "dispatch traces differ between heap and flat cores",
            artifacts={
                "flat-trace-divergence.txt": (
                    divergence.report() if divergence is not None else "(no diff?)"
                )
            },
        )
    # sharded inline
    _, heap_sh = _heat_sim(
        nranks, iterations, 10, paper_timing=True,
        shards=shards, shard_transport="inline",
    )
    _, flat_sh = _heat_sim(
        nranks, iterations, 10, paper_timing=True,
        shards=shards, shard_transport="inline", engine="flat",
    )
    if result_digest(heap_sh) != result_digest(flat_sh):
        return CheckResult(
            "flat-parity",
            False,
            f"{shards}-shard digest mismatch: heap "
            f"{result_digest(heap_sh)[:16]} vs flat {result_digest(flat_sh)[:16]}",
        )
    # obs export bytes on a failure run
    from repro.obs import to_chrome, to_jsonl

    failure = (nranks // 3, 0.4 * heap_res.exit_time)
    obs_heap, _ = _heat_sim(
        nranks, iterations, 10, failure=failure, paper_timing=True, observe=True
    )
    obs_flat, _ = _heat_sim(
        nranks, iterations, 10, failure=failure, paper_timing=True, observe=True,
        engine="flat",
    )
    chrome_h, chrome_f = to_chrome(obs_heap.observer), to_chrome(obs_flat.observer)
    jsonl_h, jsonl_f = to_jsonl(obs_heap.observer), to_jsonl(obs_flat.observer)
    if chrome_h != chrome_f or jsonl_h != jsonl_f:
        which = "chrome" if chrome_h != chrome_f else "jsonl"
        return CheckResult(
            "flat-parity",
            False,
            f"{which} export differs between heap and flat cores",
            artifacts={
                "flat-obs-heap.json": chrome_h,
                "flat-obs-flat.json": chrome_f,
            },
        )
    # failure + restart cycle through the restart driver
    base = Scenario(
        ranks=nranks,
        iterations=iterations,
        interval=10,
        failures=f"{nranks // 3}@{0.4 * heap_res.exit_time}s",
    )
    out_heap = run_scenario(base)
    out_flat = run_scenario(base.with_(engine="flat"))
    if out_heap.mode != "restart" or out_heap.digest() != out_flat.digest():
        return CheckResult(
            "flat-parity",
            False,
            f"restart-cycle mismatch: mode {out_heap.mode}/{out_flat.mode}, "
            f"digest {out_heap.digest()[:16]} vs {out_flat.digest()[:16]}",
        )
    return CheckResult(
        "flat-parity",
        True,
        f"flat == heap at {nranks} ranks ({heap_res.event_count} events; "
        f"serial trace, {shards}-shard inline, obs bytes, restart cycle)",
    )


def check_cache_parity(
    nranks: int = 16, iterations: int = 20, shards: int = 2
) -> CheckResult:
    """A result-cache hit must be bit-identical to recomputation.

    The content-addressed store (:mod:`repro.cache`) promises that a warm
    lookup is observationally indistinguishable from running the
    scenario: same result digest, same summary, byte-identical
    :mod:`repro.obs` exports.  Checks, on an observed failure + restart
    scenario:

    * cold compute-and-store, then warm lookup — digest, summary, and
      Chrome-JSON/JSONL export bytes all equal, and the store's counters
      read exactly one miss, one store, one hit;
    * the same cell requested on a ``shards``-shard backend — the key
      normalizes execution parallelism away, so the serial-computed entry
      must hit and serve the identical digest;
    * the reverse direction in a fresh cache — sharded-cold, serial-warm.
    """
    import tempfile

    from repro.cache.store import ResultCache, cache_key
    from repro.obs import to_chrome, to_jsonl
    from repro.run.backends import run_scenario
    from repro.run.scenario import Scenario

    _, clean = _heat_sim(nranks, iterations, 10, paper_timing=True)
    base = Scenario(
        ranks=nranks,
        iterations=iterations,
        interval=10,
        failures=f"{nranks // 3}@{0.4 * clean.exit_time}s",
        observe=True,
    )
    sharded = base.with_(shards=shards, shard_transport="inline")
    if cache_key(sharded) != cache_key(base):
        return CheckResult(
            "cache-parity",
            False,
            "cache key differs between serial and sharded requests for one cell",
        )
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultCache(tmp)
        cold = run_scenario(base, cache=store)
        warm = run_scenario(base, cache=store)
        if cold.metadata.get("cache_hit") or not warm.metadata.get("cache_hit"):
            return CheckResult(
                "cache-parity",
                False,
                f"hit flags wrong: cold {cold.metadata.get('cache_hit')}, "
                f"warm {warm.metadata.get('cache_hit')}",
            )
        if cold.digest() != warm.digest() or cold.summary() != warm.summary():
            return CheckResult(
                "cache-parity",
                False,
                f"warm hit differs from cold compute: digest "
                f"{cold.digest()[:16]} vs {warm.digest()[:16]}",
                artifacts={
                    "cache-summaries.txt": f"cold {cold.summary()}\nwarm {warm.summary()}\n"
                },
            )
        chrome_c, chrome_w = to_chrome(cold.observer), to_chrome(warm.observer)
        jsonl_c, jsonl_w = to_jsonl(cold.observer), to_jsonl(warm.observer)
        if chrome_c != chrome_w or jsonl_c != jsonl_w:
            which = "chrome" if chrome_c != chrome_w else "jsonl"
            return CheckResult(
                "cache-parity",
                False,
                f"{which} export differs between cold compute and warm hit",
                artifacts={
                    "cache-obs-cold.json": chrome_c,
                    "cache-obs-warm.json": chrome_w,
                },
            )
        st = store.stats
        if (st.hits, st.misses, st.stores, st.corrupt) != (1, 1, 1, 0):
            return CheckResult(
                "cache-parity",
                False,
                f"unexpected counters after cold+warm: {st.as_record()}",
            )
        warm_sharded = run_scenario(sharded, cache=store)
        if not warm_sharded.metadata.get("cache_hit") or (
            warm_sharded.digest() != cold.digest()
        ):
            return CheckResult(
                "cache-parity",
                False,
                f"serial-computed entry did not serve the {shards}-shard request "
                f"(hit={warm_sharded.metadata.get('cache_hit')}, digest "
                f"{warm_sharded.digest()[:16]} vs {cold.digest()[:16]})",
            )
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultCache(tmp)
        cold_sharded = run_scenario(sharded, cache=store)
        warm_serial = run_scenario(base, cache=store)
        if not warm_serial.metadata.get("cache_hit") or (
            warm_serial.digest() != cold_sharded.digest()
        ):
            return CheckResult(
                "cache-parity",
                False,
                f"sharded-computed entry did not serve the serial request "
                f"(hit={warm_serial.metadata.get('cache_hit')}, digest "
                f"{warm_serial.digest()[:16]} vs {cold_sharded.digest()[:16]})",
            )
    return CheckResult(
        "cache-parity",
        True,
        f"warm hits bit-identical to cold computes at {nranks} ranks "
        f"(restart run; digest, summary, obs bytes; serial<->{shards}-shard "
        "sharing both directions)",
    )


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_all(
    jobs: int = 4, artifacts_dir: str | None = None, only: str | None = None
) -> list[CheckResult]:
    """Run every differential check; write failure artifacts if asked.

    ``only`` restricts the run to a single named check (e.g. a dedicated
    CI job running just ``"sharded-parity"``).

    An :class:`~repro.util.errors.InvariantViolation` raised *inside* a
    check (every check runs with the sanitizer enabled) is itself a
    failure of that check, reported with its structured dump attached.
    """
    import json
    import os

    jobs = max(jobs, 2)  # pool-vs-serial checks need an actual pool
    checks = [
        check_rerun,
        check_coalescing,
        check_trace_replay,
        lambda: check_campaign_parallel(jobs=jobs),
        lambda: check_executor_fallback(jobs=jobs),
        check_collectives,
        check_sharded_parity,
        check_obs_parity,
        check_scenario_parity,
        check_flat_parity,
        check_cache_parity,
    ]
    names = [
        "rerun",
        "coalescing",
        "trace-replay",
        "campaign-parallel",
        "executor-fallback",
        "collectives",
        "sharded-parity",
        "obs-parity",
        "scenario-parity",
        "flat-parity",
        "cache-parity",
    ]
    if only is not None:
        if only not in names:
            raise ValueError(f"unknown check {only!r}; one of {', '.join(names)}")
        checks = [fn for n, fn in zip(names, checks) if n == only]
        names = [only]
    results: list[CheckResult] = []
    for name, fn in zip(names, checks):
        try:
            results.append(fn())
        except InvariantViolation as violation:
            results.append(
                CheckResult(
                    name,
                    False,
                    f"invariant violation: {violation}",
                    artifacts={
                        f"{name}-violation.json": json.dumps(
                            {
                                "invariant": violation.invariant,
                                "detail": violation.detail,
                                "dump": violation.dump,
                            },
                            indent=2,
                            default=str,
                        )
                    },
                )
            )
    if artifacts_dir is not None:
        failed = [r for r in results if not r.passed]
        if failed:
            os.makedirs(artifacts_dir, exist_ok=True)
            for r in failed:
                for fname, contents in r.artifacts.items():
                    with open(os.path.join(artifacts_dir, fname), "w") as fh:
                        fh.write(contents)
            with open(os.path.join(artifacts_dir, "summary.txt"), "w") as fh:
                fh.write("\n".join(str(r) for r in results) + "\n")
    return results
