"""Runtime invariant sanitizer for the engine and the simulated MPI layer.

The :class:`Sanitizer` hangs off ``Engine.check`` and ``MpiWorld.check``
(both ``None`` when checking is off — the disabled cost is one attribute
test per event).  The engine calls :meth:`Sanitizer.on_dispatch` for every
dispatched event; the MPI world calls the ``on_*`` boundary hooks as it
posts, matches, buffers, fails, and synchronizes.  Each hook enforces the
invariants the conservative-PDES / MPI-matching design promises:

* **heap-pop ordering** — dispatched ``(time, seq)`` pairs never go
  backwards (the event queue is a min-heap over exactly that order);
* **per-VP clock monotonicity** — a virtual process clock never decreases
  across control points;
* **non-overtaking delivery** — matching a buffered message never skips an
  earlier (lower-seq) buffered message the receive also accepts;
* **matching-queue consistency** — a receive lives in exactly one of
  ``posted_exact``/``posted_wild``; posted receives and buffered
  unexpected messages are disjoint (a coexisting pair is a missed match);
  per-key buffers stay seq-sorted; completed requests leave the queues;
* **failed-list agreement** — the per-process failed lists of all
  surviving ranks agree with the global (monotone, append-only) failure
  history;
* **sync-point membership** — a completing synchronization point wakes a
  subset of the currently-alive members of its communicator;
* **checkpoint-store namespace** — see :func:`verify_store` and
  :func:`verify_store_cleaned` (the post-cleanup exact-rank-set check).

Violations raise :class:`~repro.util.errors.InvariantViolation` carrying a
structured diagnostic dump (SimLog tail, VP states, heap snapshot) built by
:meth:`Sanitizer.dump`; :func:`write_dump` serializes one to JSON for CI
artifacts.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Any

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.messages import RTS, Msg, Request
from repro.util.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.checkpoint.store import CheckpointStore
    from repro.mpi.world import MpiWorld, RankState, SyncPoint, SyncResult
    from repro.pdes.context import VirtualProcess
    from repro.pdes.engine import Engine


class Sanitizer:
    """Invariant checks wired into one engine/world pair (see module doc)."""

    def __init__(self, engine: "Engine", world: "MpiWorld | None" = None):
        self.engine = engine
        self.world = world
        #: Checks performed (for reporting that checking actually ran).
        self.checks = 0
        # heap-pop ordering state
        self._last_time = -math.inf
        self._last_seq = -1
        # per-VP clock monotonicity state: rank -> last observed clock
        self._vp_clocks: dict[int, float] = {}
        # global (monotone) failure history: rank -> failure time
        self._failed: dict[int, float] = {}

    # ------------------------------------------------------------------
    # violation reporting
    # ------------------------------------------------------------------
    def dump(self) -> dict[str, Any]:
        """Structured diagnostic snapshot of the simulation state."""
        engine = self.engine
        return {
            "now": engine.now,
            "event_count": engine.event_count,
            "checks": self.checks,
            "log_tail": [e.render() for e in list(engine.log)[-20:]],
            "vps": [vp.snapshot() for vp in engine.vps[:256]],
            "heap_size": engine.queue_size(),
            "heap_head": engine.heap_head(20),
            "failed_history": dict(self._failed),
        }

    def _violate(self, invariant: str, detail: str) -> None:
        raise InvariantViolation(invariant, detail, dump=self.dump())

    # ------------------------------------------------------------------
    # engine dispatch boundary
    # ------------------------------------------------------------------
    def on_dispatch(self, time: float, seq: int, gvp: "VirtualProcess | None") -> None:
        """Called before every event executes (``seq=-1``: coalesced)."""
        self.checks += 1
        if time < self._last_time:
            self._violate(
                "heap-pop-ordering",
                f"event at t={time!r} dispatched after t={self._last_time!r}",
            )
        elif time > self._last_time:
            self._last_time = time
            self._last_seq = seq
        elif seq >= 0:
            if seq <= self._last_seq:
                self._violate(
                    "heap-pop-ordering",
                    f"seq {seq} dispatched after seq {self._last_seq} at t={time!r}",
                )
            self._last_seq = seq
        if gvp is not None:
            prev = self._vp_clocks.get(gvp.rank)
            if prev is not None and gvp.clock < prev:
                self._violate(
                    "vp-clock-monotonicity",
                    f"rank {gvp.rank} clock went {prev!r} -> {gvp.clock!r}",
                )
            self._vp_clocks[gvp.rank] = gvp.clock

    def on_run_end(self) -> None:
        """End-of-run sweep: final failure bookkeeping consistency."""
        self.checks += 1
        engine = self.engine
        if self.world is not None:
            # The failure history is accumulated by the world-side
            # on_failure hook; without a world nothing populates it.
            recorded = dict(engine.failures)
            if recorded != self._failed:
                self._violate(
                    "failure-history",
                    f"engine.failures {recorded} != observed history {self._failed}",
                )
            for rank in self._failed:
                self._check_failed_rank_cleared(self.world.states[rank])
            trace = self.world.trace
            if (
                trace is not None
                and trace.from_start
                and trace.orphan_deliveries
            ):
                # A trace attached before launch sees every post, so a
                # delivery with an unknown seq is a sequencing bug the
                # mid-run-attach tolerance would otherwise mask.
                self._violate(
                    "comm-trace-orphans",
                    f"{trace.orphan_deliveries} deliveries with unknown seq "
                    "despite tracing from launch",
                )
        for vp in engine.vps:
            self._check_failed_list(vp, require_complete=False)

    # ------------------------------------------------------------------
    # MPI matching boundaries
    # ------------------------------------------------------------------
    def on_post(self, state: "RankState", req: Request) -> None:
        """A receive was appended to the posted queues."""
        self.checks += 1
        wild = req.src == ANY_SOURCE or req.tag == ANY_TAG
        if wild:
            if req not in state.posted_wild:
                self._violate(
                    "posted-queue-consistency",
                    f"rank {state.rank}: wildcard {req.describe()} not in posted_wild",
                )
        else:
            key = (req.ctx, req.src, req.tag)
            if req not in state.posted_exact.get(key, ()):
                self._violate(
                    "posted-queue-consistency",
                    f"rank {state.rank}: {req.describe()} not under its exact key {key}",
                )
            if req in state.posted_wild:
                self._violate(
                    "posted-queue-consistency",
                    f"rank {state.rank}: {req.describe()} in both posted_exact and posted_wild",
                )
        if req.done:
            self._violate(
                "posted-queue-consistency",
                f"rank {state.rank}: completed request {req.describe()} left in posted queues",
            )
        buffered = self._buffered_match(state, req)
        if buffered is not None:
            self._violate(
                "posted-unexpected-disjoint",
                f"rank {state.rank}: {req.describe()} posted while buffered {buffered!r} matches it",
            )

    def on_match_unexpected(self, state: "RankState", req: Request, msg: Msg) -> None:
        """A fresh receive matched (popped) a buffered message."""
        self.checks += 1
        if not req.matches_msg(msg):
            self._violate(
                "match-correctness",
                f"rank {state.rank}: {req.describe()} matched non-matching {msg!r}",
            )
        overtaken = self._buffered_match(state, req)
        if overtaken is not None and overtaken.seq < msg.seq:
            self._violate(
                "non-overtaking",
                f"rank {state.rank}: {req.describe()} took seq {msg.seq} over buffered seq {overtaken.seq}",
            )

    def on_match_posted(self, state: "RankState", msg: Msg, req: Request) -> None:
        """An arriving message matched (popped) a posted receive."""
        self.checks += 1
        if not req.matches_msg(msg):
            self._violate(
                "match-correctness",
                f"rank {state.rank}: {msg!r} matched non-matching {req.describe()}",
            )
        if req in state.posted_wild or req in state.posted_exact.get(
            (req.ctx, req.src, req.tag), ()
        ):
            self._violate(
                "posted-queue-consistency",
                f"rank {state.rank}: matched {req.describe()} still in posted queues",
            )
        earlier = self._posted_match(state, msg)
        if earlier is not None and (earlier.post_time, earlier.post_seq) < (
            req.post_time,
            req.post_seq,
        ):
            self._violate(
                "match-order",
                f"rank {state.rank}: {msg!r} matched post_seq {req.post_seq} "
                f"over earlier posted post_seq {earlier.post_seq}",
            )

    def on_buffer(self, state: "RankState", msg: Msg) -> None:
        """An arriving message found no posted receive and was buffered."""
        self.checks += 1
        posted = self._posted_match(state, msg)
        if posted is not None:
            self._violate(
                "posted-unexpected-disjoint",
                f"rank {state.rank}: buffered {msg!r} while posted {posted.describe()} matches it",
            )
        msgs = state.unexpected.get((msg.ctx, msg.src, msg.tag), ())
        if msg not in msgs:
            self._violate(
                "unexpected-queue-consistency",
                f"rank {state.rank}: buffered {msg!r} not under its key",
            )
        if any(a.seq >= b.seq for a, b in zip(msgs, msgs[1:])):
            self._violate(
                "non-overtaking",
                f"rank {state.rank}: unexpected queue for {(msg.ctx, msg.src, msg.tag)} "
                f"not seq-sorted: {[m.seq for m in msgs]}",
            )

    def on_wait_complete(self, vp: "VirtualProcess", req: Request) -> None:
        """A wait/test observed its request complete."""
        self.checks += 1
        if not req.done:
            self._violate(
                "request-lifecycle", f"rank {vp.rank}: wait finished on pending {req.describe()}"
            )
        if req.completion_time > vp.clock:
            self._violate(
                "request-lifecycle",
                f"rank {vp.rank}: {req.describe()} completed at {req.completion_time!r} "
                f"but owner clock is {vp.clock!r}",
            )
        if self.world is not None:
            state = self.world.states[vp.rank]
            if req.kind == Request.RECV:
                in_queues = req in state.posted_wild or req in state.posted_exact.get(
                    (req.ctx, req.src, req.tag), ()
                )
            else:
                in_queues = req in state.rdv_sends
            if in_queues:
                self._violate(
                    "posted-queue-consistency",
                    f"rank {vp.rank}: completed {req.describe()} still queued",
                )

    # ------------------------------------------------------------------
    # failure propagation boundary
    # ------------------------------------------------------------------
    def on_failure(self, failed_rank: int, t_fail: float) -> None:
        """The failure of ``failed_rank`` finished propagating."""
        self.checks += 1
        if failed_rank in self._failed:
            self._violate(
                "failure-monotone",
                f"rank {failed_rank} failed twice (first at {self._failed[failed_rank]!r})",
            )
        self._failed[failed_rank] = t_fail
        world = self.world
        if world is None:
            return
        self._check_failed_rank_cleared(world.states[failed_rank])
        for state in world.states:
            vp = state.vp
            if not vp.alive:
                continue
            self._check_failed_list(vp, require_complete=True)
            self.sweep_rank(state)
            for req in state.iter_posted():
                if req.src == failed_rank:
                    self._violate(
                        "failure-release",
                        f"rank {state.rank}: posted {req.describe()} from failed rank survived",
                    )
            for req in state.rdv_sends:
                if req.dst == failed_rank:
                    self._violate(
                        "failure-release",
                        f"rank {state.rank}: rendezvous send to failed rank survived",
                    )
            for key, msgs in state.unexpected.items():
                if key[1] == failed_rank and any(m.protocol == RTS for m in msgs):
                    self._violate(
                        "failure-release",
                        f"rank {state.rank}: RTS from failed rank survived in unexpected queue",
                    )

    # ------------------------------------------------------------------
    # synchronization points
    # ------------------------------------------------------------------
    def on_sync_complete(self, sp: "SyncPoint", result: "SyncResult") -> None:
        """A synchronization point computed its result, before any wake."""
        self.checks += 1
        world = self.world
        for r in result.alive:
            if not sp.comm.contains(r):
                self._violate(
                    "sync-membership",
                    f"sync {sp.key}: completing rank {r} not in {sp.comm.name}",
                )
            if world is not None and not world.states[r].vp.alive:
                self._violate(
                    "sync-membership", f"sync {sp.key}: completing rank {r} is not alive"
                )
        for r in sp.arrived:
            if not sp.comm.contains(r):
                self._violate(
                    "sync-membership", f"sync {sp.key}: arrival from non-member rank {r}"
                )
        arrivals = [sp.arrived[r] for r in result.alive]
        if arrivals and result.time < max(arrivals):
            self._violate(
                "sync-membership",
                f"sync {sp.key}: completes at {result.time!r} before last arrival "
                f"{max(arrivals)!r}",
            )
        if set(result.values) != set(result.alive):
            self._violate(
                "sync-membership",
                f"sync {sp.key}: values for {sorted(result.values)} != alive {list(result.alive)}",
            )

    # ------------------------------------------------------------------
    # sweeps and helpers
    # ------------------------------------------------------------------
    def sweep_rank(self, state: "RankState") -> None:
        """Full matching-queue consistency sweep of one rank."""
        wild_ids = {id(r) for r in state.posted_wild}
        for key, reqs in state.posted_exact.items():
            if not reqs:
                self._violate(
                    "posted-queue-consistency", f"rank {state.rank}: empty exact bucket {key}"
                )
            for req in reqs:
                if req.kind != Request.RECV or req.done:
                    self._violate(
                        "posted-queue-consistency",
                        f"rank {state.rank}: bad exact entry {req!r} under {key}",
                    )
                if (req.ctx, req.src, req.tag) != key:
                    self._violate(
                        "posted-queue-consistency",
                        f"rank {state.rank}: {req.describe()} filed under wrong key {key}",
                    )
                if req.src == ANY_SOURCE or req.tag == ANY_TAG:
                    self._violate(
                        "posted-queue-consistency",
                        f"rank {state.rank}: wildcard {req.describe()} in posted_exact",
                    )
                if id(req) in wild_ids:
                    self._violate(
                        "posted-queue-consistency",
                        f"rank {state.rank}: {req.describe()} in both posted queues",
                    )
            if any(
                (a.post_time, a.post_seq) >= (b.post_time, b.post_seq)
                for a, b in zip(reqs, reqs[1:])
            ):
                self._violate(
                    "posted-queue-consistency",
                    f"rank {state.rank}: exact bucket {key} not in post order",
                )
        for req in state.posted_wild:
            if req.kind != Request.RECV or req.done:
                self._violate(
                    "posted-queue-consistency",
                    f"rank {state.rank}: bad wildcard entry {req!r}",
                )
            if req.src != ANY_SOURCE and req.tag != ANY_TAG:
                self._violate(
                    "posted-queue-consistency",
                    f"rank {state.rank}: non-wildcard {req.describe()} in posted_wild",
                )
        for key, msgs in state.unexpected.items():
            if not msgs:
                self._violate(
                    "unexpected-queue-consistency",
                    f"rank {state.rank}: empty unexpected bucket {key}",
                )
            for msg in msgs:
                if (msg.ctx, msg.src, msg.tag) != key:
                    self._violate(
                        "unexpected-queue-consistency",
                        f"rank {state.rank}: {msg!r} filed under wrong key {key}",
                    )
            if any(a.seq >= b.seq for a, b in zip(msgs, msgs[1:])):
                self._violate(
                    "non-overtaking",
                    f"rank {state.rank}: unexpected bucket {key} not seq-sorted",
                )
            head = msgs[0]
            posted = self._posted_match(state, head)
            if posted is not None:
                self._violate(
                    "posted-unexpected-disjoint",
                    f"rank {state.rank}: buffered {head!r} coexists with matching "
                    f"posted {posted.describe()}",
                )
        for req in state.rdv_sends:
            if req.kind != Request.SEND or req.done or req.src != state.rank:
                self._violate(
                    "posted-queue-consistency",
                    f"rank {state.rank}: bad rendezvous-send entry {req!r}",
                )

    def _check_failed_list(self, vp: "VirtualProcess", require_complete: bool) -> None:
        """``vp.failed_peers`` must agree with the global failure history."""
        for rank, t in vp.failed_peers.items():
            known = self._failed.get(rank)
            if known is None or known != t:
                self._violate(
                    "failed-list-agreement",
                    f"rank {vp.rank} records failure of {rank} at {t!r}, history says {known!r}",
                )
        if require_complete and len(vp.failed_peers) != len(self._failed):
            missing = sorted(set(self._failed) - set(vp.failed_peers))
            self._violate(
                "failed-list-agreement",
                f"alive rank {vp.rank} missing failure notifications for ranks {missing}",
            )

    def _check_failed_rank_cleared(self, state: "RankState") -> None:
        if (
            state.posted_exact
            or state.posted_wild
            or state.unexpected
            or state.rdv_sends
        ):
            self._violate(
                "failure-release",
                f"failed rank {state.rank} still holds matching-queue state",
            )

    def _buffered_match(self, state: "RankState", req: Request) -> Msg | None:
        """Lowest-seq buffered message ``req`` accepts, without popping it."""
        if req.src != ANY_SOURCE and req.tag != ANY_TAG:
            msgs = state.unexpected.get((req.ctx, req.src, req.tag))
            return msgs[0] if msgs else None
        best: Msg | None = None
        for msgs in state.unexpected.values():
            head = msgs[0]
            if req.matches_msg(head) and (best is None or head.seq < best.seq):
                best = head
        return best

    def _posted_match(self, state: "RankState", msg: Msg) -> Request | None:
        """Earliest-posted receive accepting ``msg``, without popping it."""
        best: Request | None = None
        exact = state.posted_exact.get((msg.ctx, msg.src, msg.tag))
        if exact:
            best = exact[0]
        for req in state.posted_wild:
            if req.matches_msg(msg) and (
                best is None
                or (req.post_time, req.post_seq) < (best.post_time, best.post_seq)
            ):
                best = req
        return best


# ----------------------------------------------------------------------
# checkpoint-store invariants
# ----------------------------------------------------------------------
def _store_dump(store: "CheckpointStore") -> dict[str, Any]:
    return {
        "checkpoint_ids": store.checkpoint_ids(),
        "ranks_present": {cid: store.ranks_present(cid) for cid in store.checkpoint_ids()},
        "writes": store.writes,
        "deletes": store.deletes,
        "files": len(store),
    }


def verify_store(store: "CheckpointStore") -> None:
    """Namespace consistency of the simulated PFS checkpoint store."""
    # Imported here, not at module top: repro.core imports this package
    # (RestartDriver audits its store), so a top-level import would cycle.
    from repro.core.checkpoint.store import FileState

    for (cid, rank), f in store._files.items():
        if f.ckpt_id != cid or f.rank != rank:
            raise InvariantViolation(
                "store-namespace",
                f"file keyed ({cid}, {rank}) describes ({f.ckpt_id}, {f.rank})",
                dump=_store_dump(store),
            )
        if f.nbytes < 0:
            raise InvariantViolation(
                "store-namespace",
                f"file ({cid}, {rank}) has negative size {f.nbytes}",
                dump=_store_dump(store),
            )
        if f.state not in (FileState.PARTIAL, FileState.COMPLETE):
            raise InvariantViolation(
                "store-namespace",
                f"file ({cid}, {rank}) in unknown state {f.state!r}",
                dump=_store_dump(store),
            )
    if len(store) > store.writes:
        raise InvariantViolation(
            "store-namespace",
            f"{len(store)} files exist but only {store.writes} writes were recorded",
            dump=_store_dump(store),
        )


def verify_store_cleaned(store: "CheckpointStore", nranks: int) -> None:
    """Post-cleanup check: every surviving set is exactly ranks 0..nranks-1,
    all COMPLETE.

    Deliberately re-derives validity from the raw namespace instead of
    calling :meth:`CheckpointStore.is_valid`, so a regression to subset
    semantics there (treating a wider job's leftover set as valid) is
    caught rather than masked.
    """
    from repro.core.checkpoint.store import FileState

    verify_store(store)
    expected = list(range(nranks))
    for cid in store.checkpoint_ids():
        present = store.ranks_present(cid)
        if present != expected:
            raise InvariantViolation(
                "store-cleanup-exact-set",
                f"checkpoint {cid} survived cleanup with ranks {present}, "
                f"expected exactly {expected}",
                dump=_store_dump(store),
            )
        for rank in present:
            if store.state_of(cid, rank) is not FileState.COMPLETE:
                raise InvariantViolation(
                    "store-cleanup-exact-set",
                    f"checkpoint {cid} survived cleanup with incomplete file for rank {rank}",
                    dump=_store_dump(store),
                )


def write_dump(path: str, violation: InvariantViolation) -> None:
    """Serialize a violation (message + structured dump) to JSON."""
    payload = {
        "invariant": violation.invariant,
        "detail": violation.detail,
        "dump": violation.dump,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
