"""Compact event-trace recording and replay diffing.

An :class:`EventTrace` records every event the engine dispatches as one
tuple ``(time, seq, rank, kind, origin)``:

* ``time`` — virtual time of the dispatch (exact; serialized as
  ``float.hex`` so a saved trace round-trips bit-identically);
* ``seq`` — the engine's global event sequence number (``-1`` for
  coalesced advances, which never visit the heap);
* ``rank`` — the guarded VP's rank, or the destination rank for message
  deliveries, or ``-1`` for rankless events (e.g. sync-point checks);
* ``kind`` — the dispatched callback's name (``arrive``, ``do_wake``,
  ``resume_advance``, ...);
* ``origin`` — the source rank for message deliveries, else ``-1``.

Because the simulator is deterministic, re-executing a run with the same
configuration must reproduce the exact trace; :meth:`EventTrace.diff`
reports the first divergence when it does not.  Traces also provide a
:meth:`digest` so campaigns can assert bit-identity without holding two
full traces in memory.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.pdes.context import VirtualProcess

#: One recorded dispatch.
TraceEntry = tuple[float, int, int, str, int]

_HEADER = "# xsim-event-trace v1"


@dataclass(frozen=True)
class TraceDivergence:
    """First point where two traces disagree."""

    index: int
    expected: TraceEntry | None
    """Entry of the reference trace (None: the reference is shorter)."""
    actual: TraceEntry | None
    """Entry of the compared trace (None: the compared trace is shorter)."""
    context: tuple[TraceEntry, ...]
    """Up to the last 5 entries both traces agree on, for orientation."""

    def report(self) -> str:
        """Human-readable divergence description."""
        lines = [f"traces diverge at event #{self.index}:"]
        lines.append(f"  expected: {_render(self.expected)}")
        lines.append(f"  actual:   {_render(self.actual)}")
        if self.context:
            lines.append("  last agreeing events:")
            for entry in self.context:
                lines.append(f"    {_render(entry)}")
        return "\n".join(lines)


def _render(entry: TraceEntry | None) -> str:
    if entry is None:
        return "<end of trace>"
    time, seq, rank, kind, origin = entry
    frm = "" if origin < 0 else f" from {origin}"
    return f"t={time:.9f} seq={seq} rank={rank} {kind}{frm}"


class EventTrace:
    """Recorder of every dispatched engine event (see module docstring)."""

    __slots__ = ("entries",)

    def __init__(self, entries: list[TraceEntry] | None = None):
        self.entries: list[TraceEntry] = entries if entries is not None else []

    # ------------------------------------------------------------------
    # recording (called from the engine's dispatch loop)
    # ------------------------------------------------------------------
    def record_dispatch(
        self,
        time: float,
        seq: int,
        gvp: "VirtualProcess | None",
        fn: Callable[..., None],
        args: tuple,
    ) -> None:
        """Record one heap dispatch, deriving rank/origin from the event."""
        rank = origin = -1
        if gvp is not None:
            rank = gvp.rank
        elif args:
            a0: Any = args[0]
            dst = getattr(a0, "dst", None)
            if dst is not None:  # message delivery
                rank, origin = dst, a0.src
            elif isinstance(a0, int):  # e.g. an injected per-rank delay
                rank = a0
        self.entries.append((time, seq, rank, fn.__name__.lstrip("_"), origin))

    def record_coalesced(self, time: float, rank: int) -> None:
        """Record an inline (coalesced) advance resume; no heap seq exists."""
        self.entries.append((time, -1, rank, "coalesced_advance", -1))

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def diff(self, other: "EventTrace") -> TraceDivergence | None:
        """First divergence treating ``self`` as the reference, or None."""
        mine, theirs = self.entries, other.entries
        n = min(len(mine), len(theirs))
        for i in range(n):
            if mine[i] != theirs[i]:
                return TraceDivergence(
                    index=i,
                    expected=mine[i],
                    actual=theirs[i],
                    context=tuple(mine[max(0, i - 5):i]),
                )
        if len(mine) != len(theirs):
            return TraceDivergence(
                index=n,
                expected=mine[n] if n < len(mine) else None,
                actual=theirs[n] if n < len(theirs) else None,
                context=tuple(mine[max(0, n - 5):n]),
            )
        return None

    def digest(self) -> str:
        """SHA-256 over the exact serialized form (bit-identity check)."""
        h = hashlib.sha256()
        for entry in self.entries:
            h.update(_line(entry).encode("ascii"))
        return h.hexdigest()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the trace to ``path`` (text; floats as ``float.hex``)."""
        with open(path, "w", encoding="ascii") as fh:
            fh.write(f"{_HEADER} {len(self.entries)}\n")
            for entry in self.entries:
                fh.write(_line(entry))

    @classmethod
    def load(cls, path: str) -> "EventTrace":
        """Read a trace written by :meth:`save`."""
        entries: list[TraceEntry] = []
        with open(path, "r", encoding="ascii") as fh:
            header = fh.readline()
            if not header.startswith(_HEADER):
                raise ValueError(f"{path} is not an xsim event trace")
            for line in fh:
                t, seq, rank, kind, origin = line.split()
                entries.append(
                    (float.fromhex(t), int(seq), int(rank), kind, int(origin))
                )
        return cls(entries)

    def __len__(self) -> int:
        return len(self.entries)


def _line(entry: TraceEntry) -> str:
    time, seq, rank, kind, origin = entry
    return f"{time.hex()} {seq} {rank} {kind} {origin}\n"
