"""Compact event-trace recording and replay diffing.

An :class:`EventTrace` records every event the engine dispatches as one
tuple ``(time, seq, rank, kind, origin)``:

* ``time`` — virtual time of the dispatch (exact; serialized as
  ``float.hex`` so a saved trace round-trips bit-identically);
* ``seq`` — the engine's global event sequence number (``-1`` for
  coalesced advances, which never visit the heap);
* ``rank`` — the guarded VP's rank, or the destination rank for message
  deliveries, or ``-1`` for rankless events (e.g. sync-point checks);
* ``kind`` — the dispatched callback's name (``arrive``, ``do_wake``,
  ``resume_advance``, ...);
* ``origin`` — the source rank for message deliveries, else ``-1``.

Because the simulator is deterministic, re-executing a run with the same
configuration must reproduce the exact trace; :meth:`EventTrace.diff`
reports the first divergence when it does not.  Traces also provide a
:meth:`digest` so campaigns can assert bit-identity without holding two
full traces in memory.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.pdes.context import VirtualProcess

#: One recorded dispatch.
TraceEntry = tuple[float, int, int, str, int]

_HEADER = "# xsim-event-trace v1"


@dataclass(frozen=True)
class TraceDivergence:
    """First point where two traces disagree."""

    index: int
    expected: TraceEntry | None
    """Entry of the reference trace (None: the reference is shorter)."""
    actual: TraceEntry | None
    """Entry of the compared trace (None: the compared trace is shorter)."""
    context: tuple[TraceEntry, ...]
    """Up to the last 5 entries both traces agree on, for orientation."""

    def report(self) -> str:
        """Human-readable divergence description."""
        lines = [f"traces diverge at event #{self.index}:"]
        lines.append(f"  expected: {_render(self.expected)}")
        lines.append(f"  actual:   {_render(self.actual)}")
        if self.context:
            lines.append("  last agreeing events:")
            for entry in self.context:
                lines.append(f"    {_render(entry)}")
        return "\n".join(lines)


def _render(entry: TraceEntry | None) -> str:
    if entry is None:
        return "<end of trace>"
    time, seq, rank, kind, origin = entry
    frm = "" if origin < 0 else f" from {origin}"
    return f"t={time:.9f} seq={seq} rank={rank} {kind}{frm}"


class EventTrace:
    """Recorder of every dispatched engine event (see module docstring)."""

    __slots__ = ("entries",)

    def __init__(self, entries: list[TraceEntry] | None = None):
        self.entries: list[TraceEntry] = entries if entries is not None else []

    # ------------------------------------------------------------------
    # recording (called from the engine's dispatch loop)
    # ------------------------------------------------------------------
    def record_dispatch(
        self,
        time: float,
        seq: int,
        gvp: "VirtualProcess | None",
        fn: Callable[..., None],
        args: tuple,
    ) -> None:
        """Record one heap dispatch, deriving rank/origin from the event."""
        rank = origin = -1
        if gvp is not None:
            rank = gvp.rank
        elif args:
            a0: Any = args[0]
            dst = getattr(a0, "dst", None)
            if dst is not None:  # message delivery
                rank, origin = dst, a0.src
            elif isinstance(a0, int):  # e.g. an injected per-rank delay
                rank = a0
        self.entries.append((time, seq, rank, fn.__name__.lstrip("_"), origin))

    def record_coalesced(self, time: float, rank: int) -> None:
        """Record an inline (coalesced) advance resume; no heap seq exists."""
        self.entries.append((time, -1, rank, "coalesced_advance", -1))

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def diff(self, other: "EventTrace") -> TraceDivergence | None:
        """First divergence treating ``self`` as the reference, or None."""
        mine, theirs = self.entries, other.entries
        n = min(len(mine), len(theirs))
        for i in range(n):
            if mine[i] != theirs[i]:
                return TraceDivergence(
                    index=i,
                    expected=mine[i],
                    actual=theirs[i],
                    context=tuple(mine[max(0, i - 5):i]),
                )
        if len(mine) != len(theirs):
            return TraceDivergence(
                index=n,
                expected=mine[n] if n < len(mine) else None,
                actual=theirs[n] if n < len(theirs) else None,
                context=tuple(mine[max(0, n - 5):n]),
            )
        return None

    def digest(self) -> str:
        """SHA-256 over the exact serialized form (bit-identity check)."""
        h = hashlib.sha256()
        for entry in self.entries:
            h.update(_line(entry).encode("ascii"))
        return h.hexdigest()

    # ------------------------------------------------------------------
    # per-rank projection (serial vs sharded parity oracle)
    # ------------------------------------------------------------------
    def rank_projection(self) -> dict[int, list[tuple[float, str, int]]]:
        """Canonical per-rank event sequence, for serial-vs-sharded diffs.

        A sharded run (:mod:`repro.pdes.sharded`) dispatches the same
        per-rank events at the same virtual times as the serial engine, but
        the *global* interleaving differs (shards run concurrently), the
        global ``seq`` numbers differ (each shard counts its own), and an
        advance that the serial run coalesced inline may cross a window
        barrier and go through the heap (or vice versa).  The projection
        removes exactly those representational differences and nothing
        else:

        * events are grouped by rank, keeping ``(time, kind, origin)``;
        * ``coalesced_advance`` is renamed ``resume_advance`` (the same
          logical control point, heap round-trip or not);
        * within each run of *consecutive equal-time* entries of one rank,
          entries are sorted by ``(kind, origin)`` — same-time dispatch
          order on one rank follows global sequence numbers, which the
          shards do not share.

        Per-rank times are monotone non-decreasing, so consecutive
        grouping is total.
        """
        by_rank: dict[int, list[tuple[float, str, int]]] = {}
        for time, _seq, rank, kind, origin in self.entries:
            if kind == "coalesced_advance":
                kind = "resume_advance"
            by_rank.setdefault(rank, []).append((time, kind, origin))
        for events in by_rank.values():
            i, n = 0, len(events)
            while i < n:
                j = i + 1
                while j < n and events[j][0] == events[i][0]:
                    j += 1
                if j - i > 1:
                    events[i:j] = sorted(events[i:j], key=lambda e: (e[1], e[2]))
                i = j
        return by_rank

    def diff_ranks(self, other: "EventTrace") -> str | None:
        """First per-rank divergence of the canonical projections, or None.

        Treats ``self`` as the reference (typically the serial run) and
        reports the earliest-diverging rank as a human-readable string.
        """
        mine, theirs = self.rank_projection(), other.rank_projection()
        for rank in sorted(set(mine) | set(theirs)):
            a = mine.get(rank, [])
            b = theirs.get(rank, [])
            n = min(len(a), len(b))
            for i in range(n):
                if a[i] != b[i]:
                    return (
                        f"rank {rank} diverges at event #{i}: "
                        f"expected {_render_projected(a[i])}, "
                        f"actual {_render_projected(b[i])}"
                    )
            if len(a) != len(b):
                extra = a[n] if n < len(a) else b[n]
                side = "reference" if n < len(a) else "compared"
                return (
                    f"rank {rank}: {side} trace has {max(len(a), len(b)) - n} "
                    f"extra event(s) from #{n} ({_render_projected(extra)})"
                )
        return None

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the trace to ``path`` (text; floats as ``float.hex``)."""
        with open(path, "w", encoding="ascii") as fh:
            fh.write(f"{_HEADER} {len(self.entries)}\n")
            for entry in self.entries:
                fh.write(_line(entry))

    @classmethod
    def load(cls, path: str) -> "EventTrace":
        """Read a trace written by :meth:`save`."""
        entries: list[TraceEntry] = []
        with open(path, "r", encoding="ascii") as fh:
            header = fh.readline()
            if not header.startswith(_HEADER):
                raise ValueError(f"{path} is not an xsim event trace")
            for line in fh:
                t, seq, rank, kind, origin = line.split()
                entries.append(
                    (float.fromhex(t), int(seq), int(rank), kind, int(origin))
                )
        return cls(entries)

    def __len__(self) -> int:
        return len(self.entries)


def _render_projected(entry: tuple[float, str, int]) -> str:
    time, kind, origin = entry
    frm = "" if origin < 0 else f" from {origin}"
    return f"t={time:.9f} {kind}{frm}"


def _line(entry: TraceEntry) -> str:
    time, seq, rank, kind, origin = entry
    return f"{time.hex()} {seq} {rank} {kind} {origin}\n"
