"""``xsim-run``: command-line front end of the toolkit.

Mirrors how the original tool is driven: pick an application and a
simulated machine, optionally pass a failure schedule as rank/time pairs on
the command line (``--xsim-failures "3@100s,17@2500s"``) or via the
``XSIM_FAILURES`` environment variable, run, and read the per-process
timing statistics and the informational failure/abort messages.

Subcommands::

    xsim-run app     --app heat3d --ranks 64 --interval 250 [--mttf 3000]
    xsim-run app     --scenario run.toml  # declarative spec (repro.run)
    xsim-run sweep   --scenario run.toml --set interval=500,250 -j 4
    xsim-run table1  # Finject bit-flip campaign (paper Table I)
    xsim-run table2  --ranks 512  # checkpoint-interval x MTTF sweep
    xsim-run arch    --ranks 32768  # architecture self-description (Fig. 1)
    xsim-run bench   # PDES throughput + sharded speedup -> BENCH_pdes.json
    xsim-run simcheck  # differential determinism harness (see repro.check)

Every ``app``/``arch``/``sweep`` invocation resolves one
:class:`~repro.run.scenario.Scenario` through the layered precedence
chain — library defaults < ``--scenario`` TOML file < ``XSIM_*``
environment < explicit flags — and executes it on its registered backend
(``serial``, ``sharded-inline``, ``sharded-fork``, ``sharded-shm``; pick
with ``--shards`` / ``--shard-transport`` or the scenario's ``execution``
table).  Results and traces are bit-identical across backends.

Debugging aids on ``app``: ``--check`` enables the runtime invariant
sanitizer (equivalent to ``XSIM_CHECK=1``); ``--record-trace FILE`` saves
the full event-dispatch trace; ``--replay FILE`` re-runs and diffs against
a saved trace, reporting the first divergence; ``--digest`` prints the
canonical result fingerprint for cross-backend comparison.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.check.trace import EventTrace
from repro.core.faults.finject import FinjectCampaign
from repro.core.harness.experiment import Table2Config, run_table2
from repro.core.harness.parallel import default_jobs
from repro.core.harness.report import format_table, render_table2
from repro.core.simulator import XSim
from repro.resilience import strategy_names
from repro.run.backends import capped_shards, run_scenario  # noqa: F401 - capped_shards re-exported
from repro.run.scenario import APP_NAMES, Scenario, load_scenario_file, parse_dims
from repro.run.sweep import parse_set, run_sweep
from repro.util.errors import ConfigurationError


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    g = p.add_mutually_exclusive_group()
    g.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=None,
        help="consult/write the content-addressed result cache (same as "
        "XSIM_CACHE=1); previously computed scenarios are served by lookup, "
        "bit-identical to recomputation",
    )
    g.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="disable the result cache for this invocation even when "
        "XSIM_CACHE is set",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache directory (default: XSIM_CACHE_DIR or ~/.cache/xsim); "
        "safe to share between parallel workers and concurrent invocations",
    )


def _cache_from_args(args: argparse.Namespace):
    """The ResultCache this invocation uses, or None (caching off):
    ``--cache``/``--no-cache`` override the ``XSIM_CACHE`` environment
    policy; ``--cache-dir`` overrides ``XSIM_CACHE_DIR``."""
    from repro import cache as cache_mod

    flag = getattr(args, "cache", None)
    enabled = cache_mod.cache_enabled() if flag is None else flag
    if not enabled:
        return None
    return cache_mod.open_cache(getattr(args, "cache_dir", None))


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=default_jobs(),
        help="worker processes for independent runs (default: XSIM_JOBS or 1); "
        "results are identical to a serial run",
    )


def _add_shards_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the simulated ranks across N conservative-parallel "
        "engine shards (default: XSIM_SHARDS or 1); the event trace is "
        "bit-identical to a serial run",
    )
    p.add_argument(
        "--shard-transport",
        choices=["fork", "inline", "shm"],
        default=None,
        help="shard worker transport (default: XSIM_SHARD_TRANSPORT or fork): "
        "fork (one process per shard, pickled pipes), shm (forked workers "
        "with shared-memory envelope rings — lowest overhead), or inline "
        "(all shards in-process — same schedule, for debugging and "
        "single-core hosts); results are bit-identical across all three",
    )
    p.add_argument(
        "--engine",
        choices=["heap", "flat"],
        default=None,
        help="event-core selection (default: XSIM_ENGINE or heap): heap is "
        "the tuple binary heap, flat the slab-pool flat core; results and "
        "traces are bit-identical",
    )


def _add_system_args(p: argparse.ArgumentParser) -> None:
    # Defaults are None sentinels: an unset flag leaves the field to the
    # lower precedence layers (scenario file, environment, library
    # defaults — see repro.run.scenario).  The help text states the
    # library default.
    p.add_argument("--ranks", type=int, default=None,
                   help="simulated MPI rank count (default 64)")
    p.add_argument("--topology", default=None,
                   choices=["torus", "mesh", "fattree", "star", "crossbar"],
                   help="interconnect topology (default torus)")
    p.add_argument("--dims", default=None, metavar="DxDxD",
                   help="explicit topology grid, e.g. 8x8x4 for a torus/mesh "
                   "or 16x3 (arity x levels) for a fattree; must be "
                   "consistent with --ranks/--topology (default: derived "
                   "near-cubic dims)")
    p.add_argument("--latency", default=None, help="link latency (default 1us)")
    p.add_argument("--bandwidth", default=None, help="link bandwidth (default 32GB/s)")
    p.add_argument("--eager-threshold", default=None,
                   help="eager/rendezvous threshold (default 256kB)")
    p.add_argument("--detection-timeout", default=None,
                   help="failure detection timeout (default 10s)")
    p.add_argument("--slowdown", type=float, default=None,
                   help="simulated node slowdown (default 1000)")
    p.add_argument("--collectives", default=None,
                   choices=["linear", "tree", "analytic"],
                   help="collective algorithm family (default linear)")
    p.add_argument("--seed", type=int, default=None,
                   help="deterministic experiment seed (default 0)")


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--app", default=None, choices=list(APP_NAMES),
                   help="simulated application (default heat3d)")
    p.add_argument("--iterations", type=int, default=None,
                   help="application iterations (default 1000)")
    p.add_argument("--interval", type=int, default=None,
                   help="checkpoint interval (default 1000)")
    p.add_argument("--strategy", default=None, choices=list(strategy_names()),
                   help="resilience strategy (default ckpt; also: "
                   "XSIM_STRATEGY env var); parameters come from the "
                   "scenario file's [resilience] strategy table")
    p.add_argument("--mttf", type=float, default=None,
                   help="system MTTF for random injection (s)")
    p.add_argument(
        "--xsim-failures",
        default=None,
        help='failure schedule as "rank@time,rank@time" (also: XSIM_FAILURES env var)',
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="enable the runtime invariant sanitizer (same as XSIM_CHECK=1)",
    )
    p.add_argument(
        "--scenario",
        metavar="FILE",
        default=None,
        help="load a scenario TOML file; explicit flags and XSIM_* variables "
        "override its values (defaults < file < env < flags)",
    )


def _scenario_overrides(args: argparse.Namespace) -> dict:
    """The flag layer of the precedence chain: every scenario-mapped
    option the user actually passed (``None`` = not given)."""
    ov = dict(
        ranks=getattr(args, "ranks", None),
        topology=getattr(args, "topology", None),
        dims=parse_dims(args.dims) if getattr(args, "dims", None) else None,
        latency=getattr(args, "latency", None),
        bandwidth=getattr(args, "bandwidth", None),
        eager_threshold=getattr(args, "eager_threshold", None),
        detection_timeout=getattr(args, "detection_timeout", None),
        slowdown=getattr(args, "slowdown", None),
        collectives=getattr(args, "collectives", None),
        seed=getattr(args, "seed", None),
        shards=getattr(args, "shards", None),
        shard_transport=getattr(args, "shard_transport", None),
        engine=getattr(args, "engine", None),
        app=getattr(args, "app", None),
        iterations=getattr(args, "iterations", None),
        interval=getattr(args, "interval", None),
        mttf=getattr(args, "mttf", None),
        strategy=getattr(args, "strategy", None),
        failures=getattr(args, "xsim_failures", None),
        # store_true flags: only an explicitly passed flag overrides.
        check=True if getattr(args, "check", False) else None,
        trace_detail=True if getattr(args, "trace_detail", False) else None,
        trace_out=getattr(args, "trace_out", None) or None,
    )
    return ov


def _resolve_scenario(args: argparse.Namespace) -> tuple[Scenario, dict]:
    """Resolve the invocation's scenario (and ``[sweep]`` grid, if any)
    through the full precedence chain."""
    overrides = _scenario_overrides(args)
    file = getattr(args, "scenario", None)
    if file:
        return load_scenario_file(file, **overrides)
    return Scenario.resolve(**overrides), {}


def _cmd_app(args: argparse.Namespace) -> int:
    tracing = bool(args.record_trace or args.replay)
    try:
        scenario, _ = _resolve_scenario(args)
        if tracing:
            scenario = scenario.with_(record_events=True)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if tracing and scenario.mttf is not None:
        print(
            "--record-trace/--replay cover exactly one engine run; "
            "combine them with --xsim-failures, not --mttf",
            file=sys.stderr,
        )
        return 2

    cache = _cache_from_args(args)
    outcome = run_scenario(
        scenario,
        log_stream=sys.stdout,
        force_single=tracing,
        cache=cache if cache is not None else False,
    )
    if outcome.mode == "restart":
        run = outcome.run
        print(run.segments[-1].result.timing_report())
        print(
            f"E2={run.e2:,.1f}s failures={run.f} restarts={run.restarts} "
            f"MTTF_a={'-' if run.mttf_a is None else f'{run.mttf_a:,.1f}s'}"
        )
    else:
        result = outcome.result
        print(result.timing_report())
        print(f"E1={result.exit_time:,.1f}s completed={result.completed}")
        if args.record_trace:
            outcome.sim.event_trace.save(args.record_trace)
            print(f"recorded {len(outcome.sim.event_trace)} events to {args.record_trace}")
        if args.replay:
            reference = EventTrace.load(args.replay)
            divergence = reference.diff(outcome.sim.event_trace)
            if divergence is not None:
                print(divergence.report())
                return 1
            print(f"replay matches {args.replay}: {len(reference)} events, 0 divergences")
    if args.digest:
        print(f"result digest: {outcome.digest()}")
    if outcome.observer is not None and scenario.trace_out:
        from repro.obs import write_export

        count = write_export(
            outcome.observer, scenario.trace_out, include_host=args.trace_host
        )
        print(f"exported {count} events to {scenario.trace_out}")
    if cache is not None:
        if outcome.metadata.get("cache_hit"):
            saved = float(outcome.metadata.get("cache_wall_s") or 0.0)
            print(
                f"cache: hit {str(outcome.metadata.get('cache_key'))[:16]} "
                f"(~{saved:.2f}s of compute served by lookup)"
            )
        elif tracing:
            print("cache: bypassed (event-trace recording is not cacheable)")
        else:
            print("cache: miss (stored for the next identical run)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        base, grid = _resolve_scenario(args)
        if args.jobs is not None:
            base = base.with_(jobs=args.jobs)
        for axis in args.set or []:
            name, values = parse_set(axis)
            grid[name] = values
        if not grid:
            print(
                "error: nothing to sweep; pass --set field=v1,v2 or a "
                "[sweep] table in the scenario file",
                file=sys.stderr,
            )
            return 2
        cache = _cache_from_args(args)
        pairs = run_sweep(base, grid, cache=cache if cache is not None else False)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    axes = list(grid)
    cache_on = cache is not None
    header = axes + ["mode", "completed", "time", "failures", "restarts", "digest"]
    if cache_on:
        # Last column so tooling that diffs cold-vs-warm tables can strip
        # it (everything to its left is byte-stable across reruns).
        header.append("source")
    rows = []
    for scenario, summary in pairs:
        time_s = summary.get("e2", summary["exit_time"])
        row = (
            tuple(str(getattr(scenario, a)) for a in axes)
            + (
                summary["mode"],
                str(summary["completed"]),
                f"{time_s:,.1f}s",
                str(summary["failures"]),
                str(summary.get("restarts", 0)),
                summary["result_digest"][:12],
            )
        )
        if cache_on:
            row += ("cached" if summary.get("cached") else "computed",)
        rows.append(row)
    print(f"{len(pairs)} scenarios ({' x '.join(axes)}) on backend "
          f"{base.backend_name()}:")
    print(format_table(header, rows))
    if "strategy" in axes:
        from repro.resilience.study import render_strategy_study

        print()
        print("strategy head-to-head (E1 = fault-free, overhead vs none):")
        print(
            render_strategy_study(
                pairs,
                axes=tuple(axes),
                jobs=base.jobs if args.jobs is None else args.jobs,
                cache=cache if cache is not None else False,
            )
        )
    if cache_on:
        hits = sum(1 for _, s in pairs if s.get("cached"))
        saved = sum(float(s.get("saved_s") or 0.0) for _, s in pairs)
        print(
            f"cache: {hits}/{len(pairs)} cells served from cache "
            f"({hits / len(pairs):.0%} hit rate), ~{saved:.2f}s of compute saved"
        )
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.explore import (
        ExploreSpec,
        load_explore_file,
        read_explore_environment,
        render_scorecard,
        run_explore,
        scorecard_json,
    )

    explore_flags = dict(
        ci_width=args.ci_width,
        batch=args.batch,
        max_cells=args.max_cells,
        seed=args.explore_seed,
    )
    try:
        if args.scenario:
            spec = load_explore_file(
                args.scenario,
                scenario_overrides=_scenario_overrides(args),
                **explore_flags,
            )
        else:
            layers = read_explore_environment()
            layers.update({k: v for k, v in explore_flags.items() if v is not None})
            spec = ExploreSpec(
                scenario=Scenario.resolve(**_scenario_overrides(args)), **layers
            )
        cache = _cache_from_args(args)
        observer = None
        if spec.scenario.trace_out:
            from repro.obs import Observer

            observer = Observer()
        result = run_explore(
            spec,
            cache=cache if cache is not None else False,
            jobs=args.jobs,
            observer=observer,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_scorecard(result), end="")
    if args.out:
        payload = scorecard_json(result)
        with open(args.out, "w") as fh:
            fh.write(payload)
        print(f"wrote scorecard to {args.out} ({len(payload)} bytes)")
    if observer is not None:
        from repro.obs import write_export

        count = write_export(observer, spec.scenario.trace_out, include_host=True)
        print(f"exported {count} events to {spec.scenario.trace_out}")
    if cache is not None:
        # + one fault-free baseline cell per campaign
        total = result.spent + getattr(result, "baselines", 1)
        print(
            f"cache: {result.cache_hits}/{total} cells served from cache "
            f"({result.cache_hits / total:.0%} hit rate), "
            f"~{result.cache_saved_s:.2f}s of compute saved"
        )
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs import TimelineReport, load_events

    events = load_events(args.trace)
    report = TimelineReport(events)
    print(report.render(max_rows=args.rows), end="")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    independent = args.independent_streams or args.jobs > 1
    if independent and not args.independent_streams:
        print(
            f"note: -j {args.jobs} implies independent per-victim RNG streams; "
            "statistics differ from the calibrated single-stream draw"
        )
    campaign = FinjectCampaign(
        victims=args.victims,
        max_injections=args.max_injections,
        seed=args.seed,
        independent_streams=independent,
        jobs=args.jobs,
    )
    result = campaign.run()
    rows = [(f, v, d) for f, v, d in result.table_rows()]
    print(format_table(["Field", "Value", "Description"], rows))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    cfg = Table2Config(nranks=args.ranks, seed=args.seed, jobs=args.jobs)
    cells = run_table2(cfg)
    print(f"Table II reproduction at {args.ranks} simulated ranks "
          f"(paper columns measured at 32,768):")
    print(render_table2(cells))
    return 0


def _cmd_arch(args: argparse.Namespace) -> int:
    try:
        scenario, _ = _resolve_scenario(args)
        sim = XSim.from_scenario(scenario)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(sim.render_architecture())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.core.harness import bench

    from pathlib import Path

    out = Path(args.out) if args.out else bench.BENCH_PATH
    update: dict = {}
    if not args.skip_cores:
        print("heap vs flat event core at 512 ranks (paired, interleaved) ...")
        cores = bench.measure_cores(nranks=512)
        update["cores"] = cores
        for core in ("heap", "flat"):
            r = cores[core]
            print(f"  {core}: {cores['events']:>9,} events in {r['host_s']:.3f}s "
                  f"({r['events_per_sec']:,.0f} ev/s)")
        fp = cores["flat"]["profile"]
        print(f"  flat/heap ratio {cores['flat_vs_heap']:.3f}x; flat pool peak "
              f"{fp['pool_peak']:,} slots, {fp['slab_grows']} slab grows, "
              f"free-list reuse {fp['free_reuse_ratio']:.1%}, "
              f"max batch {fp['batch_max']:,}")
    if not args.skip_cache:
        print("cold vs warm sweep through the result cache ...")
        rec = bench.measure_cache()
        update["cache"] = rec
        print(f"  {rec['cells']} cells: cold {rec['cold_s']:.3f}s -> warm "
              f"{rec['warm_s']:.3f}s ({rec['speedup']}x, hit rate "
              f"{rec['hit_rate']:.0%}, mean lookup "
              f"{rec['lookup']['lookup_mean_s'] * 1e3:.2f}ms, digests "
              f"{'match' if rec['digests_equal'] else 'DIFFER'})")
    if os.environ.get("XSIM_FULL_SCALE", "").strip() not in ("", "0"):
        print("paper-exact 32,768-rank run (XSIM_FULL_SCALE=1) ...")
        fs = bench.full_scale_record()
        update["full_scale"] = fs
        print(f"  {fs['events']:,} events in {fs['host_s']:.3f}s "
              f"({fs['events_per_sec']:,.0f} ev/s, E1={fs['e1']:,.1f}s, "
              f"{fs['engine']} core)")
    if not args.skip_scaling:
        print(f"scaling sweep at {', '.join(map(str, bench.SCALES))} ranks ...")
        results = bench.run_scaling()
        update.update(bench.scaling_record(results))
        for n, r in results.items():
            print(f"  {n:>6} ranks: {r['events']:>9,} events in {r['host_s']:.3f}s "
                  f"({bench.rate(r['events'], r['host_s']):,.0f} ev/s)")
        print(f"  512-rank throughput vs frozen seed baseline: "
              f"{update['speedup_vs_seed']:.3f}x (host-state dependent; "
              f"authoritative paired figure {bench.PAIRED_AB_512['speedup']}x)")
    if not args.skip_sharded:
        # No capped_shards here: the record carries host_cpus, the wall
        # figure is explicitly host-qualified, and the projection comes
        # from the single-process inline transport.
        shards = args.shards
        ncpu = os.cpu_count() or 1
        if ncpu < shards:
            print(f"note: host has {ncpu} CPUs < {shards} shards; "
                  "speedup_wall will reflect timesharing — read "
                  "projected_speedup (critical-path based) instead")
        print(f"serial vs {shards}-shard run at {args.ranks} ranks "
              f"({args.collectives} collectives) ...")
        rec = bench.measure_sharded(
            nranks=args.ranks, shards=shards, collective_algorithm=args.collectives
        )
        update["sharded"] = rec
        for t, r in rec["transports"].items():
            print(f"  {t:<7}: wall {r['wall_s']:.3f}s ({r['speedup_wall']:.2f}x), "
                  f"critical path {r['critical_path_s']:.3f}s, "
                  f"{r['windows']:,} windows, imbalance {r['imbalance']:.2f}")
        print(f"  serial {rec['serial_s']:.3f}s -> wall speedup {rec['speedup_wall']:.2f}x "
              f"(host has {rec['host_cpus']} CPUs), projected on >= {shards} cores: "
              f"{rec['projected_speedup']:.2f}x, measured/projected "
              f"{rec['measured_vs_projected']:.2f}")
    bench.merge_bench(update, out)
    print(f"wrote {out}")
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from repro.cache import open_cache
    from repro.util.units import format_size

    cache = open_cache(args.cache_dir)
    st = cache.index_stats()
    print(f"result cache at {st['root']}")
    if st["disabled"]:
        print(f"  disabled: {st['disabled']}")
        return 1
    modes = ", ".join(f"{n} {m}" for m, n in sorted(st["modes"].items())) or "empty"
    print(f"  entries:  {st['entries']:,} ({modes})")
    print(f"  size:     {format_size(st['bytes'])}")
    print(f"  hits:     {st['hits']:,} lifetime "
          f"(~{st['saved_s']:,.1f}s of compute served by lookup)")
    print(f"  salt:     {st['salt']}")
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    from repro.cache import open_cache

    cache = open_cache(args.cache_dir)
    if cache.disabled_reason:
        print(f"error: {cache.disabled_reason}", file=sys.stderr)
        return 1
    total = cache.index_stats()["entries"]
    issues = cache.verify(prune=args.prune)
    if not issues:
        print(f"verified {total:,} entries: all servable")
        return 0
    for issue in issues:
        action = "pruned" if args.prune else "unservable"
        print(f"{issue.key[:16]} {action}: {issue.problem}")
    print(f"{len(issues)}/{total} entries "
          f"{'pruned' if args.prune else 'unservable (re-run with --prune to delete)'}")
    return 0 if args.prune else 1


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    from repro.cache import open_cache
    from repro.util.units import format_size, parse_size, parse_time

    if args.max_bytes is None and args.max_age is None:
        print("error: pass --max-bytes and/or --max-age", file=sys.stderr)
        return 2
    cache = open_cache(args.cache_dir)
    if cache.disabled_reason:
        print(f"error: {cache.disabled_reason}", file=sys.stderr)
        return 1
    try:
        max_bytes = None if args.max_bytes is None else parse_size(args.max_bytes)
        max_age = None if args.max_age is None else parse_time(args.max_age)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    res = cache.gc(max_bytes=max_bytes, max_age=max_age)
    by_age = sum(1 for _, reason in res.removed if reason == "age")
    by_bytes = len(res.removed) - by_age
    print(
        f"evicted {len(res.removed)} entries ({format_size(res.freed_bytes)} freed: "
        f"{by_age} by age, {by_bytes} by size); "
        f"kept {res.kept} ({format_size(res.kept_bytes)})"
    )
    return 0


def _cmd_simcheck(args: argparse.Namespace) -> int:
    from repro.check.differential import run_all

    results = run_all(jobs=args.jobs, artifacts_dir=args.artifacts, only=args.only)
    for r in results:
        print(r)
    failed = [r for r in results if not r.passed]
    if failed:
        where = f"; artifacts in {args.artifacts}" if args.artifacts else ""
        print(f"{len(failed)}/{len(results)} differential checks FAILED{where}")
        return 1
    print(f"all {len(results)} differential checks passed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``xsim-run`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="xsim-run",
        description="xsim-resilience: performance/resilience co-design simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_app = sub.add_parser("app", help="run a simulated application")
    _add_system_args(p_app)
    _add_shards_args(p_app)
    _add_workload_args(p_app)
    p_app.add_argument(
        "--record-trace",
        metavar="FILE",
        default="",
        help="save the event-dispatch trace of a single run to FILE",
    )
    p_app.add_argument(
        "--replay",
        metavar="FILE",
        default="",
        help="re-run and diff against a trace saved with --record-trace; "
        "exit 1 at the first divergence",
    )
    p_app.add_argument(
        "--digest",
        action="store_true",
        help="print the canonical result digest (bit-identical across "
        "backends for the same scenario)",
    )
    p_app.add_argument(
        "--trace-out",
        metavar="FILE",
        default="",
        help="export the run's observability timeline (collectives, "
        "resilience instants, restart segments) to FILE: .json = Chrome "
        "trace-event JSON (open in Perfetto), .jsonl, .csv; byte-identical "
        "for serial and sharded runs",
    )
    p_app.add_argument(
        "--trace-detail",
        action="store_true",
        help="also record per-request blocking-wait spans in --trace-out "
        "(high volume on large runs)",
    )
    p_app.add_argument(
        "--trace-host",
        action="store_true",
        help="include host-domain (wall clock) events in --trace-out; these "
        "are nondeterministic, so exports are no longer byte-comparable",
    )
    _add_cache_args(p_app)
    p_app.set_defaults(fn=_cmd_app)

    p_sw = sub.add_parser(
        "sweep",
        help="expand a scenario matrix (cartesian parameter grid) into a "
        "campaign of independent runs",
    )
    _add_system_args(p_sw)
    _add_shards_args(p_sw)
    _add_workload_args(p_sw)
    p_sw.add_argument(
        "--set",
        action="append",
        metavar="FIELD=V1,V2",
        help="sweep axis, e.g. --set interval=500,250 --set mttf=6000,3000; "
        "repeatable, combined cartesian with any [sweep] table in the "
        "scenario file",
    )
    p_sw.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the campaign (default: XSIM_JOBS or 1); "
        "results are identical to a serial sweep",
    )
    _add_cache_args(p_sw)
    p_sw.set_defaults(fn=_cmd_sweep)

    p_ex = sub.add_parser(
        "explore",
        help="adaptive fault-space exploration: stratified sampling over "
        "(kind x rank x time x magnitude) with CI-driven stopping, "
        "emitting a deterministic resilience scorecard",
    )
    _add_system_args(p_ex)
    _add_shards_args(p_ex)
    p_ex.add_argument("--app", default=None,
                      choices=list(APP_NAMES),
                      help="simulated application (default heat3d)")
    p_ex.add_argument("--iterations", type=int, default=None,
                      help="application iterations (default 1000)")
    p_ex.add_argument("--interval", type=int, default=None,
                      help="checkpoint interval (default 1000)")
    p_ex.add_argument("--strategy", default=None,
                      choices=list(strategy_names()),
                      help="resilience strategy under test (default ckpt); "
                      "the [explore] table's strategies list sweeps several")
    p_ex.add_argument(
        "--scenario",
        metavar="FILE",
        default=None,
        help="scenario TOML file; its [explore] table configures the "
        "campaign (kinds, bins, stopping rule)",
    )
    p_ex.add_argument(
        "--ci-width",
        type=float,
        default=None,
        help="stop when every stratum's Wilson half-width is within this "
        "(default 0.15; also XSIM_EXPLORE_CI)",
    )
    p_ex.add_argument(
        "--batch",
        type=int,
        default=None,
        help="cells per refinement batch (default 16; also XSIM_EXPLORE_BATCH)",
    )
    p_ex.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="simulation budget (default 1024; also XSIM_EXPLORE_MAX_CELLS)",
    )
    p_ex.add_argument(
        "--explore-seed",
        type=int,
        default=None,
        help="sampler root seed (independent of the scenario seed; default 0)",
    )
    p_ex.add_argument(
        "--out",
        metavar="FILE",
        default="",
        help="also write the scorecard as canonical JSON (byte-identical "
        "across reruns of the same spec)",
    )
    p_ex.add_argument(
        "--trace-out",
        metavar="FILE",
        default="",
        help="export the campaign's host-domain timeline (one instant per "
        "batch: cells, budget spent, widest CI)",
    )
    p_ex.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=default_jobs(),
        help="worker processes for each batch (default: XSIM_JOBS or 1); "
        "the scorecard is identical at any -j",
    )
    _add_cache_args(p_ex)
    p_ex.set_defaults(fn=_cmd_explore)

    p_tl = sub.add_parser(
        "timeline", help="summarize an exported observability trace "
        "(per-rank detection latencies, resilience sequence)"
    )
    p_tl.add_argument("trace", help="file written by xsim-run app --trace-out")
    p_tl.add_argument(
        "--rows",
        type=int,
        default=0,
        metavar="N",
        help="also print the first N rows of the joined timeline",
    )
    p_tl.set_defaults(fn=_cmd_timeline)

    p_t1 = sub.add_parser("table1", help="Finject bit-flip campaign (paper Table I)")
    p_t1.add_argument("--victims", type=int, default=100)
    p_t1.add_argument("--max-injections", type=int, default=100)
    p_t1.add_argument("--seed", type=int, default=FinjectCampaign.seed)
    _add_jobs_arg(p_t1)
    p_t1.add_argument(
        "--independent-streams",
        action="store_true",
        help="one RNG sub-stream per victim (order-independent; implied by -j > 1)",
    )
    p_t1.set_defaults(fn=_cmd_table1)

    p_t2 = sub.add_parser("table2", help="checkpoint interval x MTTF sweep (paper Table II)")
    p_t2.add_argument("--ranks", type=int, default=512)
    p_t2.add_argument("--seed", type=int, default=0)
    _add_jobs_arg(p_t2)
    p_t2.set_defaults(fn=_cmd_table2)

    p_arch = sub.add_parser("arch", help="architecture self-description (paper Figure 1)")
    _add_system_args(p_arch)
    _add_shards_args(p_arch)
    p_arch.add_argument(
        "--scenario",
        metavar="FILE",
        default=None,
        help="describe the machine/backend a scenario TOML file resolves to",
    )
    p_arch.set_defaults(fn=_cmd_arch)

    p_bench = sub.add_parser(
        "bench", help="measure PDES throughput and sharded speedup, "
        "updating BENCH_pdes.json"
    )
    p_bench.add_argument("--ranks", type=int, default=4096,
                         help="rank count of the serial-vs-sharded comparison")
    p_bench.add_argument("--shards", type=int,
                         default=int(os.environ.get("XSIM_SHARDS", "4") or 4),
                         help="shard count of the comparison (default 4)")
    p_bench.add_argument("--collectives", default="tree", choices=["linear", "tree"],
                         help="collective algorithm of the benchmark workload "
                         "(linear serializes at the barrier root and caps any "
                         "parallel engine; tree is the scalable default)")
    p_bench.add_argument("--skip-scaling", action="store_true",
                         help="skip the serial throughput sweep")
    p_bench.add_argument("--skip-sharded", action="store_true",
                         help="skip the serial-vs-sharded comparison")
    p_bench.add_argument("--skip-cores", action="store_true",
                         help="skip the paired heap-vs-flat event-core comparison")
    p_bench.add_argument("--skip-cache", action="store_true",
                         help="skip the cold-vs-warm result-cache sweep comparison")
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="output path (default: BENCH_pdes.json at the repo root)")
    p_bench.set_defaults(fn=_cmd_bench)

    p_cache = sub.add_parser(
        "cache",
        help="inspect and maintain the content-addressed result cache "
        "(stats, verify, gc)",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    def _cache_dir_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            metavar="DIR",
            default=None,
            help="cache directory (default: XSIM_CACHE_DIR or ~/.cache/xsim)",
        )

    p_cs = cache_sub.add_parser("stats", help="entry count, size, lifetime hit totals")
    _cache_dir_arg(p_cs)
    p_cs.set_defaults(fn=_cmd_cache_stats)

    p_cv = cache_sub.add_parser(
        "verify",
        help="audit every entry (blob present, decodable, digest matches "
        "the index); exit 1 when any entry is unservable",
    )
    _cache_dir_arg(p_cv)
    p_cv.add_argument(
        "--prune", action="store_true", help="delete the entries that fail the audit"
    )
    p_cv.set_defaults(fn=_cmd_cache_verify)

    p_cg = cache_sub.add_parser(
        "gc",
        help="evict entries: everything idle longer than --max-age first, "
        "then least-recently-hit entries until under --max-bytes",
    )
    _cache_dir_arg(p_cg)
    p_cg.add_argument(
        "--max-bytes",
        metavar="SIZE",
        default=None,
        help='target cache size with unit suffix, e.g. "256MB" or "1GB"',
    )
    p_cg.add_argument(
        "--max-age",
        metavar="TIME",
        default=None,
        help='evict entries whose last hit is older than this, e.g. "7d", "12h"',
    )
    p_cg.set_defaults(fn=_cmd_cache_gc)

    p_chk = sub.add_parser(
        "simcheck", help="differential determinism harness (serial vs pool, "
        "coalescing on/off, trace replay, collective modes)"
    )
    p_chk.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=4,
        help="pool width for the parallel-vs-serial checks (>= 2; default 4)",
    )
    p_chk.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write divergence reports/traces here when a check fails",
    )
    p_chk.add_argument(
        "--only",
        metavar="NAME",
        default=None,
        help="run a single named check (e.g. sharded-parity, obs-parity)",
    )
    p_chk.set_defaults(fn=_cmd_simcheck)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
