"""``xsim-run``: command-line front end of the toolkit.

Mirrors how the original tool is driven: pick an application and a
simulated machine, optionally pass a failure schedule as rank/time pairs on
the command line (``--xsim-failures "3@100s,17@2500s"``) or via the
``XSIM_FAILURES`` environment variable, run, and read the per-process
timing statistics and the informational failure/abort messages.

Subcommands::

    xsim-run app     --app heat3d --ranks 64 --interval 250 [--mttf 3000]
    xsim-run table1  # Finject bit-flip campaign (paper Table I)
    xsim-run table2  --ranks 512  # checkpoint-interval x MTTF sweep
    xsim-run arch    --ranks 32768  # architecture self-description (Fig. 1)
    xsim-run bench   # PDES throughput + sharded speedup -> BENCH_pdes.json
    xsim-run simcheck  # differential determinism harness (see repro.check)

``app`` accepts ``--shards N`` (or ``XSIM_SHARDS``) to run the one
simulation on the sharded conservative-parallel engine
(:mod:`repro.pdes.sharded`); results and traces are bit-identical to the
serial engine.

Debugging aids on ``app``: ``--check`` enables the runtime invariant
sanitizer (equivalent to ``XSIM_CHECK=1``); ``--record-trace FILE`` saves
the full event-dispatch trace; ``--replay FILE`` re-runs and diffs against
a saved trace, reporting the first divergence.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.apps.cg import CgConfig, cg
from repro.check.trace import EventTrace
from repro.apps.heat3d import HeatConfig, heat3d
from repro.apps.ring import RingConfig, ring
from repro.apps.stencil2d import Stencil2dConfig, stencil2d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.faults.finject import FinjectCampaign
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.harness.experiment import Table2Config, run_table2
from repro.core.harness.parallel import default_jobs
from repro.core.harness.report import format_table, render_table2
from repro.core.restart import RestartDriver
from repro.core.simulator import XSim


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=default_jobs(),
        help="worker processes for independent runs (default: XSIM_JOBS or 1); "
        "results are identical to a serial run",
    )


def _add_shards_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--shards",
        type=int,
        default=int(os.environ.get("XSIM_SHARDS", "1") or 1),
        help="partition the simulated ranks across N conservative-parallel "
        "engine shards (default: XSIM_SHARDS or 1); the event trace is "
        "bit-identical to a serial run",
    )
    p.add_argument(
        "--shard-transport",
        choices=["fork", "inline"],
        default=None,
        help="shard worker transport: fork (default; one process per shard) "
        "or inline (all shards in-process — same schedule, for debugging "
        "and single-core hosts)",
    )


def capped_shards(shards: int, jobs: int = 1, transport: str | None = None) -> int:
    """Cap ``jobs * shards`` at the host's CPU count (fork transport only).

    Every forked shard worker is a full process; running ``jobs`` pool
    workers that each fork ``shards`` engine workers silently oversubscribes
    the host and makes *everything* slower.  The inline transport stays in
    one process and is never capped.
    """
    if shards <= 1 or transport == "inline":
        return shards
    ncpu = os.cpu_count() or 1
    jobs = max(1, jobs)
    if jobs * shards > ncpu:
        capped = max(1, ncpu // jobs)
        print(
            f"warning: --jobs {jobs} x --shards {shards} would oversubscribe "
            f"{ncpu} CPUs; capping shards to {capped} "
            "(use --shard-transport inline to shard without extra processes)",
            file=sys.stderr,
        )
        return capped
    return shards


def _add_system_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--ranks", type=int, default=64, help="simulated MPI rank count")
    p.add_argument("--topology", default="torus", choices=["torus", "mesh", "fattree", "star", "crossbar"])
    p.add_argument("--latency", default="1us", help="link latency (e.g. 1us)")
    p.add_argument("--bandwidth", default="32GB/s", help="link bandwidth")
    p.add_argument("--eager-threshold", default="256kB", help="eager/rendezvous threshold")
    p.add_argument("--detection-timeout", default="10s", help="failure detection timeout")
    p.add_argument("--slowdown", type=float, default=1000.0, help="simulated node slowdown")
    p.add_argument("--collectives", default="linear", choices=["linear", "tree", "analytic"])
    p.add_argument("--seed", type=int, default=0, help="deterministic experiment seed")


def _system_from(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig.paper_system(
        nranks=args.ranks,
        topology_kind=args.topology,
        topology_dims=None,
        link_latency=args.latency,
        link_bandwidth=args.bandwidth,
        eager_threshold=args.eager_threshold,
        detection_timeout=args.detection_timeout,
        slowdown=args.slowdown,
        collective_algorithm=args.collectives,
    )


def _cmd_app(args: argparse.Namespace) -> int:
    system = _system_from(args)
    # --check forces the sanitizer on; without it, None defers to XSIM_CHECK.
    check = True if args.check else None
    tracing = bool(args.record_trace or args.replay)
    observer = None
    if args.trace_out:
        from repro.obs import Observer

        observer = Observer(detail=args.trace_detail)
    if tracing and args.mttf is not None:
        print(
            "--record-trace/--replay cover exactly one engine run; "
            "combine them with --xsim-failures, not --mttf",
            file=sys.stderr,
        )
        return 2
    schedule = FailureSchedule.from_environment()
    if args.xsim_failures:
        schedule.extend(FailureSchedule.parse(args.xsim_failures))
    shards = capped_shards(args.shards, transport=args.shard_transport)

    if args.app == "heat3d":
        workload = HeatConfig.paper_workload(
            checkpoint_interval=args.interval, nranks=args.ranks, iterations=args.iterations
        )
        app, make_args = heat3d, (lambda store: (workload, store))
    elif args.app == "stencil2d":
        cfg2 = Stencil2dConfig.for_ranks(args.ranks, checkpoint_interval=args.interval)
        app, make_args = stencil2d, (lambda store: (cfg2, store))
    elif args.app == "cg":
        cgc = CgConfig.for_ranks(
            args.ranks, max_iterations=args.iterations, checkpoint_interval=args.interval
        )
        app, make_args = cg, (lambda store: (cgc, store))
    elif args.app == "ring":
        rcfg = RingConfig(rounds=args.iterations)
        app, make_args = ring, (lambda store: (rcfg,))
    else:  # pragma: no cover - argparse choices guard this
        raise SystemExit(f"unknown app {args.app}")

    if not tracing and (args.mttf is not None or len(schedule) > 0):
        driver = RestartDriver(
            system,
            app,
            make_args=make_args,
            mttf=args.mttf,
            schedule=schedule if schedule else None,
            seed=args.seed,
            log_stream=sys.stdout,
            check=check,
            shards=shards,
            shard_transport=args.shard_transport,
            observe=observer,
        )
        run = driver.run()
        last = run.segments[-1].result
        print(last.timing_report())
        print(
            f"E2={run.e2:,.1f}s failures={run.f} restarts={run.restarts} "
            f"MTTF_a={'-' if run.mttf_a is None else f'{run.mttf_a:,.1f}s'}"
        )
    else:
        # Single engine run: the path --record-trace/--replay cover (a
        # failure schedule is injected directly; no restart segments).
        sim = XSim(
            system,
            seed=args.seed,
            log_stream=sys.stdout,
            check=check,
            record_events=tracing,
            shards=shards,
            shard_transport=args.shard_transport,
            observe=observer,
        )
        if len(schedule) > 0:
            sim.inject_schedule(schedule)
        result = sim.run(app, args=make_args(CheckpointStore()))
        print(result.timing_report())
        print(f"E1={result.exit_time:,.1f}s completed={result.completed}")
        if args.record_trace:
            sim.event_trace.save(args.record_trace)
            print(f"recorded {len(sim.event_trace)} events to {args.record_trace}")
        if args.replay:
            reference = EventTrace.load(args.replay)
            divergence = reference.diff(sim.event_trace)
            if divergence is not None:
                print(divergence.report())
                return 1
            print(f"replay matches {args.replay}: {len(reference)} events, 0 divergences")
    if observer is not None:
        from repro.obs import write_export

        count = write_export(observer, args.trace_out, include_host=args.trace_host)
        print(f"exported {count} events to {args.trace_out}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs import TimelineReport, load_events

    events = load_events(args.trace)
    report = TimelineReport(events)
    print(report.render(max_rows=args.rows), end="")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    independent = args.independent_streams or args.jobs > 1
    if independent and not args.independent_streams:
        print(
            f"note: -j {args.jobs} implies independent per-victim RNG streams; "
            "statistics differ from the calibrated single-stream draw"
        )
    campaign = FinjectCampaign(
        victims=args.victims,
        max_injections=args.max_injections,
        seed=args.seed,
        independent_streams=independent,
        jobs=args.jobs,
    )
    result = campaign.run()
    rows = [(f, v, d) for f, v, d in result.table_rows()]
    print(format_table(["Field", "Value", "Description"], rows))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    cfg = Table2Config(nranks=args.ranks, seed=args.seed, jobs=args.jobs)
    cells = run_table2(cfg)
    print(f"Table II reproduction at {args.ranks} simulated ranks "
          f"(paper columns measured at 32,768):")
    print(render_table2(cells))
    return 0


def _cmd_arch(args: argparse.Namespace) -> int:
    sim = XSim(_system_from(args))
    print(sim.render_architecture())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.core.harness import bench

    from pathlib import Path

    out = Path(args.out) if args.out else bench.BENCH_PATH
    update: dict = {}
    if not args.skip_scaling:
        print(f"scaling sweep at {', '.join(map(str, bench.SCALES))} ranks ...")
        results = bench.run_scaling()
        update.update(bench.scaling_record(results))
        for n, r in results.items():
            print(f"  {n:>6} ranks: {r['events']:>9,} events in {r['host_s']:.3f}s "
                  f"({r['events'] / r['host_s']:,.0f} ev/s)")
        print(f"  512-rank throughput vs frozen seed baseline: "
              f"{update['speedup_vs_seed']:.3f}x (host-state dependent; "
              f"authoritative paired figure {bench.PAIRED_AB_512['speedup']}x)")
    if not args.skip_sharded:
        # No capped_shards here: the record carries host_cpus, the wall
        # figure is explicitly host-qualified, and the projection comes
        # from the single-process inline transport.
        shards = args.shards
        ncpu = os.cpu_count() or 1
        if ncpu < shards:
            print(f"note: host has {ncpu} CPUs < {shards} shards; "
                  "speedup_wall will reflect timesharing — read "
                  "projected_speedup (critical-path based) instead")
        print(f"serial vs {shards}-shard run at {args.ranks} ranks "
              f"({args.collectives} collectives) ...")
        rec = bench.measure_sharded(
            nranks=args.ranks, shards=shards, collective_algorithm=args.collectives
        )
        update["sharded"] = rec
        for t, r in rec["transports"].items():
            print(f"  {t:<7}: wall {r['wall_s']:.3f}s ({r['speedup_wall']:.2f}x), "
                  f"critical path {r['critical_path_s']:.3f}s, "
                  f"{r['windows']:,} windows, imbalance {r['imbalance']:.2f}")
        print(f"  serial {rec['serial_s']:.3f}s -> wall speedup {rec['speedup_wall']:.2f}x "
              f"(host has {rec['host_cpus']} CPUs), projected on >= {shards} cores: "
              f"{rec['projected_speedup']:.2f}x")
    bench.merge_bench(update, out)
    print(f"wrote {out}")
    return 0


def _cmd_simcheck(args: argparse.Namespace) -> int:
    from repro.check.differential import run_all

    results = run_all(jobs=args.jobs, artifacts_dir=args.artifacts, only=args.only)
    for r in results:
        print(r)
    failed = [r for r in results if not r.passed]
    if failed:
        where = f"; artifacts in {args.artifacts}" if args.artifacts else ""
        print(f"{len(failed)}/{len(results)} differential checks FAILED{where}")
        return 1
    print(f"all {len(results)} differential checks passed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``xsim-run`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="xsim-run",
        description="xsim-resilience: performance/resilience co-design simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_app = sub.add_parser("app", help="run a simulated application")
    _add_system_args(p_app)
    _add_shards_args(p_app)
    p_app.add_argument("--app", default="heat3d", choices=["heat3d", "cg", "stencil2d", "ring"])
    p_app.add_argument("--iterations", type=int, default=1000)
    p_app.add_argument("--interval", type=int, default=1000, help="checkpoint interval")
    p_app.add_argument("--mttf", type=float, default=None, help="system MTTF for random injection (s)")
    p_app.add_argument(
        "--xsim-failures",
        default="",
        help='failure schedule as "rank@time,rank@time" (also: XSIM_FAILURES env var)',
    )
    p_app.add_argument(
        "--check",
        action="store_true",
        help="enable the runtime invariant sanitizer (same as XSIM_CHECK=1)",
    )
    p_app.add_argument(
        "--record-trace",
        metavar="FILE",
        default="",
        help="save the event-dispatch trace of a single run to FILE",
    )
    p_app.add_argument(
        "--replay",
        metavar="FILE",
        default="",
        help="re-run and diff against a trace saved with --record-trace; "
        "exit 1 at the first divergence",
    )
    p_app.add_argument(
        "--trace-out",
        metavar="FILE",
        default="",
        help="export the run's observability timeline (collectives, "
        "resilience instants, restart segments) to FILE: .json = Chrome "
        "trace-event JSON (open in Perfetto), .jsonl, .csv; byte-identical "
        "for serial and sharded runs",
    )
    p_app.add_argument(
        "--trace-detail",
        action="store_true",
        help="also record per-request blocking-wait spans in --trace-out "
        "(high volume on large runs)",
    )
    p_app.add_argument(
        "--trace-host",
        action="store_true",
        help="include host-domain (wall clock) events in --trace-out; these "
        "are nondeterministic, so exports are no longer byte-comparable",
    )
    p_app.set_defaults(fn=_cmd_app)

    p_tl = sub.add_parser(
        "timeline", help="summarize an exported observability trace "
        "(per-rank detection latencies, resilience sequence)"
    )
    p_tl.add_argument("trace", help="file written by xsim-run app --trace-out")
    p_tl.add_argument(
        "--rows",
        type=int,
        default=0,
        metavar="N",
        help="also print the first N rows of the joined timeline",
    )
    p_tl.set_defaults(fn=_cmd_timeline)

    p_t1 = sub.add_parser("table1", help="Finject bit-flip campaign (paper Table I)")
    p_t1.add_argument("--victims", type=int, default=100)
    p_t1.add_argument("--max-injections", type=int, default=100)
    p_t1.add_argument("--seed", type=int, default=FinjectCampaign.seed)
    _add_jobs_arg(p_t1)
    p_t1.add_argument(
        "--independent-streams",
        action="store_true",
        help="one RNG sub-stream per victim (order-independent; implied by -j > 1)",
    )
    p_t1.set_defaults(fn=_cmd_table1)

    p_t2 = sub.add_parser("table2", help="checkpoint interval x MTTF sweep (paper Table II)")
    p_t2.add_argument("--ranks", type=int, default=512)
    p_t2.add_argument("--seed", type=int, default=0)
    _add_jobs_arg(p_t2)
    p_t2.set_defaults(fn=_cmd_table2)

    p_arch = sub.add_parser("arch", help="architecture self-description (paper Figure 1)")
    _add_system_args(p_arch)
    p_arch.set_defaults(fn=_cmd_arch)

    p_bench = sub.add_parser(
        "bench", help="measure PDES throughput and sharded speedup, "
        "updating BENCH_pdes.json"
    )
    p_bench.add_argument("--ranks", type=int, default=4096,
                         help="rank count of the serial-vs-sharded comparison")
    p_bench.add_argument("--shards", type=int,
                         default=int(os.environ.get("XSIM_SHARDS", "4") or 4),
                         help="shard count of the comparison (default 4)")
    p_bench.add_argument("--collectives", default="tree", choices=["linear", "tree"],
                         help="collective algorithm of the benchmark workload "
                         "(linear serializes at the barrier root and caps any "
                         "parallel engine; tree is the scalable default)")
    p_bench.add_argument("--skip-scaling", action="store_true",
                         help="skip the serial throughput sweep")
    p_bench.add_argument("--skip-sharded", action="store_true",
                         help="skip the serial-vs-sharded comparison")
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="output path (default: BENCH_pdes.json at the repo root)")
    p_bench.set_defaults(fn=_cmd_bench)

    p_chk = sub.add_parser(
        "simcheck", help="differential determinism harness (serial vs pool, "
        "coalescing on/off, trace replay, collective modes)"
    )
    p_chk.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=4,
        help="pool width for the parallel-vs-serial checks (>= 2; default 4)",
    )
    p_chk.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write divergence reports/traces here when a check fails",
    )
    p_chk.add_argument(
        "--only",
        metavar="NAME",
        default=None,
        help="run a single named check (e.g. sharded-parity, obs-parity)",
    )
    p_chk.set_defaults(fn=_cmd_simcheck)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
