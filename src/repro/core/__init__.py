"""The resilience co-design toolkit (the paper's primary contribution).

This package layers the paper's new capabilities over the simulation
substrates:

* :mod:`repro.core.faults` — MPI process failure schedules (rank/time
  pairs via API, environment variable, or command line), MTTF-driven
  random injection, component reliability models, the soft-error (bit
  flip) injector, and the Finject-style campaign behind Table I;
* :mod:`repro.core.checkpoint` — the simulated parallel-file-system
  checkpoint store with *complete/corrupted/missing* file states, the
  application-level checkpoint protocol helpers, and Daly's optimal
  checkpoint interval analysis;
* :mod:`repro.core.simulator` — :class:`XSim`, the single-run facade
  combining engine, models, MPI layer, and injection;
* :mod:`repro.core.restart` — the failure/restart driver that persists
  the simulated exit time across aborts so virtual time is continuous
  (paper §IV-E) and measures E2/F/MTTF_a;
* :mod:`repro.core.harness` — system/workload configuration and the
  experiment drivers that regenerate the paper's tables.
"""

from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.restart import FailureRunResult, RestartDriver
from repro.core.simulator import XSim

__all__ = [
    "FailureRunResult",
    "FailureSchedule",
    "RestartDriver",
    "SystemConfig",
    "XSim",
]
