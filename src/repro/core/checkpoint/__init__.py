"""Application-level checkpoint/restart support.

* :mod:`repro.core.checkpoint.store` — the simulated parallel-file-system
  namespace holding per-rank checkpoint files with the three states the
  paper's failure-mode discussion distinguishes: *complete*, *corrupted*
  ("checkpoint file that exists, but misses some information" — a failure
  struck mid-write), and *missing* ("missing checkpoint files due to a
  failure during checkpointing").
* :mod:`repro.core.checkpoint.protocol` — the write/validate/load helpers
  applications use, reproducing the paper's target application protocol
  (write, barrier, delete previous; on restart load the last valid set
  and delete corrupted files).
* :mod:`repro.core.checkpoint.daly` — Daly's optimal checkpoint interval
  estimates, the canonical checkpoint/restart optimization the paper's
  related-work section cites.
"""

from repro.core.checkpoint.daly import (
    daly_higher_order_interval,
    daly_simple_interval,
    expected_completion_time,
)
from repro.core.checkpoint.protocol import CheckpointProtocol
from repro.core.checkpoint.store import CheckpointStore, FileState

__all__ = [
    "CheckpointProtocol",
    "CheckpointStore",
    "FileState",
    "daly_higher_order_interval",
    "daly_simple_interval",
    "expected_completion_time",
]
