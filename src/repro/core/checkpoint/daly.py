"""Daly's optimal checkpoint interval estimates.

The paper's related work singles out "finding the optimal checkpoint
interval [31]" (J. T. Daly, "A higher order estimate of the optimum
checkpoint interval for restart dumps", FGCS 22(3), 2006) as the canonical
checkpoint/restart optimization.  These closed forms let the benchmark
suite validate the simulator: the measured-optimal checkpoint interval of a
simulated run should track Daly's prediction
(:mod:`benchmarks.test_daly_validation`).

Notation: ``delta`` is the checkpoint write cost, ``M`` the system
mean-time-to-interrupt, ``R`` the restart (rework-free) cost.
"""

from __future__ import annotations

import math

from repro.util.errors import ConfigurationError


def daly_simple_interval(delta: float, mttf: float) -> float:
    """First-order optimum: ``sqrt(2 * delta * M)`` (Young's formula)."""
    if delta <= 0 or mttf <= 0:
        raise ConfigurationError("need delta > 0 and mttf > 0")
    return math.sqrt(2.0 * delta * mttf)


def daly_higher_order_interval(delta: float, mttf: float) -> float:
    """Daly's higher-order optimum::

        tau = sqrt(2 delta M) * [1 + 1/3 sqrt(delta/(2M)) + delta/(9*2M)] - delta

    valid for ``delta < 2M``; for ``delta >= 2M`` the optimum degenerates
    to checkpointing once (``tau = M``, per Daly's paper).
    """
    if delta <= 0 or mttf <= 0:
        raise ConfigurationError("need delta > 0 and mttf > 0")
    if delta >= 2.0 * mttf:
        return mttf
    x = math.sqrt(delta / (2.0 * mttf))
    return math.sqrt(2.0 * delta * mttf) * (1.0 + x / 3.0 + (x * x) / 9.0) - delta


def expected_completion_time(
    work: float, tau: float, delta: float, mttf: float, restart: float = 0.0
) -> float:
    """Daly's expected wall-clock model for ``work`` seconds of useful
    computation with checkpoints every ``tau`` seconds of work, exponential
    failures of mean ``mttf``, checkpoint cost ``delta`` and restart cost
    ``restart``::

        T = M * exp(R/M) * (exp((tau + delta)/M) - 1) * work / tau

    Monotone in the right places: larger ``delta`` or smaller ``M``
    increase T; the minimizing ``tau`` approximates
    :func:`daly_higher_order_interval`.
    """
    if min(work, tau, delta, mttf) <= 0 or restart < 0:
        raise ConfigurationError("need work, tau, delta, mttf > 0 and restart >= 0")
    segments = work / tau
    return mttf * math.exp(restart / mttf) * (math.exp((tau + delta) / mttf) - 1.0) * segments


def optimal_interval_by_search(
    work: float, delta: float, mttf: float, restart: float = 0.0, samples: int = 2000
) -> float:
    """Numerically minimize :func:`expected_completion_time` over ``tau``
    (golden-section-free dense scan; the function is unimodal)."""
    if samples < 10:
        raise ConfigurationError("samples must be >= 10")
    lo, hi = delta / 100.0, work
    best_tau, best_t = lo, math.inf
    for i in range(samples):
        # log-spaced scan: the optimum spans orders of magnitude with MTTF
        tau = lo * (hi / lo) ** (i / (samples - 1))
        t = expected_completion_time(work, tau, delta, mttf, restart)
        if t < best_t:
            best_tau, best_t = tau, t
    return best_tau
