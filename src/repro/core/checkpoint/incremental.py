"""Incremental/differential checkpointing (paper §II-B related work).

"A number of advanced resilience technologies have been developed ...
including checkpoint/restart-specific file and storage systems,
incremental/differential checkpointing, ..." and "recent work in
incremental checkpointing ... used modeling and simulation to compare
these mitigation techniques with the standard checkpoint/restart to
identify their overhead costs and benefits" [Wang et al., hybrid
checkpointing].

Model: every ``full_interval``-th checkpoint is a *full* dump; the ones in
between are *incremental*, writing only the dirty fraction of the state.
A restart must read the newest full checkpoint plus every incremental
after it, so the restore chain grows between fulls — the classic
write-cheap/restore-expensive trade-off.  Pruning happens only after a
full checkpoint completes (everything older becomes garbage); between
fulls all chain members must be kept.

For simulation fidelity the *content* stored is always the application's
complete payload (so real-data restarts are exact); the *modeled I/O
volume* is what incremental checkpointing would write/read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.core.checkpoint.store import CheckpointStore, FileState
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.mpi.api import MpiApi

Gen = Generator[Any, Any, Any]


@dataclass(frozen=True)
class IncrementalPlan:
    """Shape of the incremental checkpoint stream."""

    full_interval: int = 4
    """Every k-th checkpoint is full (1 = all full, i.e. the baseline)."""
    dirty_fraction: float = 0.25
    """Fraction of the state an incremental checkpoint writes."""

    def __post_init__(self) -> None:
        if self.full_interval < 1:
            raise ConfigurationError(f"full_interval must be >= 1, got {self.full_interval}")
        if not 0.0 < self.dirty_fraction <= 1.0:
            raise ConfigurationError(
                f"dirty_fraction must be in (0, 1], got {self.dirty_fraction}"
            )

    def is_full(self, index: int) -> bool:
        """Is the ``index``-th checkpoint (0-based) a full dump?"""
        return index % self.full_interval == 0

    def write_nbytes(self, index: int, full_nbytes: int) -> int:
        """Bytes the ``index``-th checkpoint writes."""
        if self.is_full(index):
            return full_nbytes
        return max(1, int(round(full_nbytes * self.dirty_fraction)))

    def chain_length(self, index: int) -> int:
        """Files a restart from the ``index``-th checkpoint must read."""
        return index % self.full_interval + 1

    def restore_nbytes(self, index: int, full_nbytes: int) -> int:
        """Total bytes a restart from the ``index``-th checkpoint reads."""
        total = full_nbytes
        base = index - index % self.full_interval
        for i in range(base + 1, index + 1):
            total += self.write_nbytes(i, full_nbytes)
        return total

    def mean_write_nbytes(self, full_nbytes: int) -> float:
        """Average bytes per checkpoint over one full period."""
        return sum(
            self.write_nbytes(i, full_nbytes) for i in range(self.full_interval)
        ) / self.full_interval


class IncrementalCheckpointProtocol:
    """Per-rank incremental checkpoint discipline.

    Interface mirrors :class:`~repro.core.checkpoint.protocol.
    CheckpointProtocol` (write / synchronize-and-prune / restore-latest)
    but with chain-aware pruning and restore costs.
    """

    def __init__(self, api: "MpiApi", store: CheckpointStore, plan: IncrementalPlan):
        self.api = api
        self.store = store
        self.plan = plan
        #: Index (0-based count) of the next checkpoint this rank writes.
        self.next_index = 0
        #: Checkpoint ids written since (and including) the last full dump.
        self.chain: list[int] = []

    # ------------------------------------------------------------------
    def checkpoint(self, ckpt_id: int, data: Any, full_nbytes: int) -> Gen:
        """Write the next checkpoint (full or incremental per the plan),
        synchronize, and prune superseded files."""
        api = self.api
        index = self.next_index
        full = self.plan.is_full(index)
        nbytes = self.plan.write_nbytes(index, full_nbytes)
        payload = {"data": data, "index": index, "full": full, "chain": None}
        self.store.begin_write(ckpt_id, api.rank, payload, nbytes)
        yield from api.file_write(nbytes, concurrent_clients=api.size)
        # record the chain in the committed payload so restore knows what
        # else it must read
        if full:
            payload["chain"] = [ckpt_id]
        else:
            payload["chain"] = self.chain + [ckpt_id]
        self.store.commit_write(ckpt_id, api.rank)
        yield from api.barrier()
        if full:
            # everything before this full dump is now garbage
            for old in self.chain:
                if self.store.delete(old, api.rank):
                    yield from api.file_delete()
            self.chain = [ckpt_id]
        else:
            self.chain.append(ckpt_id)
        self.next_index = index + 1

    # ------------------------------------------------------------------
    def restore_latest(self) -> Gen:
        """Load the newest checkpoint whose whole chain is valid.

        Returns ``(ckpt_id, data)`` or ``(None, None)``.  The modeled read
        volume is the full dump plus every incremental in the chain.
        """
        api = self.api
        store = self.store
        for cid in reversed(store.checkpoint_ids()):
            if not store.is_valid(cid, api.size):
                if store.state_of(cid, api.rank) is FileState.PARTIAL:
                    store.delete(cid, api.rank)
                    yield from api.file_delete()
                continue
            f = store.read(cid, api.rank)
            chain = f.data.get("chain") or [cid]
            if not all(store.is_valid(c, api.size) for c in chain):
                continue  # broken chain: keep looking at older checkpoints
            # read the whole chain back
            total = sum(store.read(c, api.rank).nbytes for c in chain)
            yield from api.file_read(total, concurrent_clients=api.size)
            self.chain = list(chain)
            self.next_index = f.data["index"] + 1
            return cid, f.data["data"]
        return None, None
