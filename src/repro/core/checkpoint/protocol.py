"""Application-level checkpoint protocol helpers.

Encapsulates the paper's target-application checkpoint discipline so other
simulated applications can reuse it:

* **write** — create the per-rank file, pay the (modeled) file-system write
  time, commit; a failure mid-write leaves a corrupted file;
* **synchronize-and-prune** — "after writing out a checkpoint, a global
  barrier synchronizes all processes, such that the previous checkpoint can
  be deleted safely";
* **restore** — at (re)start, scan for the newest valid checkpoint set,
  "automatically delete any corrupted checkpoint", and return the restored
  payload (or ``None`` for a cold start).

All methods are generators to be driven with ``yield from`` inside the
application coroutine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.core.checkpoint.store import CheckpointStore, FileState

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.mpi.api import MpiApi

Gen = Generator[Any, Any, Any]


def resolve_protocol(api: "MpiApi", store: Any) -> "CheckpointProtocol | Any | None":
    """The checkpoint protocol driving ``store`` for this rank.

    Applications call this with whatever store object rode in through
    their args: ``None`` (checkpointing disabled) returns ``None``; a
    store that knows its own discipline (e.g. the multi-level tier store,
    via a ``make_protocol(api)`` method) returns that protocol; a plain
    :class:`~repro.core.checkpoint.store.CheckpointStore` gets the
    single-level :class:`CheckpointProtocol`.  Every protocol duck-types
    the methods apps use: ``checkpoint``, ``restore_latest``,
    ``previous_id``.
    """
    if store is None:
        return None
    factory = getattr(store, "make_protocol", None)
    if factory is not None:
        return factory(api)
    return CheckpointProtocol(api, store)


class CheckpointProtocol:
    """Per-rank view of the application checkpoint discipline."""

    def __init__(self, api: "MpiApi", store: CheckpointStore):
        self.api = api
        self.store = store
        #: Id of the most recent checkpoint this rank completed (for pruning).
        self.previous_id: int | None = None

    # ------------------------------------------------------------------
    def write(self, ckpt_id: int, data: Any, nbytes: int) -> Gen:
        """Write this rank's checkpoint file (may die mid-write)."""
        api = self.api
        self.store.begin_write(ckpt_id, api.rank, data, nbytes)
        # The I/O time is where a failure during the checkpoint phase lands,
        # leaving the file in the corrupted (PARTIAL) state.
        yield from api.file_write(nbytes, concurrent_clients=api.size)
        self.store.commit_write(ckpt_id, api.rank)

    def synchronize_and_prune(self, ckpt_id: int) -> Gen:
        """Barrier, then delete this rank's previous checkpoint file.

        A failure during the barrier aborts *before* the deletes, leaving
        "only partially deleted old checkpoints" — the third failure mode
        the paper's First Impressions section observes.
        """
        yield from self.api.barrier()
        if self.previous_id is not None and self.previous_id != ckpt_id:
            if self.store.delete(self.previous_id, self.api.rank):
                yield from self.api.file_delete()
        self.previous_id = ckpt_id

    def checkpoint(self, ckpt_id: int, data: Any, nbytes: int) -> Gen:
        """The full per-interval sequence: write, barrier, prune."""
        yield from self.write(ckpt_id, data, nbytes)
        yield from self.synchronize_and_prune(ckpt_id)

    # ------------------------------------------------------------------
    def restore_latest(self) -> Gen:
        """Find, clean up around, and load the newest valid checkpoint.

        Returns ``(ckpt_id, data)`` or ``(None, None)`` on a cold start.
        Corrupted files discovered during the scan are deleted, matching
        the application behaviour the paper describes; fully missing sets
        are expected to have been removed by the restart driver's
        shell-script step already, but are skipped (and removed) defensively.
        """
        api = self.api
        store = self.store
        for cid in reversed(store.checkpoint_ids()):
            if store.is_valid(cid, api.size):
                f = store.read(cid, api.rank)
                yield from api.file_read(f.nbytes, concurrent_clients=api.size)
                self.previous_id = cid
                return cid, f.data
            # Invalid set: delete this rank's file if it is corrupted.
            if store.state_of(cid, api.rank) is FileState.PARTIAL:
                store.delete(cid, api.rank)
                yield from api.file_delete()
        return None, None
