"""Simulated parallel-file-system checkpoint store.

The store models the PFS *namespace* (which files exist and whether they
are complete) and persists across simulated job restarts — it lives in the
restart driver, outside any single engine run, exactly like a real parallel
file system outlives an aborted job.

File lifecycle: :meth:`begin_write` creates the file in the ``PARTIAL``
state ("exists, but misses some information"); :meth:`commit_write`
promotes it to ``COMPLETE``.  A virtual process killed between the two —
a failure during the checkpoint phase — leaves a *corrupted* file, which
the application deletes when it finds it at restart.  A rank killed before
it began writing leaves the file *missing*, making the whole checkpoint set
*incomplete*; the paper deletes those "using a shell script" before
restart, which :meth:`cleanup_incomplete` reproduces.

Timing is **not** modeled here — the store is pure namespace/state.  The
application pays I/O time through :meth:`MpiApi.file_write` against the
file-system model (zero-cost in the paper's Table II configuration).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.util.errors import CheckpointError


class FileState(enum.Enum):
    """State of one per-rank checkpoint file."""

    PARTIAL = "partial"
    """Created but not committed — the paper's "corrupted" checkpoint file."""
    COMPLETE = "complete"


@dataclass
class CheckpointFile:
    """One per-rank checkpoint file in the simulated PFS."""

    ckpt_id: int
    rank: int
    state: FileState
    data: Any
    nbytes: int


class CheckpointStore:
    """Namespace of per-rank checkpoint files, keyed by (checkpoint id, rank).

    Checkpoint ids are application-chosen (the heat application uses the
    iteration number), and must be monotonically meaningful: "latest" means
    the numerically largest id.
    """

    def __init__(self) -> None:
        self._files: dict[tuple[int, int], CheckpointFile] = {}
        #: Cumulative operation counters (for reports and tests).
        self.writes = 0
        self.deletes = 0

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def begin_write(self, ckpt_id: int, rank: int, data: Any, nbytes: int) -> None:
        """Create (or overwrite) the file in the PARTIAL state."""
        if nbytes < 0:
            raise CheckpointError(f"nbytes must be >= 0, got {nbytes}")
        self._files[(ckpt_id, rank)] = CheckpointFile(
            ckpt_id=ckpt_id, rank=rank, state=FileState.PARTIAL, data=data, nbytes=nbytes
        )
        self.writes += 1

    def commit_write(self, ckpt_id: int, rank: int) -> None:
        """Promote the file to COMPLETE (the write finished)."""
        f = self._files.get((ckpt_id, rank))
        if f is None:
            raise CheckpointError(f"commit of unknown checkpoint file ({ckpt_id}, {rank})")
        f.state = FileState.COMPLETE

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, ckpt_id: int, rank: int) -> CheckpointFile:
        """Return a COMPLETE file; corrupted or missing files raise."""
        f = self._files.get((ckpt_id, rank))
        if f is None:
            raise CheckpointError(f"checkpoint file ({ckpt_id}, {rank}) does not exist")
        if f.state is not FileState.COMPLETE:
            raise CheckpointError(f"checkpoint file ({ckpt_id}, {rank}) is corrupted")
        return f

    def exists(self, ckpt_id: int, rank: int) -> bool:
        """Does the file exist (in any state)?"""
        return (ckpt_id, rank) in self._files

    def state_of(self, ckpt_id: int, rank: int) -> FileState | None:
        """File state, or ``None`` when the file does not exist."""
        f = self._files.get((ckpt_id, rank))
        return None if f is None else f.state

    # ------------------------------------------------------------------
    # namespace queries
    # ------------------------------------------------------------------
    def checkpoint_ids(self) -> list[int]:
        """All checkpoint ids with at least one file, ascending."""
        return sorted({cid for cid, _ in self._files})

    def ranks_present(self, ckpt_id: int) -> list[int]:
        """Ranks with a file (any state) for ``ckpt_id``."""
        return sorted(r for cid, r in self._files if cid == ckpt_id)

    def is_valid(self, ckpt_id: int, nranks: int) -> bool:
        """Complete file present for *exactly* ranks ``0..nranks-1``?

        The rank set must match exactly: files from ranks ``>= nranks``
        (a set written by a wider job, before e.g. an ``MPI_Comm_shrink``
        restart) invalidate the set — restoring only its low-rank files
        would silently drop the part of the domain the lost ranks held.
        """
        present = 0
        for (cid, rank), f in self._files.items():
            if cid != ckpt_id:
                continue
            if rank >= nranks or f.state is not FileState.COMPLETE:
                return False
            present += 1
        return present == nranks

    def latest_valid(self, nranks: int) -> int | None:
        """Largest checkpoint id valid for an ``nranks``-wide restart
        (exact rank-set match, see :meth:`is_valid`)."""
        for cid in reversed(self.checkpoint_ids()):
            if self.is_valid(cid, nranks):
                return cid
        return None

    def corrupted_files(self, ckpt_id: int) -> list[int]:
        """Ranks whose file for ``ckpt_id`` exists but is PARTIAL."""
        return sorted(
            r
            for (cid, r), f in self._files.items()
            if cid == ckpt_id and f.state is FileState.PARTIAL
        )

    def total_bytes(self) -> int:
        """Sum of all stored file sizes."""
        return sum(f.nbytes for f in self._files.values())

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, ckpt_id: int, rank: int | None = None) -> int:
        """Delete one file (or, with ``rank=None``, the whole set).
        Returns the number of files removed (deleting nothing is fine —
        another rank may have cleaned up already)."""
        if rank is not None:
            removed = self._files.pop((ckpt_id, rank), None)
            if removed is not None:
                self.deletes += 1
                return 1
            return 0
        keys = [k for k in self._files if k[0] == ckpt_id]
        for k in keys:
            del self._files[k]
        self.deletes += len(keys)
        return len(keys)

    def cleanup_incomplete(self, nranks: int) -> list[int]:
        """Delete every checkpoint set that is not valid for ``nranks``
        ranks — the paper's pre-restart shell script.  Returns the ids
        removed.  Validity requires an exact rank-set match (see
        :meth:`is_valid`), so leftover wide sets — including their
        high-rank files — are deleted too, not just narrow/corrupt ones."""
        removed = []
        for cid in self.checkpoint_ids():
            if not self.is_valid(cid, nranks):
                self.delete(cid)
                removed.append(cid)
        return removed

    def __len__(self) -> int:
        return len(self._files)
