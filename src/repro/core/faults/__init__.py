"""Fault, error, and failure injection.

* :mod:`repro.core.faults.schedule` — explicit MPI process failure
  schedules ("xSim additionally offers to pass a simulated MPI process
  failure schedule in the form of rank/time pairs on the command line or
  via an environment variable on startup").
* :mod:`repro.core.faults.reliability` — component reliability models
  (exponential and Weibull) and the paper's Table II placement policy:
  a uniformly random rank at a uniformly random time within 2x the system
  MTTF, drawn independently for every run segment.
* :mod:`repro.core.faults.softerror` — bit-flip injection into tracked
  process memory (paper future work 1 / the redMPI-style studies).
* :mod:`repro.core.faults.finject` — the Finject robustness-testing
  campaign reproduced for Table I.
"""

from repro.core.faults.policies import (
    InjectionPolicy,
    ReliabilityInjectionPolicy,
    SingleUniformFailurePolicy,
)
from repro.core.faults.reliability import (
    ExponentialReliability,
    MttfInjectionPolicy,
    SystemReliability,
    WeibullReliability,
)
from repro.core.faults.overlay import FaultOverlay
from repro.core.faults.schedule import (
    CorrelatedFailure,
    FailureSchedule,
    LinkDegradeFault,
    ScheduledFailure,
    StragglerFault,
    expand_correlated,
)
from repro.core.faults.softerror import SoftErrorInjector, SoftErrorOutcome
from repro.core.faults.finject import FinjectCampaign, VictimModel

__all__ = [
    "CorrelatedFailure",
    "ExponentialReliability",
    "FailureSchedule",
    "FaultOverlay",
    "FinjectCampaign",
    "LinkDegradeFault",
    "ScheduledFailure",
    "StragglerFault",
    "expand_correlated",
    "InjectionPolicy",
    "MttfInjectionPolicy",
    "ReliabilityInjectionPolicy",
    "SingleUniformFailurePolicy",
    "SoftErrorInjector",
    "SoftErrorOutcome",
    "SystemReliability",
    "VictimModel",
    "WeibullReliability",
]
