"""Finject-style bit-flip robustness campaign (paper Table I).

Finject [Naughton et al., Resilience'09] injected register/core-image bit
flips into victim user-space processes via ``ptrace(2)`` and counted how
many injections each victim survived.  The paper reprints its results as
Table I: 100 victims, 2197 total injections, and the min/max/mean/median/
mode/stddev of injections-to-failure.

The substitution here (documented in DESIGN.md): the victim is a synthetic
process model whose address space is tracked by
:class:`~repro.models.memory.MemoryTracker` — CPU registers, program text
and stack (failure-critical: a flip there crashes the victim), live heap
data (silent corruption), and dead/unused memory (benign).  Repeated
uniform flips therefore produce a geometric-like injections-to-failure
distribution whose rate is the critical fraction of the footprint; the
default layout is calibrated so the campaign statistics land near the
paper's (mean ~22 injections-to-failure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.memory import MemoryTracker, RegionKind
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStreams
from repro.util.stats import SummaryStats, summarize


@dataclass(frozen=True)
class VictimModel:
    """Synthetic victim-process address space.

    Sizes are bytes; the critical fraction (registers + text + stack over
    the total) is the per-injection failure probability, since flips are
    uniform over the footprint.
    """

    registers_bytes: int = 512
    text_bytes: int = 88 * 1024
    stack_bytes: int = 6 * 1024
    heap_bytes: int = 1536 * 1024
    unused_bytes: int = 384 * 1024

    def __post_init__(self) -> None:
        if min(
            self.registers_bytes,
            self.text_bytes,
            self.stack_bytes,
            self.heap_bytes,
            self.unused_bytes,
        ) <= 0:
            raise ConfigurationError("all victim regions must be > 0 bytes")

    @property
    def total_bytes(self) -> int:
        return (
            self.registers_bytes
            + self.text_bytes
            + self.stack_bytes
            + self.heap_bytes
            + self.unused_bytes
        )

    @property
    def critical_bytes(self) -> int:
        return self.registers_bytes + self.text_bytes + self.stack_bytes

    @property
    def failure_probability(self) -> float:
        """Per-injection probability of hitting a failure-critical byte."""
        return self.critical_bytes / self.total_bytes

    def expected_injections_to_failure(self) -> float:
        """Mean of the (uncapped) geometric injections-to-failure count."""
        return 1.0 / self.failure_probability

    def build(self, tracker: MemoryTracker, rank: int) -> None:
        """Register this victim's address space for ``rank``."""
        tracker.allocate(rank, "registers", self.registers_bytes, RegionKind.CRITICAL)
        tracker.allocate(rank, "text", self.text_bytes, RegionKind.CRITICAL)
        tracker.allocate(rank, "stack", self.stack_bytes, RegionKind.CRITICAL)
        tracker.allocate(rank, "heap", self.heap_bytes, RegionKind.DATA)
        tracker.allocate(rank, "unused", self.unused_bytes, RegionKind.UNUSED)


@dataclass(frozen=True)
class FinjectResult:
    """Outcome of one campaign."""

    injections_to_failure: tuple[int, ...]
    censored: int
    """Victims that survived the injection cap (counted at the cap)."""
    sdc_hits: int
    benign_hits: int
    stats: SummaryStats

    def table_rows(self) -> list[tuple[str, str, str]]:
        """(field, value, description) rows in Table I's layout."""
        s = self.stats
        return [
            ("Victims", f"{s.count}", "# of victim application instances"),
            ("Injections", f"{int(s.total)}", "# of injected failures for all runs"),
            ("Minimum", f"{int(s.minimum)}", "# of injections to victim failure"),
            ("Maximum", f"{int(s.maximum)}", "# of injections to victim failure"),
            ("Mean", f"{s.mean:.2f}", "# of injections to victim failure"),
            ("Median", f"{int(s.median) if s.median.is_integer() else s.median}", "# of injections to victim failure"),
            ("Mode", f"{int(s.mode)}", "# of injections to victim failure"),
            ("Std.Dev.", f"{s.stddev:.2f}", "# of injections to victim failure"),
        ]


def run_victim(
    victim: VictimModel, victim_id: int, max_injections: int, rng: np.random.Generator
) -> tuple[int, int, int]:
    """Inject one victim until failure or the cap.

    Returns ``(injections_to_failure, sdc_hits, benign_hits)``;
    injections-to-failure is ``-1`` when the victim survived the cap.
    This is the unit of work a parallel campaign fans out (see
    :mod:`repro.core.harness.parallel`).
    """
    tracker = MemoryTracker()
    victim.build(tracker, victim_id)
    sdc = 0
    benign = 0
    for n in range(1, max_injections + 1):
        record = tracker.flip_random_bit(victim_id, rng)
        if record.kind is RegionKind.CRITICAL:
            return n, sdc, benign
        if record.kind is RegionKind.DATA:
            sdc += 1
        else:
            benign += 1
    return -1, sdc, benign


@dataclass
class FinjectCampaign:
    """Run ``victims`` independent bit-flip injection experiments.

    Mirrors the Finject experiment: each victim receives uniform random
    bit flips until it fails (a critical region is hit) or the injection
    cap is reached ("an arbitrary maximum of 100 injected faults was
    set").

    By default every victim draws from one shared RNG stream consumed in
    victim order — the calibrated draw whose statistics match the paper's
    Table I.  ``independent_streams=True`` instead gives each victim its
    own ``SeedSequence``-spawned sub-stream (see
    :meth:`~repro.util.rng.RngStreams.spawn_child`), making the
    per-victim draws order-independent; that is required for (and implied
    by) parallel execution with ``jobs > 1``, and produces the same
    result whether the victims run serially or on a worker pool.
    """

    victims: int = 100
    max_injections: int = 100
    victim: VictimModel = field(default_factory=VictimModel)
    #: Deterministic campaign, like the simulator; the default draw is the
    #: calibration whose statistics land nearest the paper's Table I
    #: (mean 23.3 vs 21.97, median 17.5 vs 17, mode 4 vs 4, min 1 vs 1,
    #: max 97 vs 98, sigma 21.2 vs 21.4, no censored victims).
    seed: int = 29
    #: One RNG sub-stream per victim instead of the shared sequential
    #: stream (see class docstring).
    independent_streams: bool = False
    #: Worker processes for the campaign (1 = in-process serial).
    jobs: int = 1

    def run(self) -> FinjectResult:
        """Execute the campaign and compute the Table I statistics."""
        if self.victims < 1 or self.max_injections < 1:
            raise ConfigurationError("need victims >= 1 and max_injections >= 1")
        if self.jobs > 1 and not self.independent_streams:
            raise ConfigurationError(
                "parallel finject (jobs > 1) requires independent_streams=True: "
                "the default campaign consumes one shared RNG stream in victim "
                "order, which cannot be partitioned across workers without "
                "changing the draw"
            )
        if self.independent_streams:
            from repro.core.harness.parallel import CampaignExecutor, RunSpec

            specs = [
                RunSpec(
                    "finject-victim",
                    key=("victim", victim_id),
                    params={
                        "victim": self.victim,
                        "victim_id": victim_id,
                        "max_injections": self.max_injections,
                        "seed": self.seed,
                    },
                )
                for victim_id in range(self.victims)
            ]
            outcomes = CampaignExecutor(max_workers=self.jobs).run(specs)
        else:
            rng = RngStreams(self.seed).get("finject")
            outcomes = [
                run_victim(self.victim, victim_id, self.max_injections, rng)
                for victim_id in range(self.victims)
            ]
        samples: list[int] = []
        censored = 0
        sdc = 0
        benign = 0
        for count, victim_sdc, victim_benign in outcomes:
            if count < 0:
                censored += 1
                samples.append(self.max_injections)
            else:
                samples.append(count)
            sdc += victim_sdc
            benign += victim_benign
        return FinjectResult(
            injections_to_failure=tuple(samples),
            censored=censored,
            sdc_hits=sdc,
            benign_hits=benign,
            stats=summarize(samples),
        )
