"""Performance-degradation fault overlay (stragglers and degraded links).

Fail-stop faults go through the engine's failure machinery; the degraded-
performance kinds (:class:`~repro.core.faults.schedule.StragglerFault`,
:class:`~repro.core.faults.schedule.LinkDegradeFault`) instead scale
*costs* while active.  The overlay is the one place those windows live:

* :meth:`stretch_compute` — consulted by the MPI compute calls; the
  wall-clock cost of a compute advance is the piecewise integral of the
  compound slowdown over the advance's extent, so a window that opens or
  closes mid-advance degrades exactly the overlapping portion (coarse
  compute phases — e.g. an app batching many iterations into one advance
  — still feel a short window).  Overlapping windows compound
  multiplicatively.  The stretch is a pure function of (rank, start
  clock, duration), evaluated once at the compute call, so serial and
  sharded engines agree bit for bit.
* :meth:`link_factor` — consulted at message-cost sites (eager transfer,
  rendezvous handshake); the factor multiplies the whole per-message
  network cost, evaluated once at the initiating timestamp so serial and
  sharded engines see identical arrival times.

Factors are >= 1 by construction (enforced at parse/build time), so every
scaled cost is >= the undegraded cost the sharded engine's conservative
lookahead was derived from — the lookahead stays a valid lower bound.

The empty overlay is the hot path: ``active_compute``/``active_links``
are plain bools, so undegraded runs pay one attribute check per site.
"""

from __future__ import annotations

import math

from repro.core.faults.schedule import LinkDegradeFault, StragglerFault


class FaultOverlay:
    """Armed straggler/link-degrade windows, queryable by time."""

    __slots__ = ("_stragglers", "_links", "active_compute", "active_links")

    def __init__(self) -> None:
        # rank -> [(start, end, factor)], pair -> [(start, end, factor)]
        self._stragglers: dict[int, list[tuple[float, float, float]]] = {}
        self._links: dict[tuple[int, int], list[tuple[float, float, float]]] = {}
        self.active_compute = False
        self.active_links = False

    def arm(self, fault: StragglerFault | LinkDegradeFault) -> None:
        if isinstance(fault, StragglerFault):
            windows = self._stragglers.setdefault(fault.rank, [])
            windows.append((fault.time, fault.end, fault.factor))
            windows.sort()
            self.active_compute = True
        elif isinstance(fault, LinkDegradeFault):
            pair = (fault.rank_a, fault.rank_b)
            windows = self._links.setdefault(pair, [])
            windows.append((fault.time, fault.end, fault.factor))
            windows.sort()
            self.active_links = True
        else:
            raise TypeError(f"overlay cannot arm {type(fault).__name__}")

    def compute_factor(self, rank: int, now: float) -> float:
        """Compound slowdown factor for ``rank`` at simulated time ``now``
        (1.0 when no straggler window is active)."""
        windows = self._stragglers.get(rank)
        if not windows:
            return 1.0
        factor = 1.0
        for start, end, f in windows:
            if start <= now < end:
                factor *= f
        return factor

    def stretch_compute(self, rank: int, start: float, duration: float) -> float:
        """Wall-clock cost of ``duration`` seconds of work starting at
        ``start`` on ``rank``: each piecewise-constant slowdown segment the
        work crosses stretches the portion done inside it.  Exactly
        ``duration`` when the rank has no windows (IEEE-exact: no
        arithmetic on the no-window path, so an armed-but-elsewhere
        overlay can never perturb digests)."""
        windows = self._stragglers.get(rank)
        if not windows or duration <= 0.0:
            return duration
        # Factor-change instants after the work begins, in order; the
        # compound factor is constant between consecutive bounds.
        bounds = sorted(
            {b for w in windows for b in (w[0], w[1]) if start < b < math.inf}
        )
        remaining = duration  # natural (undegraded) seconds of work left
        clock = start
        wall = 0.0
        for bound in bounds:
            if remaining <= 0.0:
                break
            factor = self.compute_factor(rank, clock)
            segment = bound - clock
            needed = remaining * factor
            if needed <= segment:
                wall += needed
                remaining = 0.0
                break
            wall += segment
            remaining -= segment / factor
            clock = bound
        if remaining > 0.0:
            wall += remaining * self.compute_factor(rank, clock)
        return wall

    def link_factor(self, src: int, dst: int, now: float) -> float:
        """Compound degradation factor for the undirected ``src <-> dst``
        link at simulated time ``now`` (1.0 when undegraded)."""
        pair = (src, dst) if src < dst else (dst, src)
        windows = self._links.get(pair)
        if not windows:
            return 1.0
        factor = 1.0
        for start, end, f in windows:
            if start <= now < end:
                factor *= f
        return factor
