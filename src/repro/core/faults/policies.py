"""Failure-injection policies for run segments.

The Table II experiments draw **one** failure per run segment, uniformly
over rank and over ``[0, 2 x MTTF_s)``
(:class:`~repro.core.faults.reliability.MttfInjectionPolicy`).  The paper's
future work (2) targets "developing component-based system reliability
models"; :class:`ReliabilityInjectionPolicy` is that generalisation: every
simulated node draws an independent time-to-failure from a component
reliability model (exponential or Weibull), and *every* draw that lands
within the horizon is injected — so a segment can suffer zero, one, or
several failures, with system-level failure statistics emerging from the
component model instead of being imposed.

Both policies implement the :class:`InjectionPolicy` protocol consumed by
:class:`~repro.core.restart.RestartDriver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.faults.reliability import (
    ExponentialReliability,
    MttfInjectionPolicy,
    WeibullReliability,
)
from repro.util.errors import ConfigurationError


class InjectionPolicy(Protocol):
    """Draws the failures to inject into one run segment."""

    def draw_segment(
        self, rng: np.random.Generator, nranks: int, horizon: float
    ) -> list[tuple[int, float]]:
        """(rank, time-relative-to-segment-start) pairs to arm.

        ``horizon`` bounds how far ahead draws are useful (times beyond it
        can never activate); policies may ignore it when their draw is
        naturally bounded.
        """
        ...


@dataclass(frozen=True)
class SingleUniformFailurePolicy:
    """The paper's Table II policy as an :class:`InjectionPolicy`:
    one uniform-rank failure at a uniform time within ``2 x MTTF_s``."""

    system_mttf: float

    def __post_init__(self) -> None:
        if self.system_mttf <= 0:
            raise ConfigurationError(f"system_mttf must be > 0, got {self.system_mttf}")

    def draw_segment(
        self, rng: np.random.Generator, nranks: int, horizon: float
    ) -> list[tuple[int, float]]:
        """One uniform (rank, time) pair; the horizon is ignored (the draw
        is bounded by 2 x MTTF by construction)."""
        rank, time = MttfInjectionPolicy(self.system_mttf).draw(rng, nranks)
        return [(rank, time)]


@dataclass(frozen=True)
class ReliabilityInjectionPolicy:
    """Component-model-driven injection (paper future work 2).

    Each rank's node draws an independent time-to-first-failure from
    ``component``; draws within the horizon are injected.  With
    exponential components of MTTF ``m``, the system MTTF is ``m / n`` —
    configure via :meth:`for_system_mttf` to target a system-level rate.
    """

    component: ExponentialReliability | WeibullReliability

    @classmethod
    def for_system_mttf(
        cls, system_mttf: float, nranks: int, shape: float | None = None
    ) -> "ReliabilityInjectionPolicy":
        """Exponential (or Weibull with ``shape``) components sized so the
        *system* mean-time-to-first-failure is ``system_mttf`` for an
        ``nranks``-node machine."""
        if system_mttf <= 0 or nranks < 1:
            raise ConfigurationError("need system_mttf > 0 and nranks >= 1")
        component_mttf = system_mttf * nranks
        if shape is None or shape == 1.0:
            return cls(ExponentialReliability(mttf=component_mttf))
        # Min of n iid Weibull(scale, k) ~ Weibull(scale * n^(-1/k), k);
        # invert for the component scale giving the target system MTTF.
        import math

        system_scale = system_mttf / math.gamma(1.0 + 1.0 / shape)
        scale = system_scale * nranks ** (1.0 / shape)
        return cls(WeibullReliability(scale=scale, shape=shape))

    def draw_segment(
        self, rng: np.random.Generator, nranks: int, horizon: float
    ) -> list[tuple[int, float]]:
        """Independent per-node time-to-failure draws within the horizon,
        sorted by time (zero, one, or many failures per segment)."""
        if nranks < 1 or horizon <= 0:
            raise ConfigurationError("need nranks >= 1 and horizon > 0")
        out: list[tuple[int, float]] = []
        for rank in range(nranks):
            ttf = self.component.draw_ttf(rng)
            if ttf < horizon:
                out.append((rank, float(ttf)))
        out.sort(key=lambda pair: pair[1])
        return out
