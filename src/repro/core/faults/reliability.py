"""Component/system reliability models and MTTF-driven failure placement.

Two layers:

* **Distributions** — :class:`ExponentialReliability` (constant hazard, the
  standard FIT-rate model HPC vendors quote) and
  :class:`WeibullReliability` (aging/infant-mortality shapes), the
  "component-based system reliability models" the paper's future work (2)
  targets.  A :class:`SystemReliability` composes per-node models into
  time-to-first-system-failure draws.
* **Placement policy** — :class:`MttfInjectionPolicy`, the paper's Table II
  configuration: "The MPI process failure location is chosen randomly,
  i.e., a random MPI rank within the total number of simulated MPI ranks
  and a random time within 2 * MTTF_s.  This evenly distributed simulated
  system MTTF applies to each application run separately, i.e., from start
  to finish/failure and from restart to finish/failure."  Note the drawn
  time may exceed the run's duration, in which case no failure activates —
  that is how rows with F smaller than the restart count arise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ExponentialReliability:
    """Constant-hazard component: time-to-failure ~ Exp(1/mttf).

    ``fit`` converts to/from the failures-in-time rate the paper mentions
    (failures expected in 1e9 hours of operation).
    """

    mttf: float

    def __post_init__(self) -> None:
        if self.mttf <= 0:
            raise ConfigurationError(f"mttf must be > 0, got {self.mttf}")

    @classmethod
    def from_fit(cls, fit: float) -> "ExponentialReliability":
        """Build from a FIT rate (failures per 1e9 hours)."""
        if fit <= 0:
            raise ConfigurationError(f"FIT rate must be > 0, got {fit}")
        return cls(mttf=1e9 * 3600.0 / fit)

    @property
    def fit(self) -> float:
        """Failures in 1e9 hours."""
        return 1e9 * 3600.0 / self.mttf

    def survival(self, t: float) -> float:
        """P(no failure before ``t``)."""
        return math.exp(-t / self.mttf)

    def hazard(self, t: float) -> float:  # noqa: ARG002 - constant by design
        """Instantaneous failure rate (constant for the exponential)."""
        return 1.0 / self.mttf

    def draw_ttf(self, rng: np.random.Generator) -> float:
        """Sample a time-to-failure."""
        return float(rng.exponential(self.mttf))


@dataclass(frozen=True)
class WeibullReliability:
    """Weibull time-to-failure: shape < 1 models infant mortality,
    shape > 1 models aging (both observed in HPC component studies)."""

    scale: float
    shape: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.shape <= 0:
            raise ConfigurationError(f"scale and shape must be > 0, got {self!r}")

    @property
    def mttf(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def survival(self, t: float) -> float:
        """P(no failure before ``t``)."""
        if t < 0:
            return 1.0
        return math.exp(-((t / self.scale) ** self.shape))

    def hazard(self, t: float) -> float:
        """Instantaneous failure rate (shape-dependent)."""
        if t <= 0:
            return 0.0 if self.shape > 1 else math.inf if self.shape < 1 else 1.0 / self.scale
        return (self.shape / self.scale) * (t / self.scale) ** (self.shape - 1.0)

    def draw_ttf(self, rng: np.random.Generator) -> float:
        """Sample a time-to-failure."""
        return float(self.scale * rng.weibull(self.shape))


@dataclass(frozen=True)
class SystemReliability:
    """N identical independent components; system fails at the first
    component failure.  For exponential components the system MTTF is
    ``component_mttf / n`` — the scaling argument behind the paper's
    exascale resilience concern."""

    component: ExponentialReliability | WeibullReliability
    ncomponents: int

    def __post_init__(self) -> None:
        if self.ncomponents < 1:
            raise ConfigurationError(f"ncomponents must be >= 1, got {self.ncomponents}")

    @property
    def system_mttf(self) -> float:
        if isinstance(self.component, ExponentialReliability):
            return self.component.mttf / self.ncomponents
        # First-order-statistics mean of n iid Weibulls has closed form:
        # min of Weibull(scale, shape) over n ~ Weibull(scale * n^(-1/shape), shape).
        scaled = WeibullReliability(
            scale=self.component.scale * self.ncomponents ** (-1.0 / self.component.shape),
            shape=self.component.shape,
        )
        return scaled.mttf

    def draw_first_failure(self, rng: np.random.Generator) -> tuple[int, float]:
        """(failing component index, failure time) of the earliest failure.

        Ties on the minimum TTF break to the *lowest* component index —
        explicitly, so the winner does not depend on any numpy version's
        ``argmin`` scan order.
        """
        ttfs = [self.component.draw_ttf(rng) for _ in range(self.ncomponents)]
        idx = min(range(self.ncomponents), key=lambda i: (ttfs[i], i))
        return idx, float(ttfs[idx])


@dataclass(frozen=True)
class MttfInjectionPolicy:
    """The paper's Table II placement: uniform rank, uniform time in
    ``[0, 2 * system_mttf)`` per run segment."""

    system_mttf: float

    def __post_init__(self) -> None:
        if self.system_mttf <= 0:
            raise ConfigurationError(f"system_mttf must be > 0, got {self.system_mttf}")

    def draw(self, rng: np.random.Generator, nranks: int) -> tuple[int, float]:
        """(rank, time-relative-to-segment-start).  The expectation of the
        drawn time equals the system MTTF, hence "evenly distributed
        simulated system MTTF"."""
        if nranks < 1:
            raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
        rank = int(rng.integers(0, nranks))
        time = float(rng.uniform(0.0, 2.0 * self.system_mttf))
        return rank, time
