"""Explicit MPI process failure schedules.

Paper §IV-B: "xSim additionally offers to pass a simulated MPI process
failure schedule in the form of rank/time pairs on the command line or via
an environment variable on startup.  This is the typical method for
injecting failures at this point."

The textual format is ``rank@time[,rank@time...]`` with times accepting the
unit suffixes of :func:`repro.util.units.parse_time`, e.g.::

    XSIM_FAILURES="3@100s,17@2500s" xsim-run ...
    xsim-run --xsim-failures "3@100s,17@2500s" ...

Times are *earliest* failure times, exactly as the simulator-internal
trigger function interprets them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.util.errors import ConfigurationError
from repro.util.units import parse_time

#: Environment variable consulted by :meth:`FailureSchedule.from_environment`.
ENV_VAR = "XSIM_FAILURES"


@dataclass(frozen=True)
class ScheduledFailure:
    """One rank/time pair."""

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"failure rank must be >= 0, got {self.rank}")
        if self.time < 0:
            raise ConfigurationError(f"failure time must be >= 0, got {self.time}")


@dataclass
class FailureSchedule:
    """An ordered collection of scheduled MPI process failures."""

    entries: list[ScheduledFailure] = field(default_factory=list)

    # -- construction ----------------------------------------------------
    @classmethod
    def of(cls, *pairs: tuple[int, float]) -> "FailureSchedule":
        """Build from ``(rank, time)`` tuples."""
        return cls([ScheduledFailure(r, float(t)) for r, t in pairs])

    @classmethod
    def parse(cls, text: str) -> "FailureSchedule":
        """Parse the ``rank@time,rank@time`` command-line format."""
        entries: list[ScheduledFailure] = []
        text = text.strip()
        if not text:
            return cls(entries)
        for item in text.split(","):
            item = item.strip()
            if "@" not in item:
                raise ConfigurationError(
                    f"bad failure schedule entry {item!r}; expected rank@time"
                )
            rank_s, time_s = item.split("@", 1)
            try:
                rank = int(rank_s)
            except ValueError as err:
                raise ConfigurationError(f"bad rank in {item!r}") from err
            entries.append(ScheduledFailure(rank, parse_time(time_s)))
        return cls(entries)

    @classmethod
    def from_environment(cls, environ: dict[str, str] | None = None) -> "FailureSchedule":
        """Read the schedule from the ``XSIM_FAILURES`` environment variable
        (empty schedule when unset)."""
        env = environ if environ is not None else os.environ
        return cls.parse(env.get(ENV_VAR, ""))

    # -- use -------------------------------------------------------------
    def add(self, rank: int, time: float) -> None:
        """Append one rank/time pair."""
        self.entries.append(ScheduledFailure(rank, float(time)))

    def extend(self, other: "FailureSchedule") -> None:
        """Append every entry of another schedule."""
        self.entries.extend(other.entries)

    def validate(self, nranks: int) -> None:
        """Reject entries targeting ranks outside an ``nranks`` job."""
        for e in self.entries:
            if e.rank >= nranks:
                raise ConfigurationError(
                    f"failure schedule targets rank {e.rank} but the job has {nranks} ranks"
                )

    def shifted(self, offset: float) -> "FailureSchedule":
        """Schedule with all times shifted by ``offset`` (restart segments
        interpret per-segment times relative to segment start)."""
        return FailureSchedule(
            [ScheduledFailure(e.rank, e.time + offset) for e in self.entries]
        )

    def render(self) -> str:
        """The canonical ``rank@time`` textual form."""
        return ",".join(f"{e.rank}@{e.time}" for e in self.entries)

    def __iter__(self) -> Iterator[ScheduledFailure]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)
