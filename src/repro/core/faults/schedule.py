"""Explicit fault schedules: fail-stop, straggler, link degrade, correlated.

Paper §IV-B: "xSim additionally offers to pass a simulated MPI process
failure schedule in the form of rank/time pairs on the command line or via
an environment variable on startup.  This is the typical method for
injecting failures at this point."

The textual format is a comma-separated list of entries; times accept the
unit suffixes of :func:`repro.util.units.parse_time`::

    3@100s                      fail-stop: rank 3 fails at t=100s
    straggler:3@100s+50s*2.5    rank 3 computes 2.5x slower for 50s
    straggler:3@100s*2.5        ... for the rest of the run
    link:0-1@10s+5s*4           link 0<->1 is 4x slower for 5s
    corr:5@200s~2               fail-stop rank 5 plus every rank within
                                2 topology hops of its node
    corr:5@200s~2+1s            ... with 1s of extra delay per hop

Fail-stop times are *earliest* failure times, exactly as the
simulator-internal trigger function interprets them.  Straggler and link
factors must be >= 1: slowdowns only, so the sharded engine's conservative
lookahead (derived from the *undegraded* network) stays a valid lower
bound.

Schedules are canonical: entries are deduplicated and kept sorted by
(time, kind, rank), so ``parse(render(s))`` is the identity and merging
two schedules via :meth:`FailureSchedule.extend` cannot double-inject a
repeated entry.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

from repro.util.errors import ConfigurationError
from repro.util.units import parse_time

#: Environment variable consulted by :meth:`FailureSchedule.from_environment`.
ENV_VAR = "XSIM_FAILURES"


def _fmt(value: float) -> str:
    """Canonical textual form of a time/factor (``inf`` never rendered)."""
    return repr(float(value))


@dataclass(frozen=True)
class ScheduledFailure:
    """One fail-stop rank/time pair."""

    rank: int
    time: float

    kind = "failstop"

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"failure rank must be >= 0, got {self.rank}")
        if self.time < 0:
            raise ConfigurationError(f"failure time must be >= 0, got {self.time}")

    def render(self) -> str:
        return f"{self.rank}@{_fmt(self.time)}"


@dataclass(frozen=True)
class StragglerFault:
    """Rank ``rank`` computes ``factor``x slower during [time, time+duration).

    An infinite ``duration`` (the default) degrades the rank for the rest
    of the run.  Only compute advances are scaled; communication costs and
    failure-notification propagation are unaffected.
    """

    rank: int
    time: float
    factor: float
    duration: float = math.inf

    kind = "straggler"

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"straggler rank must be >= 0, got {self.rank}")
        if self.time < 0:
            raise ConfigurationError(f"straggler time must be >= 0, got {self.time}")
        if not self.factor >= 1.0:
            raise ConfigurationError(
                f"straggler factor must be >= 1 (slowdowns only), got {self.factor}"
            )
        if not self.duration > 0:
            raise ConfigurationError(
                f"straggler duration must be > 0, got {self.duration}"
            )

    @property
    def end(self) -> float:
        return self.time + self.duration

    def render(self) -> str:
        window = "" if math.isinf(self.duration) else f"+{_fmt(self.duration)}"
        return f"straggler:{self.rank}@{_fmt(self.time)}{window}*{_fmt(self.factor)}"


@dataclass(frozen=True)
class LinkDegradeFault:
    """The undirected link ``rank_a <-> rank_b`` degrades by ``factor``
    during [time, time+duration): wire latency is multiplied and effective
    bandwidth divided by the factor (the whole per-message transfer cost
    scales by ``factor``)."""

    rank_a: int
    rank_b: int
    time: float
    factor: float
    duration: float = math.inf

    kind = "link_degrade"

    def __post_init__(self) -> None:
        if self.rank_a < 0 or self.rank_b < 0:
            raise ConfigurationError(
                f"link ranks must be >= 0, got {self.rank_a}-{self.rank_b}"
            )
        if self.rank_a == self.rank_b:
            raise ConfigurationError(
                f"link endpoints must differ, got {self.rank_a}-{self.rank_b}"
            )
        if self.time < 0:
            raise ConfigurationError(f"link-degrade time must be >= 0, got {self.time}")
        if not self.factor >= 1.0:
            raise ConfigurationError(
                f"link-degrade factor must be >= 1 (slowdowns only), got {self.factor}"
            )
        if not self.duration > 0:
            raise ConfigurationError(
                f"link-degrade duration must be > 0, got {self.duration}"
            )
        # Canonical endpoint order: lower rank first.
        if self.rank_a > self.rank_b:
            a, b = self.rank_b, self.rank_a
            object.__setattr__(self, "rank_a", a)
            object.__setattr__(self, "rank_b", b)

    @property
    def end(self) -> float:
        return self.time + self.duration

    def render(self) -> str:
        window = "" if math.isinf(self.duration) else f"+{_fmt(self.duration)}"
        return (
            f"link:{self.rank_a}-{self.rank_b}@{_fmt(self.time)}"
            f"{window}*{_fmt(self.factor)}"
        )


@dataclass(frozen=True)
class CorrelatedFailure:
    """Spatially clustered fail-stop (Cielo-style): the seed ``rank`` fails
    at ``time``, and every rank whose node is within ``radius`` topology
    hops of the seed's node fails ``spread`` seconds later per hop."""

    rank: int
    time: float
    radius: int
    spread: float = 0.0

    kind = "correlated"

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"correlated seed rank must be >= 0, got {self.rank}")
        if self.time < 0:
            raise ConfigurationError(f"correlated time must be >= 0, got {self.time}")
        if self.radius < 0:
            raise ConfigurationError(
                f"correlated radius must be >= 0, got {self.radius}"
            )
        if self.spread < 0:
            raise ConfigurationError(
                f"correlated spread must be >= 0, got {self.spread}"
            )

    def render(self) -> str:
        spread = "" if self.spread == 0.0 else f"+{_fmt(self.spread)}"
        return f"corr:{self.rank}@{_fmt(self.time)}~{self.radius}{spread}"


#: Any entry a :class:`FailureSchedule` can hold.
FaultEntry = Union[ScheduledFailure, StragglerFault, LinkDegradeFault, CorrelatedFailure]

_KIND_ORDER = {"failstop": 0, "correlated": 1, "straggler": 2, "link_degrade": 3}


def _sort_key(entry: FaultEntry):
    if isinstance(entry, LinkDegradeFault):
        ranks: tuple[int, ...] = (entry.rank_a, entry.rank_b)
    else:
        ranks = (entry.rank,)
    duration = getattr(entry, "duration", 0.0)
    magnitude = getattr(entry, "factor", float(getattr(entry, "radius", 0)))
    spread = getattr(entry, "spread", 0.0)
    return (entry.time, _KIND_ORDER[entry.kind], ranks, duration, magnitude, spread)


def _canonical(entries: Iterable[FaultEntry]) -> list[FaultEntry]:
    """Dedupe (first occurrence wins) and sort into canonical order."""
    seen: set[FaultEntry] = set()
    unique: list[FaultEntry] = []
    for e in entries:
        if e not in seen:
            seen.add(e)
            unique.append(e)
    unique.sort(key=_sort_key)
    return unique


def _parse_window(text: str, what: str) -> tuple[float, float, float]:
    """Parse ``T[+DUR]*FACTOR`` into (time, duration, factor)."""
    if "*" not in text:
        raise ConfigurationError(
            f"bad {what} entry {text!r}; expected time[+duration]*factor"
        )
    timepart, factor_s = text.rsplit("*", 1)
    try:
        factor = float(factor_s)
    except ValueError as err:
        raise ConfigurationError(f"bad factor in {what} entry {text!r}") from err
    if "+" in timepart:
        time_s, dur_s = timepart.split("+", 1)
        duration = parse_time(dur_s)
    else:
        time_s, duration = timepart, math.inf
    return parse_time(time_s), duration, factor


def _parse_rank(text: str, item: str) -> int:
    try:
        return int(text)
    except ValueError as err:
        raise ConfigurationError(f"bad rank in {item!r}") from err


@dataclass
class FailureSchedule:
    """A canonically ordered, duplicate-free collection of fault entries."""

    entries: list[FaultEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.entries = _canonical(self.entries)

    # -- construction ----------------------------------------------------
    @classmethod
    def of(cls, *pairs: tuple[int, float]) -> "FailureSchedule":
        """Build a fail-stop schedule from ``(rank, time)`` tuples."""
        return cls([ScheduledFailure(r, float(t)) for r, t in pairs])

    @classmethod
    def parse(cls, text: str) -> "FailureSchedule":
        """Parse the comma-separated command-line format (module docstring
        shows the per-kind grammar)."""
        entries: list[FaultEntry] = []
        text = text.strip()
        if not text:
            return cls(entries)
        for item in text.split(","):
            item = item.strip()
            entries.append(cls._parse_entry(item))
        return cls(entries)

    @staticmethod
    def _parse_entry(item: str) -> FaultEntry:
        if item.startswith("straggler:"):
            body = item[len("straggler:"):]
            if "@" not in body:
                raise ConfigurationError(
                    f"bad straggler entry {item!r}; expected "
                    "straggler:rank@time[+duration]*factor"
                )
            rank_s, rest = body.split("@", 1)
            time, duration, factor = _parse_window(rest, "straggler")
            return StragglerFault(_parse_rank(rank_s, item), time, factor, duration)
        if item.startswith("link:"):
            body = item[len("link:"):]
            if "@" not in body or "-" not in body.split("@", 1)[0]:
                raise ConfigurationError(
                    f"bad link entry {item!r}; expected "
                    "link:rankA-rankB@time[+duration]*factor"
                )
            pair_s, rest = body.split("@", 1)
            a_s, b_s = pair_s.split("-", 1)
            time, duration, factor = _parse_window(rest, "link")
            return LinkDegradeFault(
                _parse_rank(a_s, item), _parse_rank(b_s, item), time, factor, duration
            )
        if item.startswith("corr:"):
            body = item[len("corr:"):]
            if "@" not in body or "~" not in body:
                raise ConfigurationError(
                    f"bad correlated entry {item!r}; expected "
                    "corr:rank@time~radius[+spread]"
                )
            rank_s, rest = body.split("@", 1)
            time_s, radspec = rest.split("~", 1)
            if "+" in radspec:
                radius_s, spread_s = radspec.split("+", 1)
                spread = parse_time(spread_s)
            else:
                radius_s, spread = radspec, 0.0
            try:
                radius = int(radius_s)
            except ValueError as err:
                raise ConfigurationError(f"bad radius in {item!r}") from err
            return CorrelatedFailure(
                _parse_rank(rank_s, item), parse_time(time_s), radius, spread
            )
        if "@" not in item:
            raise ConfigurationError(
                f"bad failure schedule entry {item!r}; expected rank@time"
            )
        rank_s, time_s = item.split("@", 1)
        return ScheduledFailure(_parse_rank(rank_s, item), parse_time(time_s))

    @classmethod
    def from_environment(cls, environ: dict[str, str] | None = None) -> "FailureSchedule":
        """Read the schedule from the ``XSIM_FAILURES`` environment variable
        (empty schedule when unset)."""
        env = environ if environ is not None else os.environ
        return cls.parse(env.get(ENV_VAR, ""))

    # -- use -------------------------------------------------------------
    def add(self, rank: int, time: float) -> None:
        """Add one fail-stop rank/time pair (idempotent: a duplicate of an
        existing entry is dropped)."""
        self.add_entry(ScheduledFailure(rank, float(time)))

    def add_entry(self, entry: FaultEntry) -> None:
        """Add one fault entry, keeping the schedule canonical."""
        self.entries = _canonical(self.entries + [entry])

    def extend(self, other: "FailureSchedule") -> None:
        """Merge another schedule in (duplicates collapse instead of
        double-injecting)."""
        self.entries = _canonical(self.entries + other.entries)

    def validate(self, nranks: int) -> None:
        """Reject entries targeting ranks outside an ``nranks`` job, and
        any rank scheduled to fail more than once."""
        failing: dict[int, FaultEntry] = {}
        for e in self.entries:
            ranks = (
                (e.rank_a, e.rank_b) if isinstance(e, LinkDegradeFault) else (e.rank,)
            )
            for rank in ranks:
                if rank >= nranks:
                    raise ConfigurationError(
                        f"failure schedule targets rank {rank} but the job "
                        f"has {nranks} ranks"
                    )
            if isinstance(e, (ScheduledFailure, CorrelatedFailure)):
                prior = failing.get(e.rank)
                if prior is not None:
                    raise ConfigurationError(
                        f"rank {e.rank} is scheduled to fail twice "
                        f"({prior.render()!r} and {e.render()!r}); a rank "
                        "can fail at most once per run segment"
                    )
                failing[e.rank] = e

    def shifted(self, offset: float) -> "FailureSchedule":
        """Schedule with all times shifted by ``offset`` (restart segments
        interpret per-segment times relative to segment start)."""
        import dataclasses

        return FailureSchedule(
            [dataclasses.replace(e, time=e.time + offset) for e in self.entries]
        )

    def render(self) -> str:
        """The canonical textual form (``parse`` round-trips it)."""
        return ",".join(e.render() for e in self.entries)

    def __iter__(self) -> Iterator[FaultEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)


def expand_correlated(
    fault: CorrelatedFailure, network, nranks: int
) -> list[tuple[int, float]]:
    """Expand a correlated failure into concrete (rank, time) fail-stops:
    every rank whose node is within ``fault.radius`` hops of the seed's
    node, delayed by ``spread`` per hop.  Sorted by rank; overlaps with
    other schedule entries resolve to the earliest failure time in the
    engine."""
    out: list[tuple[int, float]] = []
    for rank in range(nranks):
        hops = network.hops(fault.rank, rank)
        if hops <= fault.radius:
            out.append((rank, fault.time + hops * fault.spread))
    return out
