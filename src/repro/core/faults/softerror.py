"""Soft-error (bit flip) injection into simulated process memory.

The paper's future work (1): "injecting soft errors", enabled by "the
tracking of dynamic memory allocation of simulated MPI processes, which was
the last piece needed to develop a soft error injector."

A flip targets one uniformly random bit of the victim rank's tracked live
footprint (:class:`repro.models.memory.MemoryTracker`).  Its effect follows
the hit region's kind:

* ``CRITICAL`` (pointers, code, runtime state) — the process crashes: a
  process failure is armed at the flip time and activates at the rank's
  next simulator control point, feeding the ordinary failure
  detection/notification/abort machinery;
* ``DATA`` — silent data corruption: if the region is backed by a real
  numpy array the bit is *really* flipped, so applications running in
  real-data mode propagate the corruption through their computation (the
  redMPI-style experiments);
* ``UNUSED`` — benign.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.models.memory import FlipRecord, MemoryTracker, RegionKind
from repro.pdes.engine import Engine
from repro.util.errors import ConfigurationError


class Effect(enum.Enum):
    """Observable consequence of one injected bit flip."""

    CRASH = "crash"
    SDC = "sdc"
    BENIGN = "benign"
    NO_TARGET = "no-target"
    """The victim was already dead or had no tracked memory."""


@dataclass(frozen=True)
class SoftErrorOutcome:
    """One injected flip and its consequence."""

    time: float
    rank: int
    effect: Effect
    record: FlipRecord | None


@dataclass
class SoftErrorInjector:
    """Schedules bit flips into a running simulation.

    Attach one injector per :class:`~repro.pdes.engine.Engine`; outcomes
    accumulate in :attr:`outcomes` for post-run analysis.
    """

    engine: Engine
    memory: MemoryTracker
    rng: np.random.Generator
    #: When False, CRITICAL hits are recorded but do not kill the process
    #: (Finject-style counting experiments).
    crash_on_critical: bool = True
    outcomes: list[SoftErrorOutcome] = field(default_factory=list)

    def schedule_flip(self, rank: int, time: float) -> None:
        """Inject one flip into ``rank`` at virtual ``time``."""
        if time < self.engine.start_time:
            raise ConfigurationError(
                f"flip time {time} precedes simulation start {self.engine.start_time}"
            )
        self.engine.schedule(time, self._do_flip, rank, time)

    def schedule_poisson(
        self, rate_per_rank: float, horizon: float, ranks: list[int] | None = None
    ) -> int:
        """Inject flips as independent Poisson processes (``rate_per_rank``
        flips/second per rank) over ``[start, start + horizon)``.

        Returns the number of scheduled flips.
        """
        if rate_per_rank < 0 or horizon <= 0:
            raise ConfigurationError("need rate >= 0 and horizon > 0")
        targets = ranks if ranks is not None else list(range(len(self.engine.vps)))
        if not targets:
            raise ConfigurationError(
                "no target ranks: pass ranks= explicitly when scheduling "
                "before the job is launched"
            )
        count = 0
        start = self.engine.start_time
        for rank in targets:
            t = start
            while True:
                t += float(self.rng.exponential(1.0 / rate_per_rank)) if rate_per_rank > 0 else horizon
                if t >= start + horizon:
                    break
                self.schedule_flip(rank, t)
                count += 1
        return count

    # ------------------------------------------------------------------
    def _do_flip(self, rank: int, time: float) -> None:
        vp = self.engine.vps[rank] if rank < len(self.engine.vps) else None
        if vp is None or not vp.alive or self.memory.footprint(rank) == 0:
            self.outcomes.append(SoftErrorOutcome(time, rank, Effect.NO_TARGET, None))
            return
        record = self.memory.flip_random_bit(rank, self.rng)
        if record.kind is RegionKind.CRITICAL:
            effect = Effect.CRASH
            if self.crash_on_critical:
                self.engine.log.log(
                    time, "soft-error", f"bit flip in critical region {record.region!r}", rank=rank
                )
                self.engine.schedule_failure(rank, time)
        elif record.kind is RegionKind.DATA:
            effect = Effect.SDC
        else:
            effect = Effect.BENIGN
        self.outcomes.append(SoftErrorOutcome(time, rank, effect, record))

    # ------------------------------------------------------------------
    def counts(self) -> dict[Effect, int]:
        """Outcome histogram of the campaign so far."""
        out: dict[Effect, int] = {e: 0 for e in Effect}
        for o in self.outcomes:
            out[o.effect] += 1
        return out
