"""Experiment harness: system configuration, runners, and reports.

* :mod:`repro.core.harness.config` — :class:`SystemConfig`, the single
  declarative description of the simulated machine (the paper's 32,768-node
  3-D torus with its link, protocol, and processor parameters), plus the
  scaled variants the default benchmarks use.
* :mod:`repro.core.harness.experiment` — drivers regenerating the paper's
  Table II (checkpoint interval x system MTTF) and the First Impressions
  failure-mode observations.
* :mod:`repro.core.harness.report` — table formatting with side-by-side
  paper-reported values.
* :mod:`repro.core.harness.metrics` — the resilience cost/benefit metrics
  (efficiency, waste breakdown, availability, application MTTF).
* :mod:`repro.core.harness.serialize` — JSON/CSV export of results.
"""

from repro.core.harness.config import SystemConfig
from repro.core.harness.metrics import ResilienceMetrics, compute_metrics
from repro.core.harness.experiment import (
    Table2Cell,
    Table2Config,
    run_table2,
    run_table2_row,
)
from repro.core.harness.report import format_table, render_table2
from repro.core.harness.serialize import (
    failure_run_record,
    simulation_result_record,
    table2_records,
    to_csv,
    to_json,
)

__all__ = [
    "ResilienceMetrics",
    "SystemConfig",
    "compute_metrics",
    "Table2Cell",
    "Table2Config",
    "format_table",
    "render_table2",
    "run_table2",
    "run_table2_row",
    "failure_run_record",
    "simulation_result_record",
    "table2_records",
    "to_csv",
    "to_json",
]
