"""Benchmark measurement helpers behind ``xsim-run bench`` and
``benchmarks/test_scaling.py``.

Two measurements share this module:

* :func:`run_scaling` — the PDES hot-path throughput sweep (events/sec per
  simulated-rank scale, with the engine's hot-path counters);
* :func:`measure_sharded` — serial vs ``--shards N`` on one simulation,
  the figure of merit of the sharded conservative-parallel engine.

Both write into ``BENCH_pdes.json`` at the repository root (see
:func:`write_bench` / :func:`merge_bench`).

Honest measurement on small hosts
---------------------------------
A sharded run's *wall-clock* speedup requires one real core per shard; on
hosts with fewer cores the forked workers timeshare and the wall number
reflects scheduling, not the partition.  The coordinator therefore
measures, per window round, each participating worker's wall time; the sum
of per-round *maxima* is the partition's critical path — what the wall
clock would be with one core per shard and zero coordination cost.  The
``inline`` transport runs every worker in one process (no preemption
between concurrently-outstanding workers), so its critical path is a clean
projection even on a single-core host.  Records carry ``host_cpus`` so the
two speedup figures (``speedup_wall`` vs ``projected_speedup``) can be
interpreted; the wall figure is only asserted against when the host
actually has the cores.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.apps.heat3d import HeatConfig, heat3d
from repro.core.checkpoint.store import CheckpointStore
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.util.profiling import EngineProfiler

#: Default throughput-sweep scales (simulated MPI ranks).
SCALES = (64, 512, 4096)

#: Pre-optimization (seed) throughput of the 512-rank run, measured on the
#: optimization host as the best of interleaved seed/optimized runs
#: (min-of-5 per process, alternated to cancel machine drift).  Kept as a
#: reference point in BENCH_pdes.json; absolute events/sec is host-
#: dependent, the ratio on one host is what the optimization pass claims.
SEED_BASELINE_512 = {"events": 38121, "host_s": 0.337, "events_per_sec": 113119.0}

#: The authoritative speedup measurement: six alternated seed/optimized
#: process pairs (min-of-5 each) on the optimization host.  Pairing is
#: what makes the ratio trustworthy — the host's throughput drifts up to
#: ~30% over minutes, so a live run compared against the frozen baseline
#: above conflates machine drift with the optimization.  Per-round ratios
#: ranged 1.33-1.70; best-vs-best is quoted.  Identical results in every
#: run: events=38121, exit_time=5250.932204.
PAIRED_AB_512 = {
    "method": "interleaved seed/optimized processes, min-of-5 each, 6 rounds",
    "seed_best_s": 0.337,
    "optimized_best_s": 0.224,
    "speedup": 1.504,
}

BENCH_PATH = Path(__file__).resolve().parents[4] / "BENCH_pdes.json"


def rate(events: int, seconds: float) -> float:
    """events/sec with the same zero-wall guard as
    :attr:`~repro.util.profiling.ProfileReport.events_per_sec` (a
    sub-resolution ``perf_counter`` delta must read as 0, not raise)."""
    return events / seconds if seconds > 0 else 0.0


def run_scale(
    nranks: int,
    repeats: int = 1,
    checkpoint_interval: int = 500,
    engine: str = "heap",
) -> dict:
    """One serial throughput measurement (best of ``repeats``)."""
    best = None
    for _ in range(repeats):
        system = SystemConfig.paper_system(nranks=nranks)
        wl = HeatConfig.paper_workload(
            checkpoint_interval=checkpoint_interval, nranks=nranks
        )
        sim = XSim(system, engine=engine)
        t0 = time.perf_counter()
        with EngineProfiler(sim.engine, world=sim.world) as prof:
            result = sim.run(heat3d, args=(wl, CheckpointStore()))
        host = time.perf_counter() - t0
        if not result.completed:
            raise RuntimeError(f"bench run at {nranks} ranks did not complete")
        if best is None or host < best["host_s"]:
            profile = prof.report().as_record()
            profile.pop("phases", None)
            best = {
                "events": result.event_count,
                "host_s": host,
                "e1": result.exit_time,
                "profile": profile,
            }
    return best


def run_scaling(
    scales=SCALES,
    reference_scale: int = 512,
    reference_repeats: int = 5,
    engine: str = "heap",
):
    """The throughput sweep: ``{nranks: run_scale(...)}`` per scale."""
    return {
        n: run_scale(
            n,
            repeats=reference_repeats if n == reference_scale else 1,
            engine=engine,
        )
        for n in scales
    }


def measure_cores(nranks: int = 512, repeats: int = 3, rounds: int = 3) -> dict:
    """Paired heap-vs-flat A/B at one scale: the two cores alternate
    within one session (min-of-``repeats`` per round, best across
    ``rounds``), cancelling host drift the same way ``PAIRED_AB_512``
    did for the seed comparison.  Asserts the runs are event-identical
    before reporting any throughput."""
    best: dict[str, dict] = {}
    for _ in range(rounds):
        for core in ("heap", "flat"):
            r = run_scale(nranks, repeats=repeats, engine=core)
            if core not in best or r["host_s"] < best[core]["host_s"]:
                best[core] = r
    if best["heap"]["events"] != best["flat"]["events"] or (
        best["heap"]["e1"] != best["flat"]["e1"]
    ):
        raise RuntimeError(
            "heap/flat runs diverged: "
            f"{best['heap']['events']}/{best['heap']['e1']} vs "
            f"{best['flat']['events']}/{best['flat']['e1']}"
        )
    heap_rate = rate(best["heap"]["events"], best["heap"]["host_s"])
    flat_rate = rate(best["flat"]["events"], best["flat"]["host_s"])
    return {
        "nranks": nranks,
        "method": f"interleaved heap/flat, min-of-{repeats} each, {rounds} rounds",
        "events": best["heap"]["events"],
        "heap": {
            "host_s": round(best["heap"]["host_s"], 4),
            "events_per_sec": round(heap_rate, 1),
            "profile": best["heap"]["profile"],
        },
        "flat": {
            "host_s": round(best["flat"]["host_s"], 4),
            "events_per_sec": round(flat_rate, 1),
            "profile": best["flat"]["profile"],
        },
        "flat_vs_heap": round(flat_rate / heap_rate, 3) if heap_rate > 0 else 0.0,
        "note": (
            "the two cores are digest-identical (flat-parity simcheck); "
            "measured throughput is parity within host noise (0.85-1.1x "
            "across sessions) — CPython's small-tuple free lists make the "
            "heap core's per-event tuples nearly free, so the slab pool's "
            "win is bounded steady-state memory (free-list reuse ~100%, "
            "zero allocation after the peak) and pool/batch observability, "
            "not raw speed; CI enforces flat_vs_heap >= 0.7 as a "
            "regression floor, not a speedup claim"
        ),
    }


def full_scale_record(checkpoint_interval: int = 500, engine: str = "flat") -> dict:
    """The paper-exact 32,768-rank benchmark entry (guarded behind
    ``XSIM_FULL_SCALE=1`` in the CLI/CI because it takes tens of
    seconds): one serial run at the Table II operating point."""
    r = run_scale(32768, repeats=1, checkpoint_interval=checkpoint_interval, engine=engine)
    return {
        "nranks": 32768,
        "engine": engine,
        "checkpoint_interval": checkpoint_interval,
        "events": r["events"],
        "host_s": round(r["host_s"], 4),
        "events_per_sec": round(rate(r["events"], r["host_s"]), 1),
        "e1": r["e1"],
        "profile": r["profile"],
    }


def scaling_record(results: dict) -> dict:
    """The BENCH_pdes.json body for a :func:`run_scaling` result."""
    ref = results[512]
    ref_rate = rate(ref["events"], ref["host_s"])
    return {
        "benchmark": "pdes-hot-path",
        "workload": "heat3d paper_workload, checkpoint_interval=500",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host_cpus": os.cpu_count(),
        "scales": {
            str(n): {
                "events": r["events"],
                "host_s": round(r["host_s"], 4),
                "events_per_sec": round(rate(r["events"], r["host_s"]), 1),
                "e1": r["e1"],
                "profile": r["profile"],
            }
            for n, r in results.items()
        },
        "reference_scale": 512,
        "events_per_sec": round(ref_rate, 1),
        "seed_baseline_512": SEED_BASELINE_512,
        "speedup_vs_seed": round(ref_rate / SEED_BASELINE_512["events_per_sec"], 3),
        "paired_ab_512": PAIRED_AB_512,
        "note": (
            "paired_ab_512 is the authoritative optimization-pass figure "
            "(seed and optimized alternated within one session, cancelling "
            "machine drift); speedup_vs_seed compares this live run against "
            "the frozen baseline and moves with host load — compare it only "
            "within one host and machine state"
        ),
    }


def measure_sharded(
    nranks: int = 4096,
    shards: int = 4,
    collective_algorithm: str = "tree",
    transports: tuple = ("inline", "fork", "shm"),
    checkpoint_interval: int = 500,
) -> dict:
    """Serial vs sharded on one simulation; see the module docstring.

    ``tree`` collectives are the default scenario: with the paper's
    ``linear`` algorithm the barrier root serializes O(nranks) releases
    2.6 ms apart in virtual time, an application-structure bottleneck
    (Amdahl) that caps any parallel engine near ~1.6x regardless of shard
    count — itself a co-design observation the record keeps visible via
    ``parallelism``/``imbalance``.

    Every transport's ``result_digest`` is asserted bit-identical to the
    serial run's before any throughput is reported.
    """
    from repro.core.harness.experiment import result_digest

    def build(**kw):
        system = SystemConfig.paper_system(
            nranks=nranks, collective_algorithm=collective_algorithm
        )
        wl = HeatConfig.paper_workload(
            checkpoint_interval=checkpoint_interval, nranks=nranks
        )
        return XSim(system, **kw), wl

    sim, wl = build()
    t0 = time.perf_counter()
    serial = sim.run(heat3d, args=(wl, CheckpointStore()))
    serial_s = time.perf_counter() - t0
    serial_digest = result_digest(serial)

    record: dict[str, Any] = {
        "nranks": nranks,
        "shards": shards,
        "collectives": collective_algorithm,
        "host_cpus": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "events": serial.event_count,
        "result_digest": serial_digest,
        "transports": {},
    }
    for transport in transports:
        sim2, wl2 = build(shards=shards, shard_transport=transport)
        t0 = time.perf_counter()
        res = sim2.run(heat3d, args=(wl2, CheckpointStore()))
        wall = time.perf_counter() - t0
        if result_digest(res) != serial_digest:
            raise RuntimeError(
                f"{transport} sharded run digest {result_digest(res)} != "
                f"serial {serial_digest} — parity broken"
            )
        st = sim2.shard_stats
        record["transports"][transport] = {
            "wall_s": round(wall, 4),
            "speedup_wall": round(serial_s / wall, 3) if wall > 0 else 0.0,
            "windows": st.windows,
            "lockstep_rounds": st.lockstep_rounds,
            "critical_path_s": round(st.critical_path_seconds, 4),
            "worker_busy_s": round(st.worker_busy_seconds, 4),
            "barrier_s": round(st.barrier_seconds, 4),
            "parallelism": round(st.parallelism, 3),
            "imbalance": round(st.imbalance, 3),
            "cross_shard_messages": st.cross_shard_messages,
            "lookahead_min": st.lookahead,
            "lookahead_max": st.lookahead_max,
            "digest_matches_serial": True,
            "projected_speedup": round(serial_s / st.critical_path_seconds, 3)
            if st.critical_path_seconds > 0
            else None,
        }
    # Headline figures: wall from the fastest transport (meaningful when
    # host_cpus >= shards), projection from the inline transport (its
    # per-round worker walls are preemption-free on any host).
    walls = {t: r["speedup_wall"] for t, r in record["transports"].items()}
    record["speedup_wall"] = max(walls.values())
    proj_src = "inline" if "inline" in record["transports"] else transports[0]
    record["projected_speedup"] = record["transports"][proj_src]["projected_speedup"]
    proj = record["projected_speedup"] or 0.0
    record["measured_vs_projected"] = (
        round(record["speedup_wall"] / proj, 3) if proj > 0 else 0.0
    )
    record["note"] = (
        "speedup_wall needs host_cpus >= shards to reflect the engine; "
        "projected_speedup = serial_s / critical_path_s (sum of per-round "
        "slowest-worker wall times, measured without worker preemption on "
        "the inline transport) — the wall speedup a host with one core per "
        "shard would observe, minus coordination costs; the CI speedup job "
        "enforces measured_vs_projected >= 0.8 on hosts with >= shards cores"
    )
    return record


def measure_cache(
    nranks: int = 64,
    iterations: int = 400,
    grid: "dict | None" = None,
    cache_dir: "str | None" = None,
) -> dict:
    """Cold-vs-warm A/B of one sweep through the content-addressed result
    cache (``repro.cache``): the cold pass computes and stores every cell,
    the warm pass re-runs the identical matrix and must answer every cell
    by lookup with bit-identical digests.  The figure of merit is
    ``speedup`` (cold wall / warm wall) and the warm pass's 100% hit
    rate; ``lookup`` carries the per-process cache counters so the warm
    cost (mean lookup latency) is visible next to the win.
    """
    import shutil
    import tempfile

    from repro.cache.store import ResultCache
    from repro.run.scenario import Scenario
    from repro.run.sweep import run_sweep

    # Direct construction (not .resolve): the benchmark cell set must not
    # shift with ambient XSIM_* variables.
    base = Scenario(ranks=nranks, iterations=iterations, interval=100)
    grid = {"interval": [50, 100, 200], "seed": [0, 1]} if grid is None else grid
    root = Path(tempfile.mkdtemp(prefix="xsim-cache-bench-")) if cache_dir is None else Path(cache_dir)
    try:
        cold_cache = ResultCache(root)
        t0 = time.perf_counter()
        cold = run_sweep(base, grid, cache=cold_cache)
        cold_s = time.perf_counter() - t0
        # Fresh handle on the same store: warm counters start at zero.
        warm_cache = ResultCache(root)
        t0 = time.perf_counter()
        warm = run_sweep(base, grid, cache=warm_cache)
        warm_s = time.perf_counter() - t0
        digests_equal = [s["result_digest"] for _, s in cold] == [
            s["result_digest"] for _, s in warm
        ]
        hits = sum(1 for _, s in warm if s.get("cached"))
        cells = len(cold)
        return {
            "benchmark": "result-cache",
            "workload": f"heat3d sweep, {cells} cells at {nranks} ranks",
            "cells": cells,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(cold_s / warm_s, 1) if warm_s > 0 else None,
            "hit_rate": round(hits / cells, 4) if cells else 0.0,
            "digests_equal": digests_equal,
            "cache_bytes": cold_cache.index_stats()["bytes"],
            "lookup": warm_cache.stats.as_record(),
            "note": (
                "cold computes and stores every cell, warm re-runs the "
                "identical matrix; every warm cell must be a lookup "
                "(hit_rate 1.0) with digests byte-equal to the cold pass — "
                "the cache-parity simcheck enforces the same property per "
                "scenario, including across serial/sharded backends"
            ),
        }
    finally:
        if cache_dir is None:
            shutil.rmtree(root, ignore_errors=True)


def merge_bench(update: dict, path: Path = BENCH_PATH) -> dict:
    """Merge ``update`` keys into the existing BENCH_pdes.json (if any)."""
    record = {}
    if path.exists():
        try:
            record = json.loads(path.read_text())
        except ValueError:
            record = {}
    record.update(update)
    write_bench(record, path)
    return record


def write_bench(record: dict, path: Path = BENCH_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n")
