"""Declarative configuration of the simulated machine.

:class:`SystemConfig` collects every knob of the simulated system —
topology, link parameters, protocol thresholds, per-message software
overheads, processor slowdown, collective algorithm family, file-system and
power models — and builds the model objects.  The paper's exact machine is
:meth:`SystemConfig.paper_system`:

    "The simulated future HPC system is configured with 32,768 (2^15)
    nodes organized in a 32x32x32 3-D wrapped torus with 1 us link latency
    and 32 GB/s link bandwidth. ... each simulated MPI rank is placed on
    one simulated compute node.  The simulated eager communication
    threshold is set to 256 kB ... MPI collectives utilize linear
    algorithms.  For demonstration purposes, the simulated compute node is
    operating at a speed 1000x slower than a single 1.7 GHz AMD Opteron
    6164 HE core."

Calibration note: the per-message software overheads (paid on the
1000x-slowed node CPU, hence milliseconds of simulated time per message)
are the free parameter that sets the cost of the linear-algorithm barrier
at 32,768 ranks, and with it the checkpoint-phase overhead visible in the
paper's E1 column.  The default of 2.6 us native per message puts the
full-scale per-phase cost near the paper's observed range (see
EXPERIMENTS.md for the per-cell comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from repro.models.filesystem import FileSystemModel
from repro.models.network.model import NetworkModel
from repro.models.network.topology import (
    CrossbarTopology,
    FatTreeTopology,
    MeshTopology,
    StarTopology,
    Topology,
    TorusTopology,
)
from repro.models.power import PowerModel
from repro.models.processor import ProcessorModel
from repro.util.errors import ConfigurationError


def balanced_dims(nnodes: int, ndims: int = 3) -> tuple[int, ...]:
    """Near-cubic grid dimensions whose product is at least ``nnodes``.

    Perfect powers factor exactly (32768 -> (32, 32, 32)); otherwise each
    dimension is shrunk greedily while capacity still suffices.
    """
    if nnodes < 1 or ndims < 1:
        raise ConfigurationError("need nnodes >= 1 and ndims >= 1")
    k = max(1, math.ceil(nnodes ** (1.0 / ndims)))
    dims = [k] * ndims
    for i in range(ndims):
        while dims[i] > 1:
            dims[i] -= 1
            if math.prod(dims) < nnodes:
                dims[i] += 1
                break
    return tuple(dims)


def validate_dims(dims: tuple[int, ...], kind: str, nnodes: int) -> None:
    """Reject an explicit topology-dims grid that cannot hold ``nnodes``.

    Torus/mesh grids need ``prod(dims) >= nnodes``; a fat tree's dims are
    ``(arity, levels)`` and need ``arity ** levels >= nnodes``; star and
    crossbar topologies are sized by the node count alone and take no
    dims.  Raises :class:`~repro.util.errors.ConfigurationError` with the
    inconsistency spelled out.
    """
    if any(d < 1 for d in dims):
        raise ConfigurationError(f"topology dims must be >= 1, got {dims}")
    if kind in ("torus", "mesh"):
        capacity = math.prod(dims)
        if capacity < nnodes:
            raise ConfigurationError(
                f"dims {'x'.join(map(str, dims))} hold {capacity} nodes but the "
                f"job needs {nnodes}; increase the dims or lower the rank count"
            )
        return
    if kind == "fattree":
        if len(dims) != 2:
            raise ConfigurationError(
                f"fattree dims are (arity, levels); got {len(dims)} values"
            )
        arity, levels = dims
        if arity < 2:
            raise ConfigurationError(f"fattree arity must be >= 2, got {arity}")
        if arity**levels < nnodes:
            raise ConfigurationError(
                f"fattree {arity}^{levels} holds {arity ** levels} nodes but "
                f"the job needs {nnodes}"
            )
        return
    raise ConfigurationError(
        f"topology {kind!r} is sized by the rank count and takes no dims"
    )


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build the simulated machine's models."""

    nranks: int
    topology_kind: str = "torus"
    #: Grid dims for torus/mesh, (arity, levels) for fattree; None derives
    #: near-cubic dims from the node count.
    topology_dims: tuple[int, ...] | None = None
    ranks_per_node: int = 1
    chips_per_node: int = 1
    link_latency: Any = "1us"
    link_bandwidth: Any = "32GB/s"
    eager_threshold: Any = "256kB"
    #: Native (unscaled) per-message software overheads; the simulated
    #: node pays these scaled by ``slowdown``.
    send_overhead_native: float = 2.6e-6
    recv_overhead_native: float = 2.6e-6
    detection_timeout: Any = "10s"
    reference_hz: float = 1.7e9
    slowdown: float = 1000.0
    collective_algorithm: str = "linear"
    congestion_factor: float = 1.0
    filesystem: FileSystemModel = field(default_factory=FileSystemModel.disabled)
    power: PowerModel = field(default_factory=PowerModel)
    strict_finalize: bool = True

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ConfigurationError(f"nranks must be >= 1, got {self.nranks}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_system(cls, nranks: int = 32768, **overrides: Any) -> "SystemConfig":
        """The paper's simulated machine, optionally scaled down.

        With ``nranks != 32768`` the torus is re-dimensioned near-cubically
        while all other parameters stay at the paper's values.
        """
        dims: tuple[int, ...] | None = (32, 32, 32) if nranks == 32768 else None
        base = cls(nranks=nranks, topology_kind="torus", topology_dims=dims)
        return replace(base, **overrides) if overrides else base

    @classmethod
    def small_test_system(cls, nranks: int = 8, **overrides: Any) -> "SystemConfig":
        """A tiny fast machine for unit tests: no software overheads, no
        slowdown, short detection timeout."""
        base = cls(
            nranks=nranks,
            send_overhead_native=0.0,
            recv_overhead_native=0.0,
            detection_timeout="1s",
            slowdown=1.0,
        )
        return replace(base, **overrides) if overrides else base

    def scaled(self, **overrides: Any) -> "SystemConfig":
        """Copy with field overrides (convenience wrapper)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # model builders
    # ------------------------------------------------------------------
    @property
    def nnodes(self) -> int:
        return math.ceil(self.nranks / self.ranks_per_node)

    def make_topology(self) -> Topology:
        """Build the interconnect topology object."""
        kind = self.topology_kind
        if self.topology_dims is not None:
            validate_dims(tuple(self.topology_dims), kind, self.nnodes)
        if kind == "torus":
            return TorusTopology(self.topology_dims or balanced_dims(self.nnodes))
        if kind == "mesh":
            return MeshTopology(self.topology_dims or balanced_dims(self.nnodes))
        if kind == "fattree":
            if self.topology_dims is not None:
                arity, levels = self.topology_dims
            else:
                arity = 16
                levels = max(1, math.ceil(math.log(self.nnodes, arity)))
            return FatTreeTopology(arity=arity, levels=levels)
        if kind == "star":
            return StarTopology(self.nnodes)
        if kind == "crossbar":
            return CrossbarTopology(self.nnodes)
        raise ConfigurationError(f"unknown topology kind {self.topology_kind!r}")

    def make_network(self) -> NetworkModel:
        """Build the communication cost model (overheads pre-scaled)."""
        return NetworkModel(
            self.make_topology(),
            latency=self.link_latency,
            bandwidth=self.link_bandwidth,
            eager_threshold=self.eager_threshold,
            send_overhead=self.send_overhead_native * self.slowdown,
            recv_overhead=self.recv_overhead_native * self.slowdown,
            detection_timeout=self.detection_timeout,
            ranks_per_node=self.ranks_per_node,
            chips_per_node=self.chips_per_node,
            congestion_factor=self.congestion_factor,
        )

    def make_processor(self) -> ProcessorModel:
        """Build the node speed model."""
        return ProcessorModel(reference_hz=self.reference_hz, slowdown=self.slowdown)
