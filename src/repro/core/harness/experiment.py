"""Experiment drivers regenerating the paper's evaluation.

* :func:`run_table2` / :func:`run_table2_row` — Table II ("Varying the
  checkpoint interval and system MTTF"): the heat application at a given
  scale, checkpoint interval C in {500, 250, 125} (plus the C=1000
  baseline), system MTTF in {6000 s, 3000 s}; columns E1 (simulated
  execution time without failures), E2 (with failures and restarts), F
  (activated failures), MTTF_a = E2/(F+1).
* :func:`observe_failure_mode` — the §V-D "First Impressions"
  observations: where a failure injected into a given phase is *detected*
  (halo exchange vs. barrier) and what it leaves behind in the checkpoint
  store (corrupted file, incomplete set, partially deleted old set).
* :func:`result_digest` — canonical per-run fingerprint (exit times, event
  counts, failures) used by the simcheck differential harness to assert
  bit-identical outcomes across execution modes.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.checkpoint.store import CheckpointStore
from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig
from repro.core.restart import FailureRunResult, RestartDriver
from repro.core.simulator import XSim
from repro.pdes.engine import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - the app package imports this module
    from repro.apps.heat3d import HeatConfig

#: The paper's Table II, row-keyed by (system MTTF or None, checkpoint
#: interval): (E1, E2, F, MTTF_a); None marks cells the paper leaves empty.
PAPER_TABLE2: dict[tuple[float | None, int], tuple[float, float | None, int, float | None]] = {
    (None, 1000): (5248.0, None, 0, None),
    (6000.0, 500): (5258.0, 7957.0, 1, 3978.0),
    (6000.0, 250): (6377.0, 7074.0, 1, 3537.0),
    (6000.0, 125): (6601.0, 6750.0, 1, 3375.0),
    (3000.0, 500): (5258.0, 10584.0, 2, 3528.0),
    (3000.0, 250): (6377.0, 8618.0, 2, 2872.0),
    (3000.0, 125): (6601.0, 7948.0, 2, 2649.0),
}


@dataclass(frozen=True)
class Table2Cell:
    """One measured row of Table II."""

    mttf: float | None
    interval: int
    e1: float
    e2: float | None
    f: int
    mttf_a: float | None

    def as_row(self) -> tuple[str, ...]:
        """Render the cell in Table II's column format."""
        fmt = lambda v: "-" if v is None else f"{v:,.0f} s"  # noqa: E731
        return (
            "-" if self.mttf is None else f"{self.mttf:,.0f} s",
            str(self.interval),
            fmt(self.e1),
            fmt(self.e2),
            str(self.f),
            fmt(self.mttf_a),
        )


@dataclass(frozen=True)
class Table2Config:
    """Scale and sweep parameters of the Table II reproduction.

    ``nranks=32768`` is the paper-exact configuration (slow: tens of
    minutes of host time); the default benchmarks use a scaled machine.
    ``seed`` drives the per-segment random failure draws; the experiment
    is fully deterministic for a given seed, like the original simulator.
    ``row_seeds`` defaults to the calibration that reproduces the paper's
    activated-failure counts (F column) at the default 512-rank scale —
    the paper likewise reports one deterministic draw per row.
    """

    nranks: int = 512
    intervals: tuple[int, ...] = (500, 250, 125)
    mttfs: tuple[float, ...] = (6000.0, 3000.0)
    baseline_interval: int = 1000
    iterations: int = 1000
    seed: int = 0
    #: Per-(mttf, interval) seed overrides (see class docstring).
    row_seeds: dict[tuple[float, int], int] = field(
        default_factory=lambda: {(3000.0, 500): 5}
    )
    #: Worker processes for the sweep (1 = in-process serial; every cell
    #: is an independent deterministic run, so results are identical).
    jobs: int = 1

    def cell_seed(self, mttf: float, interval: int) -> int:
        """Effective failure-draw seed of one (mttf, interval) cell."""
        return self.row_seeds.get((mttf, interval), self.seed)

    def system(self, **overrides: Any) -> SystemConfig:
        """The paper's machine at this configuration's scale."""
        return SystemConfig.paper_system(nranks=self.nranks, **overrides)

    def workload(self, interval: int) -> "HeatConfig":
        """The heat workload at this scale and checkpoint interval."""
        from repro.apps.heat3d import HeatConfig

        return HeatConfig.paper_workload(
            checkpoint_interval=interval, nranks=self.nranks, iterations=self.iterations
        )


def result_digest(result: SimulationResult) -> str:
    """Canonical sha256 fingerprint of one run's observable outcome.

    Covers exit/end/busy times (as exact ``float.hex`` strings — no
    formatting round-off), per-VP states, activated failures, abort
    status, and the event count.  Two runs digest equal iff they are
    bit-identical in every one of those observables, which is what the
    simcheck differential harness asserts across execution modes (serial
    vs. worker pool, advance coalescing on vs. off).
    """
    h = hashlib.sha256()
    h.update(f"exit {result.exit_time.hex()}\n".encode())
    h.update(f"start {result.start_time.hex()}\n".encode())
    h.update(f"events {result.event_count}\n".encode())
    h.update(f"aborted {int(result.aborted)}\n".encode())
    if result.abort_time is not None:
        h.update(f"abort {result.abort_rank} {result.abort_time.hex()}\n".encode())
    for rank, t in result.failures:
        h.update(f"fail {rank} {t.hex()}\n".encode())
    for rank in sorted(result.states):
        h.update(
            f"vp {rank} {result.states[rank].value} "
            f"{result.end_times[rank].hex()} {result.busy_times[rank].hex()}\n".encode()
        )
    return h.hexdigest()


def campaign_digest(values: Any) -> str:
    """sha256 over an arbitrary nest of primitives/lists/tuples/dicts,
    with floats rendered via ``float.hex`` and dict keys sorted — the
    canonical fingerprint for campaign result lists (Table II sweeps,
    Finject outcome tuples)."""
    h = hashlib.sha256()

    def feed(v: Any) -> None:
        if isinstance(v, float):
            h.update(f"f:{v.hex()};".encode())
        elif isinstance(v, (bool, int, str)) or v is None:
            h.update(f"{type(v).__name__}:{v!r};".encode())
        elif isinstance(v, (list, tuple)):
            h.update(b"[")
            for item in v:
                feed(item)
            h.update(b"]")
        elif isinstance(v, dict):
            h.update(b"{")
            for k in sorted(v, key=repr):
                h.update(f"k:{k!r}=".encode())
                feed(v[k])
            h.update(b"}")
        else:
            h.update(f"o:{v!r};".encode())

    feed(values)
    return h.hexdigest()


def measure_e1(system: SystemConfig, workload: "HeatConfig", seed: int = 0) -> float:
    """Simulated execution time without failures (one clean run)."""
    from repro.apps.heat3d import heat3d

    sim = XSim(system, seed=seed)
    result = sim.run(heat3d, args=(workload, CheckpointStore()))
    if not result.completed:
        raise RuntimeError("E1 run did not complete")
    return result.exit_time


def run_table2_row(
    cfg: Table2Config,
    interval: int,
    mttf: float | None,
    e1: float | None = None,
    system: SystemConfig | None = None,
) -> tuple[Table2Cell, FailureRunResult | None]:
    """Measure one row; ``e1`` may be passed in to avoid re-measuring."""
    system = system if system is not None else cfg.system()
    workload = cfg.workload(interval)
    if e1 is None:
        e1 = measure_e1(system, workload, seed=cfg.seed)
    if mttf is None:
        return Table2Cell(None, interval, e1, None, 0, None), None
    from repro.apps.heat3d import heat3d

    seed = cfg.cell_seed(mttf, interval)
    driver = RestartDriver(
        system,
        heat3d,
        make_args=lambda store: (workload, store),
        mttf=mttf,
        seed=seed,
    )
    run = driver.run()
    cell = Table2Cell(
        mttf=mttf, interval=interval, e1=e1, e2=run.e2, f=run.f, mttf_a=run.mttf_a
    )
    return cell, run


def run_table2(cfg: Table2Config) -> list[Table2Cell]:
    """Measure the full table: baseline row, then MTTF x interval rows.

    The baseline/per-interval E1 runs and every (mttf, interval) cell are
    mutually independent deterministic runs, so the sweep routes through
    :class:`~repro.core.harness.parallel.CampaignExecutor`: with
    ``cfg.jobs > 1`` the cells fan out over worker processes and the
    measured table is identical to the serial sweep.
    """
    from repro.core.harness.parallel import CampaignExecutor, RunSpec

    e1_intervals: list[int] = [cfg.baseline_interval]
    for interval in cfg.intervals:
        if interval not in e1_intervals:
            e1_intervals.append(interval)
    specs = [
        RunSpec(
            "table2-e1",
            key=("e1", interval),
            params={
                "nranks": cfg.nranks,
                "interval": interval,
                "iterations": cfg.iterations,
                "seed": cfg.seed,
            },
        )
        for interval in e1_intervals
    ]
    cell_keys = [(mttf, interval) for mttf in cfg.mttfs for interval in cfg.intervals]
    specs.extend(
        RunSpec(
            "table2-cell",
            key=("cell", mttf, interval),
            params={
                "nranks": cfg.nranks,
                "interval": interval,
                "iterations": cfg.iterations,
                "mttf": mttf,
                "seed": cfg.cell_seed(mttf, interval),
            },
        )
        for mttf, interval in cell_keys
    )
    results = CampaignExecutor(max_workers=cfg.jobs).run(specs)
    e1 = dict(zip(e1_intervals, results[: len(e1_intervals)]))
    cells: list[Table2Cell] = [
        Table2Cell(None, cfg.baseline_interval, e1[cfg.baseline_interval], None, 0, None)
    ]
    for (mttf, interval), outcome in zip(cell_keys, results[len(e1_intervals):]):
        cells.append(
            Table2Cell(
                mttf=mttf,
                interval=interval,
                e1=e1[interval],
                e2=outcome["e2"],
                f=outcome["f"],
                mttf_a=outcome["mttf_a"],
            )
        )
    return cells


# ----------------------------------------------------------------------
# First Impressions (paper §V-D)
# ----------------------------------------------------------------------
_CTX_RE = re.compile(r"ctx=(\d+)")


def classify_detection_phase(result: SimulationResult) -> str | None:
    """Where the failure was detected, from the detection log entries.

    Point-to-point contexts are even (``2 * context_id``), collective
    contexts odd — so halo-exchange detections report ``pt2pt`` and
    checkpoint-barrier detections report ``collective``.  Returns
    ``None`` when nothing was detected (e.g. no failure activated).
    """
    kinds = set()
    for entry in result.log.category("detect"):
        m = _CTX_RE.search(entry.message)
        if m:
            kinds.add("pt2pt" if int(m.group(1)) % 2 == 0 else "collective")
    if not kinds:
        return None
    # The abort is triggered by the first detection; log order preserves it.
    first = result.log.category("detect")[0]
    m = _CTX_RE.search(first.message)
    return "pt2pt" if m and int(m.group(1)) % 2 == 0 else "collective"


@dataclass(frozen=True)
class FailureModeObservation:
    """One §V-D style observation of a single injected failure."""

    injected: tuple[int, float]
    activated: tuple[int, float] | None
    detected_phase: str | None
    """``"pt2pt"`` (halo exchange) or ``"collective"`` (barrier)."""
    corrupted_checkpoint: bool
    """A checkpoint file exists but misses information (failure mid-write)."""
    incomplete_checkpoint: bool
    """A checkpoint set is missing whole rank files."""
    partially_deleted_old: bool
    """An older checkpoint set lost only some of its files (failure during
    the post-checkpoint barrier/delete phase)."""
    aborted: bool


def observe_failure_mode(
    system: SystemConfig, workload: "HeatConfig", rank: int, time: float, seed: int = 0
) -> FailureModeObservation:
    """Run one segment with a single scheduled failure and report what the
    paper's First Impressions section looks for: the detection site and
    the checkpoint-store damage, inspected *before* any cleanup."""
    from repro.apps.heat3d import heat3d

    store = CheckpointStore()
    sim = XSim(system, seed=seed)
    sim.inject_schedule(FailureSchedule.of((rank, time)))
    result = sim.run(heat3d, args=(workload, store))
    nranks = system.nranks
    corrupted = False
    incomplete = False
    partially_deleted = False
    ids = store.checkpoint_ids()
    for cid in ids:
        present = store.ranks_present(cid)
        if store.corrupted_files(cid):
            corrupted = True
        if len(present) < nranks:
            if cid == max(ids):
                incomplete = True
            else:
                partially_deleted = True
    return FailureModeObservation(
        injected=(rank, time),
        activated=result.failures[0] if result.failures else None,
        detected_phase=classify_detection_phase(result),
        corrupted_checkpoint=corrupted,
        incomplete_checkpoint=incomplete,
        partially_deleted_old=partially_deleted,
        aborted=result.aborted,
    )
