"""Resilience cost/benefit metrics.

The paper's stated goal is "a resilience co-design toolkit with
definitions, metrics, and methods to evaluate the cost/benefit trade-off
of resilience solutions".  This module defines those metrics over a
completed :class:`~repro.core.restart.FailureRunResult`:

* **efficiency** — useful computation over total time-to-solution (the
  fraction of E2 that was not overhead);
* the **waste breakdown** — where the non-useful time went: checkpoint
  overhead (E1 - useful), lost/recomputed work plus detection and abort
  latency (E2 - E1);
* **availability** — fraction of node-time with live processes;
* **application MTTF/MTBF** and the E2/(F+1) relation the paper's
  Table II reports.

All quantities are virtual-time; ``useful_time`` is the application's
failure-free computation floor, supplied by the caller (for heat3d it is
``iterations x points/rank x per-point cost x slowdown``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.restart import FailureRunResult
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ResilienceMetrics:
    """Cost/benefit metrics of one run-with-restarts experiment."""

    useful_time: float
    """The workload's failure-free computation floor (virtual seconds)."""
    e1: float
    """Failure-free time-to-solution (with checkpoint overhead)."""
    e2: float
    """Time-to-solution with failures and restarts."""
    failures: int
    restarts: int
    node_seconds: float
    """Total machine capacity over the run (nranks x E2)."""
    lost_node_seconds: float
    """Capacity lost to dead processes (from failure to end of segment)."""

    # ------------------------------------------------------------------
    @property
    def efficiency(self) -> float:
        """useful / E2 — the headline cost/benefit number."""
        return self.useful_time / self.e2

    @property
    def checkpoint_overhead(self) -> float:
        """Virtual seconds spent on resilience in the failure-free run."""
        return self.e1 - self.useful_time

    @property
    def failure_overhead(self) -> float:
        """Virtual seconds added by failures: lost work, detection, abort,
        restart cycles."""
        return self.e2 - self.e1

    @property
    def waste(self) -> float:
        """Everything that is not useful computation."""
        return self.e2 - self.useful_time

    @property
    def availability(self) -> float:
        """Fraction of node-time with a live process on the node."""
        if self.node_seconds == 0:
            return 1.0
        return 1.0 - self.lost_node_seconds / self.node_seconds

    @property
    def mttf_application(self) -> float | None:
        """E2 / (F + 1): the paper's experienced application MTTF."""
        if self.failures == 0:
            return None
        return self.e2 / (self.failures + 1)

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"time-to-solution: E2 = {self.e2:,.1f} s "
            f"(E1 = {self.e1:,.1f} s, useful = {self.useful_time:,.1f} s)",
            f"efficiency: {self.efficiency * 100:.1f} %  "
            f"(checkpoint overhead {self.checkpoint_overhead:,.1f} s, "
            f"failure overhead {self.failure_overhead:,.1f} s)",
            f"failures: {self.failures}, restarts: {self.restarts}, "
            f"availability: {self.availability * 100:.2f} %",
        ]
        if self.mttf_application is not None:
            lines.append(f"application MTTF: {self.mttf_application:,.1f} s")
        return "\n".join(lines)


def compute_metrics(
    run: FailureRunResult, useful_time: float, e1: float, nranks: int
) -> ResilienceMetrics:
    """Derive the metrics from a completed experiment.

    ``useful_time`` is the workload's pure-computation floor; ``e1`` the
    measured failure-free time-to-solution (so checkpoint overhead can be
    separated from failure overhead); ``nranks`` sizes the machine for
    availability accounting.
    """
    if not run.completed:
        raise ConfigurationError("metrics require a completed run")
    if useful_time <= 0 or e1 < useful_time or nranks < 1:
        raise ConfigurationError(
            f"need 0 < useful_time <= e1 and nranks >= 1 "
            f"(got useful_time={useful_time}, e1={e1}, nranks={nranks})"
        )
    e2 = run.e2
    lost = 0.0
    for seg in run.segments:
        seg_end = seg.result.exit_time
        for rank, t_fail in seg.result.failures:
            lost += max(0.0, seg_end - t_fail)
    return ResilienceMetrics(
        useful_time=useful_time,
        e1=e1,
        e2=e2,
        failures=run.f,
        restarts=run.restarts,
        node_seconds=nranks * e2,
        lost_node_seconds=lost,
    )
