"""Parallel campaign executor: fan independent runs across worker processes.

The paper's evaluation is a *campaign* of mutually independent simulator
runs — Table II cells (checkpoint interval x system MTTF), Finject victim
instances, soft-error trials, ablation sweep points.  Each run is
deterministic given its configuration and seed ("the experiments are
repeatable as the simulator and the application are deterministic"), so a
campaign parallelizes trivially: results are bit-identical whether the
runs execute serially in-process or fan out over a process pool.

Design:

* A run is described by a picklable :class:`RunSpec` naming a registered
  *task kind* plus keyword parameters.  Specs carry only primitive
  configuration (rank counts, seeds, intervals) — workers rebuild the
  heavyweight objects (system config, workload, simulator) themselves, so
  nothing that is awkward to pickle crosses the process boundary.
* Task implementations are registered in a module-level table at import
  time (:func:`task`), which makes the dispatch function
  :func:`run_spec` picklable by qualified name: worker processes import
  this module and find the same registry.
* :class:`CampaignExecutor` runs a list of specs and returns their
  results *in spec order*.  ``max_workers=1`` (the default, also taken
  from the ``XSIM_JOBS`` environment variable) executes in-process with
  no pool at all; pool failures (unpicklable payloads, broken workers)
  degrade gracefully to an in-process rerun rather than failing the
  campaign.

Every task seeds its own RNG streams from the spec parameters (e.g. one
:class:`~repro.util.rng.RngStreams` sub-stream per Finject victim), never
from shared mutable state — this is what makes parallel execution
bit-identical to serial.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from time import perf_counter
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.errors import CampaignTaskError, ConfigurationError


@dataclass(frozen=True)
class RunSpec:
    """One independent run of a campaign.

    ``kind`` selects a task registered with :func:`task`; ``params`` are
    its keyword arguments and must be picklable.  ``key`` identifies the
    run within its campaign (e.g. ``("cell", 6000.0, 500)``) so callers
    can reassemble results; the executor itself only uses it in error
    messages.
    """

    kind: str
    key: tuple = ()
    params: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_scenario(
        cls, scenario, key: tuple = (), cache_dir: str | None = None
    ) -> "RunSpec":
        """A spec executing one :class:`~repro.run.scenario.Scenario` via
        the ``scenario`` task: the spec carries only the scenario's
        primitive dict form, workers rebuild and run it on its resolved
        backend and return :meth:`~repro.run.backends.ScenarioOutcome.summary`.

        ``cache_dir`` (optional) names a shared content-addressed result
        store: the worker consults it before running and memoizes what it
        computes (see :mod:`repro.cache`).  Omitted from ``params`` when
        unset so pre-cache specs pickle and digest identically.
        """
        params: dict[str, Any] = {"scenario": scenario.to_dict()}
        if cache_dir is not None:
            params["cache_dir"] = cache_dir
        return cls(
            "scenario",
            key=key if key else ("scenario", scenario.scenario_digest()[:12]),
            params=params,
        )


_TASKS: dict[str, Callable[..., Any]] = {}


def task(kind: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a campaign task implementation under ``kind``.

    The decorated function receives a spec's ``params`` as keyword
    arguments.  Registration happens at module import, so worker
    processes (which re-import this module) see the same table.
    """

    def register(fn: Callable[..., Any]) -> Callable[..., Any]:
        if kind in _TASKS:
            raise ConfigurationError(f"duplicate task kind {kind!r}")
        _TASKS[kind] = fn
        return fn

    return register


def run_spec(spec: RunSpec) -> Any:
    """Execute one spec (module-level so a process pool can pickle it)."""
    fn = _TASKS.get(spec.kind)
    if fn is None:
        raise ConfigurationError(
            f"unknown task kind {spec.kind!r} for run {spec.key!r} "
            f"(registered: {sorted(_TASKS)})"
        )
    return fn(**spec.params)


def _pool_run_spec(spec: RunSpec) -> tuple[str, Any]:
    """Worker-side wrapper: tag task outcomes so a task's own exception is
    never mistaken for pool breakage.

    A raising task returns ``("err", exc)`` instead of raising out of the
    worker — ``pool.map`` would re-raise it in the parent, where the
    executor's fallback logic could misread e.g. a task ``TypeError`` as
    an unpicklable-payload problem and silently rerun the whole campaign.
    Exceptions that cannot cross the process boundary are substituted
    with a :class:`~repro.util.errors.CampaignTaskError` carrying the
    original type and message.
    """
    try:
        return ("ok", run_spec(spec))
    except Exception as exc:  # noqa: BLE001 - transported to the parent
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:  # unpicklable exception object
            exc = CampaignTaskError(spec.kind, spec.key, type(exc).__name__, str(exc))
        return ("err", exc)


def default_jobs() -> int:
    """Worker count when none is given: the ``XSIM_JOBS`` environment
    variable, else 1 (serial in-process execution)."""
    raw = os.environ.get("XSIM_JOBS", "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError as exc:
        raise ConfigurationError(f"XSIM_JOBS must be an integer, got {raw!r}") from exc
    if jobs < 1:
        raise ConfigurationError(f"XSIM_JOBS must be >= 1, got {jobs}")
    return jobs


class CampaignExecutor:
    """Execute independent :class:`RunSpec` s, serially or on a pool.

    ``run`` returns results in spec order regardless of completion order.
    With ``max_workers=1`` (or a single spec) everything runs in the
    calling process — no pool, no pickling, no subprocess startup cost.
    When a pool cannot be used (spec parameters or results that fail to
    pickle, workers killed by the OS), the campaign falls back to an
    in-process rerun: tasks are pure functions of their spec, so the
    fallback produces the same results, only slower.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        force_fallback: bool = False,
        observe=None,
    ):
        jobs = default_jobs() if max_workers is None else max_workers
        if jobs < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {jobs}")
        self.max_workers = jobs
        #: Skip the pool and run the degraded in-process path directly —
        #: a knob for the differential harness and tests, which assert the
        #: fallback produces the same results as the pool.
        self.force_fallback = force_fallback
        #: Filled by :meth:`run`: "serial", "pool", or "fallback-serial".
        self.last_mode: str | None = None
        #: Optional :class:`~repro.obs.Observer` receiving one host-domain
        #: ``task`` span per spec on the ``campaign`` track (wall-clock
        #: task lifecycle; parent-side — pool spans include queueing).
        self.observe = observe

    def _run_serial(self, specs: "list[RunSpec]") -> list[Any]:
        if self.observe is None:
            return [run_spec(s) for s in specs]
        out = []
        for s in specs:
            t0 = perf_counter()
            out.append(run_spec(s))
            self.observe.host_span(
                t0, perf_counter(), "task", track="campaign",
                args={"kind": s.kind, "key": s.key, "mode": self.last_mode},
            )
        return out

    def run(self, specs: list[RunSpec] | tuple[RunSpec, ...]) -> list[Any]:
        """Execute every spec; returns their results in spec order."""
        specs = list(specs)
        for spec in specs:
            if spec.kind not in _TASKS:  # fail fast, before forking workers
                raise ConfigurationError(
                    f"unknown task kind {spec.kind!r} for run {spec.key!r} "
                    f"(registered: {sorted(_TASKS)})"
                )
        if self.max_workers <= 1 or len(specs) <= 1:
            self.last_mode = "serial"
            return self._run_serial(specs)
        if self.force_fallback:
            self.last_mode = "fallback-serial"
            return self._run_serial(specs)
        t0 = perf_counter()
        try:
            with ProcessPoolExecutor(max_workers=min(self.max_workers, len(specs))) as pool:
                tagged = list(pool.map(_pool_run_spec, specs))
        except (pickle.PicklingError, AttributeError, TypeError, BrokenExecutor, OSError):
            # Pool unusable (unpicklable payloads — CPython reports those
            # as PicklingError, AttributeError, or TypeError depending on
            # the object — dead workers, fork limits): degrade to
            # in-process execution.  Tasks are pure, so results are
            # identical.  Task exceptions never land here: workers return
            # them tagged (see _pool_run_spec), so only genuine transport/
            # pool failures trigger the rerun.
            self.last_mode = "fallback-serial"
            return self._run_serial(specs)
        self.last_mode = "pool"
        if self.observe is not None:
            t1 = perf_counter()
            for s in specs:
                # Per-task walls are not observable from the parent with
                # pool.map; one span per task over the pool phase keeps
                # the campaign track complete without changing transport.
                self.observe.host_span(
                    t0, t1, "task", track="campaign",
                    args={"kind": s.kind, "key": s.key, "mode": "pool"},
                )
        results: list[Any] = []
        for tag, payload in tagged:
            if tag == "err":
                # Re-raise the first failing task's exception (spec order),
                # after the pool shut down cleanly and with no spec rerun.
                raise payload
            results.append(payload)
        return results


# ----------------------------------------------------------------------
# campaign tasks
#
# Imports happen inside the task bodies: registration at import time must
# not pull in the simulator stack (and must stay cycle-free — domain
# modules may import this module to fan themselves out).
# ----------------------------------------------------------------------
@task("selftest")
def _task_selftest(
    *, value: Any = None, raise_message: str | None = None, unpicklable: bool = False
) -> Any:
    """Echo/raise task for the executor's own tests and the simcheck
    differential harness: unlike test-module tasks, it is registered in a
    module worker processes import, so it can exercise the *pool* error
    transport (tagged results, unpicklable-exception substitution)."""
    if raise_message is not None:
        if unpicklable:
            class LocalError(Exception):  # local class: cannot be pickled
                pass

            raise LocalError(raise_message)
        raise RuntimeError(raise_message)
    return value


@task("scenario")
def _task_scenario(*, scenario: dict, cache_dir: str | None = None) -> dict[str, Any]:
    """One declarative :class:`~repro.run.scenario.Scenario`, executed on
    its resolved backend; sweeps (``xsim-run sweep``) fan these out.

    ``cache_dir`` routes the run through the shared content-addressed
    result store at that path (lookup before compute, write-through
    after); without it the worker falls back to the ``XSIM_CACHE``
    environment policy.
    """
    from repro.run.backends import run_scenario
    from repro.run.scenario import Scenario

    cache = None
    if cache_dir is not None:
        from repro.cache import open_cache

        cache = open_cache(cache_dir)
    return run_scenario(Scenario.from_dict(scenario), cache=cache).summary()


@task("table2-e1")
def _task_table2_e1(*, nranks: int, interval: int, iterations: int, seed: int) -> float:
    """E1: simulated execution time of one clean (failure-free) run."""
    from repro.core.harness.experiment import Table2Config, measure_e1

    cfg = Table2Config(nranks=nranks, iterations=iterations, seed=seed)
    return measure_e1(cfg.system(), cfg.workload(interval), seed=seed)


@task("table2-cell")
def _task_table2_cell(
    *, nranks: int, interval: int, iterations: int, mttf: float, seed: int
) -> dict[str, Any]:
    """One failure-and-restart Table II cell; E1 is measured separately."""
    from repro.apps.heat3d import heat3d
    from repro.core.harness.experiment import Table2Config
    from repro.core.restart import RestartDriver

    cfg = Table2Config(nranks=nranks, iterations=iterations, seed=seed)
    workload = cfg.workload(interval)
    driver = RestartDriver(
        cfg.system(),
        heat3d,
        make_args=lambda store: (workload, store),
        mttf=mttf,
        seed=seed,
    )
    run = driver.run()
    return {"e2": run.e2, "f": run.f, "mttf_a": run.mttf_a, "restarts": run.restarts}


@task("finject-victim")
def _task_finject_victim(
    *,
    victim: Any,
    victim_id: int,
    max_injections: int,
    seed: int,
) -> tuple[int, int, int]:
    """One Finject victim on its own RNG sub-stream; returns
    ``(injections_to_failure or -1, sdc_hits, benign_hits)``."""
    from repro.core.faults.finject import run_victim
    from repro.util.rng import RngStreams

    rng = RngStreams(seed).spawn_child("finject", victim_id)
    return run_victim(victim, victim_id, max_injections, rng)


@task("soft-error-trial")
def _task_soft_error_trial(
    *,
    nranks: int,
    interval: int,
    iterations: int,
    rate_per_rank: float,
    horizon: float,
    seed: int,
) -> dict[str, Any]:
    """One soft-error trial: the heat workload under a Poisson bit-flip
    process; returns the outcome histogram and the run's fate."""
    from repro.apps.heat3d import HeatConfig, heat3d
    from repro.core.checkpoint.store import CheckpointStore
    from repro.core.harness.config import SystemConfig
    from repro.core.simulator import XSim

    system = SystemConfig.paper_system(nranks=nranks)
    workload = HeatConfig.paper_workload(
        checkpoint_interval=interval, nranks=nranks, iterations=iterations
    )
    sim = XSim(system, seed=seed)
    flips = sim.soft_errors.schedule_poisson(
        rate_per_rank, horizon, ranks=list(range(nranks))
    )
    result = sim.run(heat3d, args=(workload, CheckpointStore()))
    counts = sim.soft_errors.counts()
    return {
        "scheduled_flips": flips,
        "counts": {effect.value: n for effect, n in counts.items()},
        "completed": result.completed,
        "aborted": result.aborted,
        "exit_time": result.exit_time,
    }


@task("sweep-e1")
def _task_sweep_e1(
    *,
    nranks: int,
    interval: int,
    iterations: int,
    seed: int,
    system_overrides: dict[str, Any],
) -> float:
    """Ablation sweep point: E1 under modified machine parameters (e.g.
    ``{"congestion_factor": 2.0}``)."""
    from repro.apps.heat3d import HeatConfig
    from repro.core.harness.config import SystemConfig
    from repro.core.harness.experiment import measure_e1

    system = SystemConfig.paper_system(nranks=nranks, **system_overrides)
    workload = HeatConfig.paper_workload(
        checkpoint_interval=interval, nranks=nranks, iterations=iterations
    )
    return measure_e1(system, workload, seed=seed)
