"""Plain-text table rendering with paper-value comparison columns."""

from __future__ import annotations

from typing import Sequence

from repro.core.harness.experiment import PAPER_TABLE2, Table2Cell


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width ASCII table."""
    cols = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != cols:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {cols}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_table2(cells: Sequence[Table2Cell], compare_paper: bool = True) -> str:
    """Table II in the paper's layout, optionally with the paper's values
    interleaved for side-by-side comparison."""
    headers = ["MTTF_s", "C", "E1", "E2", "F", "MTTF_a"]
    if compare_paper:
        headers += ["paper E1", "paper E2", "paper F", "paper MTTF_a"]
    rows = []
    for cell in cells:
        row = list(cell.as_row())
        if compare_paper:
            paper = PAPER_TABLE2.get((cell.mttf, cell.interval))
            if paper is None:
                row += ["?"] * 4
            else:
                p_e1, p_e2, p_f, p_mttfa = paper
                fmt = lambda v: "-" if v is None else f"{v:,.0f} s"  # noqa: E731
                row += [fmt(p_e1), fmt(p_e2), str(p_f), fmt(p_mttfa)]
        rows.append(row)
    return format_table(headers, rows)
