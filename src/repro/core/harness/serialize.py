"""Result serialization: experiment outputs as JSON/CSV-friendly records.

Reproduction artifacts should be machine-readable, not just pretty tables:
these helpers flatten the harness result objects into plain dictionaries
(JSON-safe scalar values only) so runs can be archived, diffed across
simulator versions, or post-processed outside Python.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.core.harness.experiment import PAPER_TABLE2, Table2Cell
from repro.core.restart import FailureRunResult
from repro.pdes.engine import SimulationResult


def simulation_result_record(result: SimulationResult) -> dict[str, Any]:
    """Flatten one engine run (aggregates only; per-rank maps elided)."""
    return {
        "start_time": result.start_time,
        "exit_time": result.exit_time,
        "completed": result.completed,
        "aborted": result.aborted,
        "abort_time": result.abort_time,
        "abort_rank": result.abort_rank,
        "failures": [[r, t] for r, t in result.failures],
        "nranks": len(result.states),
        "event_count": result.event_count,
        "vp_time_min": result.timing.minimum,
        "vp_time_max": result.timing.maximum,
        "vp_time_avg": result.timing.average,
    }


def failure_run_record(run: FailureRunResult) -> dict[str, Any]:
    """Flatten a run-with-restarts experiment."""
    return {
        "completed": run.completed,
        "e2": run.e2,
        "f": run.f,
        "restarts": run.restarts,
        "mttf_a": run.mttf_a,
        "failures": [[r, t] for r, t in run.failures],
        "segments": [
            {
                "index": seg.index,
                "start_time": seg.start_time,
                "drawn_failures": [[r, t] for r, t in seg.drawn_failures],
                **simulation_result_record(seg.result),
            }
            for seg in run.segments
        ],
    }


def table2_records(
    cells: Sequence[Table2Cell], include_paper: bool = True
) -> list[dict[str, Any]]:
    """Table II cells as records, optionally with the paper's values."""
    out = []
    for cell in cells:
        rec: dict[str, Any] = {
            "mttf_s": cell.mttf,
            "interval": cell.interval,
            "e1": cell.e1,
            "e2": cell.e2,
            "f": cell.f,
            "mttf_a": cell.mttf_a,
        }
        if include_paper:
            paper = PAPER_TABLE2.get((cell.mttf, cell.interval))
            if paper is not None:
                rec["paper_e1"], rec["paper_e2"], rec["paper_f"], rec["paper_mttf_a"] = paper
        out.append(rec)
    return out


def to_json(records: Any, path: str | None = None, indent: int = 2) -> str:
    """Serialize records to JSON; optionally also write them to ``path``."""
    text = json.dumps(records, indent=indent, sort_keys=True, allow_nan=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return text


def to_csv(records: Sequence[dict[str, Any]]) -> str:
    """Serialize flat records to CSV (union of keys, sorted header)."""
    if not records:
        return ""
    keys = sorted({k for rec in records for k in rec})
    lines = [",".join(keys)]
    for rec in records:
        lines.append(",".join(_csv_cell(rec.get(k)) for k in keys))
    return "\n".join(lines) + "\n"


def _csv_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.6f}"
    text = str(value)
    if any(c in text for c in ",\"\n"):
        text = '"' + text.replace('"', '""') + '"'
    return text
