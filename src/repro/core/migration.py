"""Proactive fault tolerance via predicted-failure migration.

The authors' proactive-FT line (paper refs [9], [17], [19]: preemptive and
live process migration) moves a process off a node *before* a predicted
failure: health monitoring raises a warning ``lead_time`` ahead; if a spare
node is available and the warning came early enough, the victim rank
live-migrates (paying a stop-and-copy pause proportional to its state
size), and the subsequent node failure hits an empty node instead of the
application.

Simulation model:

* :class:`FailurePredictor` — an oracle with ``recall`` (fraction of
  failures predicted) and ``lead_time``; optionally raises false alarms
  that cost a migration without any failure behind them.
* :class:`ProactiveMigration` — a failure *interceptor* for
  :class:`~repro.core.restart.RestartDriver`: for each failure the policy
  drew, either arm the real process failure (unpredicted / no spare /
  warning too late) or replace it with an injected migration pause at the
  warning time (:meth:`Engine.inject_delay`).

The trade-off this exposes is exactly the proactive-FT literature's:
perfect prediction turns failures into ~seconds of migration downtime;
imperfect recall leaves residual failures for checkpoint/restart to absorb
(the combined approach of ref [17]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.simulator import XSim
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStreams


@dataclass(frozen=True)
class FailurePredictor:
    """Health-monitoring prediction model."""

    lead_time: float = 60.0
    recall: float = 1.0
    false_alarms_per_segment: float = 0.0

    def __post_init__(self) -> None:
        if self.lead_time < 0:
            raise ConfigurationError(f"lead_time must be >= 0, got {self.lead_time}")
        if not 0.0 <= self.recall <= 1.0:
            raise ConfigurationError(f"recall must be in [0, 1], got {self.recall}")
        if self.false_alarms_per_segment < 0:
            raise ConfigurationError("false_alarms_per_segment must be >= 0")

    def predicts(self, rng: np.random.Generator) -> bool:
        """Bernoulli draw: is this failure predicted in time?"""
        return bool(rng.random() < self.recall)


@dataclass
class MigrationStats:
    """Book-keeping of one experiment's proactive actions."""

    migrations: int = 0
    avoided_failures: int = 0
    unpredicted: int = 0
    too_late: int = 0
    out_of_spares: int = 0
    false_alarm_migrations: int = 0
    downtime: float = 0.0
    events: list[tuple[str, int, float]] = field(default_factory=list)


class ProactiveMigration:
    """Failure interceptor implementing predict-and-migrate.

    Use as ``RestartDriver(..., interceptor=manager.intercept)``; the
    manager inspects every drawn failure before it is armed.

    Parameters
    ----------
    predictor:
        The prediction model.
    spares:
        Healthy spare nodes available to absorb migrations (each
        migration consumes one; the pool spans the whole experiment).
    state_bytes:
        Per-rank state to move during stop-and-copy.
    migration_bandwidth:
        Transfer rate of the migration channel (bytes/second).
    migration_latency:
        Fixed per-migration coordination cost (seconds).
    seed:
        Seeds the prediction draws (deterministic experiments).
    """

    def __init__(
        self,
        predictor: FailurePredictor,
        spares: int = 1,
        state_bytes: int = 32 * 1024,
        migration_bandwidth: float = 1e9,
        migration_latency: float = 1.0,
        seed: int = 0,
    ):
        if spares < 0 or state_bytes < 0:
            raise ConfigurationError("spares and state_bytes must be >= 0")
        if migration_bandwidth <= 0 or migration_latency < 0:
            raise ConfigurationError("invalid migration channel parameters")
        self.predictor = predictor
        self.spares = spares
        self.state_bytes = state_bytes
        self.migration_bandwidth = migration_bandwidth
        self.migration_latency = migration_latency
        self.rng = RngStreams(seed).get("migration-predictions")
        self.stats = MigrationStats()

    @property
    def migration_downtime(self) -> float:
        """Stop-and-copy pause of one migration."""
        return self.migration_latency + self.state_bytes / self.migration_bandwidth

    # ------------------------------------------------------------------
    def intercept(
        self, sim: XSim, drawn: list[tuple[int, float]]
    ) -> list[tuple[int, float]]:
        """Decide each drawn failure's fate; returns those to really arm.

        Migrations are injected directly into ``sim`` as execution delays
        at the warning time.
        """
        inject: list[tuple[int, float]] = []
        for rank, t_fail in drawn:
            t_warn = t_fail - self.predictor.lead_time
            if not self.predictor.predicts(self.rng):
                self.stats.unpredicted += 1
                self.stats.events.append(("unpredicted", rank, t_fail))
                inject.append((rank, t_fail))
                continue
            if t_warn < sim.engine.start_time:
                self.stats.too_late += 1
                self.stats.events.append(("too-late", rank, t_fail))
                inject.append((rank, t_fail))
                continue
            if self.spares <= 0:
                self.stats.out_of_spares += 1
                self.stats.events.append(("out-of-spares", rank, t_fail))
                inject.append((rank, t_fail))
                continue
            # migrate: the node still dies, but nobody lives there anymore
            self.spares -= 1
            self.stats.migrations += 1
            self.stats.avoided_failures += 1
            self.stats.downtime += self.migration_downtime
            self.stats.events.append(("migrated", rank, t_warn))
            sim.engine.inject_delay(
                rank, t_warn, self.migration_downtime, reason="proactive migration"
            )
        # false alarms: spurious warnings also cost migrations
        n_false = int(self.rng.poisson(self.predictor.false_alarms_per_segment))
        for _ in range(n_false):
            if self.spares <= 0:
                break
            rank = int(self.rng.integers(0, sim.system.nranks))
            t_warn = sim.engine.start_time + float(
                self.rng.uniform(0.0, max(self.predictor.lead_time, 1.0) * 100.0)
            )
            self.spares -= 1
            self.stats.migrations += 1
            self.stats.false_alarm_migrations += 1
            self.stats.downtime += self.migration_downtime
            self.stats.events.append(("false-alarm", rank, t_warn))
            sim.engine.inject_delay(
                rank, t_warn, self.migration_downtime, reason="proactive migration (false alarm)"
            )
        return inject
