"""Process-level redundancy with online SDC detection (redMPI-style).

Paper §II-C describes the authors' redMPI prototype: "RedMPI is capable of
online detection and correction of soft errors (bit flips) without
requiring any modifications to the application using double or triple
redundancy. ... Depending on the application properties, a single bit flip
can corrupt all MPI processes of an application within a short period of
time, or may be corrected by the application's computational structure."

This module reproduces the *MsgPlusHash* scheme at simulation level: an
application written against the ordinary :class:`~repro.mpi.api.MpiApi`
runs unmodified on ``factor`` replicas per logical rank.  Each replica
communicates with its corresponding replica of the peer; alongside every
payload, the sender ships a small hash of the message to the *next* replica
of the receiver, which compares it against the hash of the copy it received
itself.  A mismatch is an online silent-data-corruption detection, recorded
(with its virtual time and location) in the shared
:class:`RedundancyMonitor`.

Replica placement follows redMPI's mirrored layout: replica ``j`` of
logical rank ``i`` is world rank ``j * n + i`` for an ``n``-logical-rank
job, so ``factor * n`` simulated ranks are required.

Scope: the supported API surface is the one simulated applications here
use (init/finalize, blocking and nonblocking point-to-point with explicit
sources, barrier, modeled compute and file I/O, tracked memory).  Wildcard
receives and communicator management raise — redMPI itself restricts
wildcard usage.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Generator

import numpy as np

from repro.mpi import ops
from repro.mpi.api import MpiApi
from repro.mpi.constants import ANY_SOURCE, PROC_NULL
from repro.mpi.messages import Request
from repro.util.errors import ConfigurationError

Gen = Generator[Any, Any, Any]

#: Application tags must stay below this; the replica-hash side channel
#: uses ``tag + HASH_TAG_OFFSET``.
HASH_TAG_OFFSET = 2**19
#: Internal tag base of the replicated collective implementation (beyond
#: application tags, below the hash side channel).
_COLL_TAG = 2**18
#: Wire size of one hash message (redMPI ships a small digest).
HASH_NBYTES = 16


def payload_hash(payload: Any) -> int:
    """Deterministic digest of a message payload.

    Real numpy payloads hash their bytes (so a flipped bit is caught);
    modeled (``None``) payloads hash to a constant — redundancy still
    models the traffic overhead, but there is nothing to corrupt.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return zlib.crc32(np.ascontiguousarray(payload).tobytes())
    return zlib.crc32(repr(payload).encode("utf-8"))


@dataclass(frozen=True)
class SdcDetection:
    """One online hash-mismatch detection."""

    time: float
    logical_src: int
    logical_dst: int
    replica: int
    tag: int


@dataclass
class RedundancyMonitor:
    """Shared record of a redundant execution's comparisons."""

    factor: int
    detections: list[SdcDetection] = field(default_factory=list)
    messages_compared: int = 0

    @property
    def clean(self) -> bool:
        return not self.detections


class _RedundantRequest:
    """Composite of the payload request and its hash side-channel."""

    __slots__ = ("main", "hash_send", "hash_recv", "kind")

    def __init__(self, kind: str, main: Request, hash_send: Request | None, hash_recv: Request | None):
        self.kind = kind
        self.main = main
        self.hash_send = hash_send
        self.hash_recv = hash_recv


class RedundantApi:
    """Drop-in MPI facade presenting the *logical* job to the application.

    ``mpi`` is the per-replica physical facade; ``rank``/``size`` are the
    logical coordinates.  All point-to-point traffic is replicated per
    redMPI's same-replica scheme with the hash side channel.
    """

    def __init__(self, mpi: MpiApi, factor: int, monitor: RedundancyMonitor):
        if factor < 1:
            raise ConfigurationError(f"redundancy factor must be >= 1, got {factor}")
        if mpi.size % factor != 0:
            raise ConfigurationError(
                f"world size {mpi.size} is not a multiple of the redundancy factor {factor}"
            )
        self.base = mpi
        self.factor = factor
        self.monitor = monitor
        self.logical_size = mpi.size // factor
        self.rank = mpi.rank % self.logical_size
        self.replica = mpi.rank // self.logical_size

    # -- identity ---------------------------------------------------------
    @property
    def size(self) -> int:
        return self.logical_size

    @property
    def vp(self):
        return self.base.vp

    def wtime(self) -> float:
        """Current virtual time of this replica."""
        return self.base.wtime()

    def _world(self, logical: int, replica: int | None = None) -> int:
        if logical == PROC_NULL:
            return PROC_NULL
        if logical == ANY_SOURCE:
            raise ConfigurationError("ANY_SOURCE is not supported under redundancy")
        r = self.replica if replica is None else replica
        return r * self.logical_size + logical

    # -- lifecycle / local operations (plain delegation) ------------------
    def init(self) -> Gen:
        """``MPI_Init`` (physical, per replica)."""
        return self.base.init()

    def finalize(self) -> Gen:
        """``MPI_Finalize`` (physical, per replica)."""
        return self.base.finalize()

    def compute(self, seconds: float) -> Gen:
        """Modeled work (each replica computes it independently)."""
        return self.base.compute(seconds)

    def compute_native(self, native_seconds: float) -> Gen:
        """Reference-core work, scaled by the node slowdown."""
        return self.base.compute_native(native_seconds)

    def compute_ops(self, nops: float, native_seconds_per_op: float) -> Gen:
        """Calibrated per-operation work."""
        return self.base.compute_ops(nops, native_seconds_per_op)

    def file_write(self, nbytes: int, concurrent_clients: int = 1) -> Gen:
        """Simulated file write (each replica pays it)."""
        return self.base.file_write(nbytes, concurrent_clients)

    def file_read(self, nbytes: int, concurrent_clients: int = 1) -> Gen:
        """Simulated file read."""
        return self.base.file_read(nbytes, concurrent_clients)

    def file_delete(self) -> Gen:
        """Simulated file removal."""
        return self.base.file_delete()

    def malloc(self, name: str, nbytes: int = 0, kind=None, array: Any = None):
        """Register a tracked allocation on this replica."""
        from repro.models.memory import RegionKind

        return self.base.malloc(name, nbytes, kind or RegionKind.DATA, array)

    def free(self, name: str) -> None:
        """Release a tracked allocation."""
        self.base.free(name)

    def barrier(self, comm=None) -> Gen:
        """Synchronizes the whole redundant job (all replicas), modeling
        redMPI's replica-consistent collective behaviour."""
        if comm is not None:
            raise ConfigurationError("custom communicators are not supported under redundancy")
        return self.base.barrier()

    # -- replicated point-to-point ----------------------------------------
    def isend(
        self, dest: int, payload: Any = None, nbytes: int | None = None, tag: int = 0, comm=None
    ) -> Generator[Any, Any, _RedundantRequest]:
        """Nonblocking send to logical ``dest`` plus the hash side channel."""
        self._check(tag, comm)
        main = yield from self.base.isend(self._world(dest), payload, nbytes, tag)
        hash_send = None
        if self.factor > 1 and dest != PROC_NULL:
            digest = payload_hash(payload)
            watcher = (self.replica + 1) % self.factor
            hash_send = yield from self.base.isend(
                self._world(dest, watcher),
                payload=digest,
                nbytes=HASH_NBYTES,
                tag=tag + HASH_TAG_OFFSET,
            )
        return _RedundantRequest("send", main, hash_send, None)

    def irecv(self, source: int, tag: int = 0, comm=None) -> _RedundantRequest:
        """Nonblocking receive from logical ``source`` plus its hash."""
        self._check(tag, comm)
        main = self.base.irecv(self._world(source), tag)
        hash_recv = None
        if self.factor > 1 and source != PROC_NULL:
            # the hash for *my* copy comes from the previous replica of the
            # sender (who addressed it to me as their watcher)
            prev = (self.replica - 1) % self.factor
            hash_recv = self.base.irecv(self._world(source, prev), tag + HASH_TAG_OFFSET)
        return _RedundantRequest("recv", main, None, hash_recv)

    def wait(self, request: _RedundantRequest) -> Gen:
        """Complete a request; on receives, compare payload vs watcher hash
        and record any mismatch as an online SDC detection."""
        payload = yield from self.base.wait(request.main)
        if request.hash_send is not None:
            yield from self.base.wait(request.hash_send)
        if request.hash_recv is not None:
            expected = yield from self.base.wait(request.hash_recv)
            self.monitor.messages_compared += 1
            if expected is not None and payload_hash(payload) != expected:
                src = request.main.src % self.logical_size
                self.monitor.detections.append(
                    SdcDetection(
                        time=self.base.wtime(),
                        logical_src=src,
                        logical_dst=self.rank,
                        replica=self.replica,
                        tag=request.main.tag,
                    )
                )
        return payload

    def waitall(self, requests) -> Gen:
        """Complete all requests in order; returns received payloads."""
        out = []
        for req in requests:
            out.append((yield from self.wait(req)))
        return out

    def send(
        self, dest: int, payload: Any = None, nbytes: int | None = None, tag: int = 0, comm=None
    ) -> Gen:
        """Blocking send (replicated)."""
        req = yield from self.isend(dest, payload, nbytes, tag)
        yield from self.wait(req)

    def recv(self, source: int, tag: int = 0, comm=None) -> Gen:
        """Blocking receive (replicated, hash-checked)."""
        req = self.irecv(source, tag)
        return (yield from self.wait(req))

    def allreduce(
        self, value: Any = None, nbytes: int | None = None, op: ops.Op = ops.SUM, comm=None
    ) -> Gen:
        """``MPI_Allreduce`` over the *logical* job.

        redMPI replicates collectives as point-to-point exchanges, so the
        reduction runs as a gather-fold-broadcast over the replicated
        (hash-checked) channels: every contribution and the fanned-out
        result cross the wire per replica pair, and each hop is compared
        against its watcher hash like any other message.
        """
        if comm is not None:
            raise ConfigurationError("custom communicators are not supported under redundancy")
        n = self.logical_size
        size = 8 if nbytes is None else nbytes
        if n == 1:
            return ops.fold(op, [value])
        if self.rank == 0:
            contributions = [value]
            for src in range(1, n):
                contributions.append((yield from self.recv(src, tag=_COLL_TAG)))
            result = ops.fold(op, contributions)
            for dst in range(1, n):
                yield from self.send(dst, payload=result, nbytes=size, tag=_COLL_TAG + 1)
            return result
        yield from self.send(0, payload=value, nbytes=size, tag=_COLL_TAG)
        return (yield from self.recv(0, tag=_COLL_TAG + 1))

    def _check(self, tag: int, comm) -> None:
        if comm is not None:
            raise ConfigurationError("custom communicators are not supported under redundancy")
        if not 0 <= tag < HASH_TAG_OFFSET:
            raise ConfigurationError(f"tags under redundancy must be < {HASH_TAG_OFFSET}")


def redundant(app, factor: int, monitor: RedundancyMonitor):
    """Wrap ``app`` for redundant execution.

    Returns a world-level application to be launched on
    ``factor * logical_ranks`` simulated ranks; every replica runs ``app``
    against a :class:`RedundantApi` view.
    """

    def wrapper(mpi: MpiApi, *args: Any) -> Gen:
        red = RedundantApi(mpi, factor, monitor)
        result = yield from app(red, *args)
        return result

    return wrapper
