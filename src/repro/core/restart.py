"""The failure/restart driver: continuous virtual time across aborts.

Paper §IV-E: "To support continuous virtual timing after an abort and a
following restart, xSim optionally writes out the simulated time of the
application exit (maximum simulated MPI process time) to a file.  This file
can be read in upon restart to initialize the clock of all simulated MPI
processes with this time.  With this simple addition, xSim fully supports
the simulation of application-level checkpoint/restart triggered by
injected simulated MPI process failures."

:class:`RestartDriver` reproduces the full experimental loop behind
Table II:

1. run the application under a fresh :class:`~repro.core.simulator.XSim`
   whose engine clock starts at the previous segment's exit time;
2. per segment, optionally draw one random failure — uniform rank, uniform
   time within ``2 x MTTF_s`` *relative to the segment start* ("this ...
   system MTTF applies to each application run separately, i.e., from
   start to finish/failure and from restart to finish/failure");
3. on abort, run the "shell script" step
   (:meth:`CheckpointStore.cleanup_incomplete`) and restart;
4. on completion, report E2 (total simulated time), F (failures that
   actually activated), and MTTF_a = E2 / (F + 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Any, Callable

from repro.check import checking_enabled
from repro.core.checkpoint.store import CheckpointStore
from repro.core.faults.policies import InjectionPolicy, SingleUniformFailurePolicy
from repro.core.faults.schedule import (
    CorrelatedFailure,
    FailureSchedule,
    ScheduledFailure,
    expand_correlated,
)
from repro.core.harness.config import SystemConfig
from repro.core.simulator import XSim
from repro.obs import Observer
from repro.pdes.engine import SimulationResult
from repro.run.instruments import coerce_observer
from repro.util.errors import SimulationError
from repro.util.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.run.scenario import Scenario


@dataclass(frozen=True)
class SegmentRecord:
    """One run segment (start to finish or abort)."""

    index: int
    start_time: float
    result: SimulationResult
    drawn_failures: tuple[tuple[int, float], ...]
    """(rank, absolute time) pairs drawn for this segment (may be empty;
    component-model policies can draw several)."""

    @property
    def drawn_failure(self) -> tuple[int, float] | None:
        """The first drawn failure (the Table II policy draws exactly one)."""
        return self.drawn_failures[0] if self.drawn_failures else None

    @property
    def activated_failures(self) -> list[tuple[int, float]]:
        return self.result.failures


@dataclass
class FailureRunResult:
    """Outcome of a complete run-with-restarts experiment."""

    segments: list[SegmentRecord]
    store: CheckpointStore | None
    exit_values: dict[int, Any] = field(default_factory=dict)
    #: Deterministic strategy-side counters (replica failovers, dropped
    #: tier files, ...) — see :meth:`ResilienceStrategy.facts`.
    strategy_facts: dict[str, Any] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return bool(self.segments) and self.segments[-1].result.completed

    @property
    def e2(self) -> float:
        """Total simulated execution time including failure/restart cycles
        (Table II's E2; equals E1 when no failure activated)."""
        return self.segments[-1].result.exit_time - self.segments[0].start_time

    @property
    def failures(self) -> list[tuple[int, float]]:
        """Every activated failure across all segments."""
        out: list[tuple[int, float]] = []
        for seg in self.segments:
            out.extend(seg.result.failures)
        return out

    @property
    def f(self) -> int:
        """Table II's F: the number of failures that actually activated."""
        return len(self.failures)

    @property
    def restarts(self) -> int:
        return len(self.segments) - 1

    @property
    def mttf_a(self) -> float | None:
        """Experienced application MTTF: E2 / (F + 1) — the relation the
        paper's Table II rows satisfy exactly.  None when no failure."""
        if self.f == 0:
            return None
        return self.e2 / (self.f + 1)


class RestartDriver:
    """Run an application to completion through failure/restart cycles.

    Parameters
    ----------
    system:
        The simulated machine.
    app:
        Application generator function ``app(mpi, *args)``.
    make_args:
        Builds the app argument tuple for each segment, given the shared
        checkpoint store (persisted across segments like a real PFS).
    mttf:
        Optional system MTTF: draw one random failure per segment per the
        paper's policy (shorthand for
        ``policy=SingleUniformFailurePolicy(mttf)``).  ``policy`` accepts
        any :class:`~repro.core.faults.policies.InjectionPolicy`, e.g. the
        component-reliability-driven one.  ``schedule`` may be given
        instead of (or in addition to) either; schedule times are absolute
        virtual times and apply to the first segment.
    seed:
        Seeds the failure-draw stream ("the experiments are repeatable as
        the simulator and the application are deterministic").
    """

    def __init__(
        self,
        system: SystemConfig,
        app,
        make_args: Callable[[CheckpointStore], tuple],
        mttf: float | None = None,
        policy: InjectionPolicy | None = None,
        schedule: FailureSchedule | None = None,
        seed: int = 0,
        max_restarts: int = 1000,
        draw_horizon: float | None = None,
        interceptor: Callable[[XSim, list[tuple[int, float]]], list[tuple[int, float]]]
        | None = None,
        log_stream: IO[str] | None = None,
        check: bool | None = None,
        shards: int = 1,
        shard_transport: str | None = None,
        observe: "bool | Observer | None" = None,
        scenario: "Scenario | None" = None,
        strategy=None,
    ):
        if mttf is not None and policy is not None:
            raise SimulationError("pass either mttf or policy, not both")
        if strategy is None:
            if scenario is not None:
                strategy = scenario.make_strategy()
            else:
                from repro.resilience.ckpt import SingleLevelCheckpoint

                strategy = SingleLevelCheckpoint(None)
        #: The resilience strategy driving recovery: supplies the
        #: per-segment store, absorbs or passes through fail-stops
        #: (replication's warm failover), and owns the pre-restart
        #: cleanup.  Defaults to single-level checkpoint/restart.
        self.strategy = strategy
        #: The one declarative spec every segment of this experiment runs
        #: under, when the driver was built via :meth:`from_scenario`.
        self.scenario = scenario
        self.system = system
        self.app = app
        self.make_args = make_args
        self.policy: InjectionPolicy | None
        self.policy = SingleUniformFailurePolicy(mttf) if mttf is not None else policy
        self.schedule = schedule
        self.seed = seed
        self.max_restarts = max_restarts
        #: How far past each segment start the policy should bother drawing
        #: (unbounded by default; activations beyond the segment's end are
        #: naturally inert).
        self.draw_horizon = draw_horizon if draw_horizon is not None else float("inf")
        #: Optional hook inspecting each segment's drawn failures before
        #: they are armed (e.g. proactive migration replaces predicted
        #: failures with migration pauses); returns the failures to inject.
        self.interceptor = interceptor
        self.log_stream = log_stream
        #: Run every segment under the invariant sanitizer and audit the
        #: checkpoint namespace after each pre-restart cleanup.  ``None``
        #: defers to the ``XSIM_CHECK`` environment variable (per segment).
        self.check = check
        #: Worker-process count for each segment's simulation (see
        #: :mod:`repro.pdes.sharded`); results are bit-identical to serial.
        self.shards = shards
        self.shard_transport = shard_transport
        #: One :class:`~repro.obs.Observer` shared by every segment, so
        #: the exported timeline covers the whole failure/restart
        #: experiment on its continuous virtual clock.
        self.observer: Observer | None = coerce_observer(observe)

    @classmethod
    def from_scenario(
        cls,
        scenario: "Scenario",
        log_stream: IO[str] | None = None,
        observe: "bool | Observer | None" = None,
        **overrides: Any,
    ) -> "RestartDriver":
        """A driver that carries one :class:`~repro.run.scenario.Scenario`
        across every failure/restart segment.

        The scenario supplies the machine, the application, the explicit
        failure schedule and/or MTTF draw policy, the C/R budget, the
        seed, the backend (shard count resolved through the registry's
        CPU cap, once, here), and the instrumentation switches;
        ``overrides`` passes any extra constructor argument through (e.g.
        an ``interceptor`` or a component-model ``policy``).
        """
        from repro.run.backends import get_backend

        backend = get_backend(scenario.backend_name())
        # One strategy instance serves the whole experiment: it wraps the
        # app here and rides through every segment of run() (so e.g. the
        # replication SDC monitor survives restarts).
        strategy = scenario.make_strategy()
        app, make_args = scenario.make_app(strategy=strategy)
        schedule = scenario.schedule()
        if observe is None and scenario.observe:
            observe = True
        kwargs: dict[str, Any] = dict(
            strategy=strategy,
            mttf=scenario.mttf,
            schedule=schedule if schedule else None,
            seed=scenario.seed,
            max_restarts=scenario.max_restarts,
            log_stream=log_stream,
            check=scenario.check,
            shards=backend.resolve_shards(scenario),
            shard_transport=backend.transport,
            observe=observe,
            scenario=scenario,
        )
        kwargs.update(overrides)
        return cls(scenario.system_config(), app, make_args, **kwargs)

    def run(self) -> FailureRunResult:
        """Execute segments until the application completes (or the restart
        budget is exhausted); see the module docstring for the loop."""
        strategy = self.strategy
        strategy.begin_run()
        rng = RngStreams(self.seed).get("restart-failures")
        segments: list[SegmentRecord] = []
        start = 0.0
        for index in range(self.max_restarts + 1):
            if self.observer is not None and index > 0:
                # The restart instant completes the resilience sequence:
                # inject -> detect -> notify -> abort -> restart.
                self.observer.instant(
                    start, "restart", track="resilience", args={"segment": index}
                )
            sim = XSim(
                self.system,
                seed=self.seed,
                start_time=start,
                log_stream=self.log_stream,
                check=self.check,
                shards=self.shards,
                shard_transport=self.shard_transport,
                observe=self.observer,
                scenario=self.scenario,
            )
            # Classify the explicit schedule (first segment only) so every
            # fail-stop — scheduled or drawn — routes through the strategy,
            # which may absorb it (replication's warm failover); degraded-
            # performance faults arm the world overlay directly.
            sched_failstops: list[tuple[int, float]] = []
            if self.schedule is not None and index == 0:
                self.schedule.validate(self.system.nranks)
                for entry in self.schedule:
                    if isinstance(entry, ScheduledFailure):
                        sched_failstops.append((entry.rank, entry.time))
                    elif isinstance(entry, CorrelatedFailure):
                        sched_failstops.extend(
                            expand_correlated(entry, sim.world.network, self.system.nranks)
                        )
                    else:
                        sim.inject_perturbation(entry)
            drawn: list[tuple[int, float]] = []
            if self.policy is not None:
                drawn = [
                    (rank, start + t_rel)
                    for rank, t_rel in self.policy.draw_segment(
                        rng, self.system.nranks, self.draw_horizon
                    )
                ]
            to_inject = drawn if self.interceptor is None else self.interceptor(sim, drawn)
            failstops = strategy.transform_failures(
                sim, sched_failstops + list(to_inject), observer=self.observer
            )
            for rank, t_abs in failstops:
                sim.inject_failure(rank, t_abs)
            result = sim.run(self.app, args=self.make_args(strategy.segment_store()))
            # Execution facts of the most recent segment (actual shard
            # transport, fallback flag) for ScenarioOutcome.metadata.
            self.shard_stats = getattr(sim, "shard_stats", None)
            if self.observer is not None:
                self.observer.span(
                    start, result.exit_time, "segment", track="simulator",
                    args={"index": index, "completed": result.completed},
                )
            segments.append(
                SegmentRecord(
                    index=index,
                    start_time=start,
                    result=result,
                    drawn_failures=tuple(drawn),
                )
            )
            if result.completed:
                return FailureRunResult(
                    segments=segments,
                    store=strategy.result_store(),
                    exit_values=result.exit_values,
                    strategy_facts=strategy.facts(),
                )
            if not result.aborted:
                raise SimulationError(
                    f"segment {index} ended without completing or aborting "
                    f"(states: {set(s.value for s in result.states.values())})"
                )
            # Pre-restart recovery step — for single-level ckpt this is the
            # paper's shell-script cleanup of incomplete checkpoint sets;
            # multi-level additionally drops the tiers the failure destroyed.
            strategy.on_abort(
                result,
                self.system.nranks,
                check=self.check if self.check is not None else checking_enabled(),
                observer=self.observer,
            )
            start = result.exit_time
        raise SimulationError(
            f"application did not complete within {self.max_restarts} restarts"
        )
