"""The :class:`XSim` facade: one configured simulation run.

Ties together the engine, the hardware models, the simulated MPI layer, and
the resilience injection surface.  One ``XSim`` instance is one simulated
job execution (the engine is single-shot); the
:class:`~repro.core.restart.RestartDriver` creates a fresh instance per
failure/restart segment, carrying the simulated exit time forward.

``XSim`` is a compatibility facade over the :mod:`repro.run` layer: its
constructor keywords map onto a :class:`~repro.run.scenario.Scenario`'s
fields, instrumentation (sanitizer, event trace, observer) attaches
through the :mod:`repro.run.instruments` hook table, and :meth:`XSim.run`
dispatches through the :mod:`repro.run.backends` registry — the serial
and sharded engines are registry entries, not hand-coded branches here.

Usage::

    sim = XSim(SystemConfig.paper_system(nranks=4096))
    sim.inject_failure(rank=17, time=1000.0)          # rank/time pair
    sim.inject_schedule(FailureSchedule.parse("3@5s"))  # CLI/env format
    result = sim.run(my_app, args=(cfg,))

    sim = XSim.from_scenario(Scenario(ranks=4096, app="heat3d"))
"""

from __future__ import annotations

from typing import IO, TYPE_CHECKING, Any

import numpy as np

from repro.check.sanitizer import Sanitizer
from repro.check.trace import EventTrace
from repro.core.faults.schedule import (
    CorrelatedFailure,
    FailureSchedule,
    LinkDegradeFault,
    ScheduledFailure,
    StragglerFault,
    expand_correlated,
)
from repro.core.faults.softerror import SoftErrorInjector
from repro.core.harness.config import SystemConfig
from repro.mpi.world import MpiWorld
from repro.models.memory import MemoryTracker
from repro.obs import Observer
from repro.pdes.engine import Engine, SimulationResult
from repro.run.backends import backend_for, get_backend
from repro.run.instruments import attach_instruments
from repro.util.errors import SimulationError
from repro.util.rng import RngStreams
from repro.util.simlog import SimLog

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.run.scenario import Scenario


class XSim:
    """One configured, single-shot simulation of an MPI job."""

    def __init__(
        self,
        system: SystemConfig,
        seed: int = 0,
        start_time: float = 0.0,
        log_stream: IO[str] | None = None,
        record_trace: bool = False,
        check: bool | None = None,
        record_events: bool = False,
        coalesce_advances: bool = True,
        shards: int = 1,
        shard_transport: str | None = None,
        shard_lookahead: float | None = None,
        observe: "bool | Observer | None" = None,
        trace_detail: bool = False,
        scenario: "Scenario | None" = None,
        engine: str = "heap",
    ):
        self.system = system
        self.seed = seed
        self.rng = RngStreams(seed)
        #: Worker-process count for the sharded conservative-parallel
        #: engine (``repro.pdes.sharded``); 1 = serial.  Scenario-driven
        #: construction (:meth:`from_scenario`, the CLI, campaigns) passes
        #: a count already through the registry's jobs x shards CPU cap
        #: (:func:`repro.run.backends.capped_shards`); direct construction
        #: takes the count literally (benchmarks measure deliberate
        #: oversubscription this way).
        self.shards = shards
        self.shard_transport = shard_transport
        self.shard_lookahead = shard_lookahead
        #: The declarative spec this simulation was built from, when it
        #: came through :meth:`from_scenario`/:mod:`repro.run` (``None``
        #: for directly constructed instances).
        self.scenario = scenario
        if engine not in ("heap", "flat"):
            raise SimulationError(f"engine must be 'heap' or 'flat', got {engine!r}")
        #: Event-core kind this simulation runs on (``"heap"``: the tuple
        #: binary heap; ``"flat"``: the slab-pool flat core).  Shard
        #: replicas are built with the same core (see
        #: :func:`repro.pdes.sharded._build_replica`).
        self.engine_name = engine
        if self.shards > 1:
            from repro.pdes.sharded import ShardedMpiWorld, WindowedEngine

            engine_cls, world_cls = WindowedEngine, ShardedMpiWorld
        else:
            engine_cls, world_cls = Engine, MpiWorld
        if engine == "flat":
            from repro.pdes.flatcore import flat_engine_class

            engine_cls = flat_engine_class(windowed=self.shards > 1)
        self.engine = engine_cls(
            start_time=start_time,
            log=SimLog(stream=log_stream),
            coalesce_advances=coalesce_advances,
        )
        self.memory = MemoryTracker()
        self.world = world_cls(
            self.engine,
            system.make_network(),
            processor=system.make_processor(),
            filesystem=system.filesystem,
            memory=self.memory,
            strict_finalize=system.strict_finalize,
            collective_algorithm=system.collective_algorithm,
            record_trace=record_trace,
        )
        # Instrumentation wires through the repro.run hook table (one
        # attach point shared by every backend and launcher):
        # ``check=None`` defers to the ``XSIM_CHECK`` environment
        # variable; ``record_events=True`` records the dispatch trace for
        # replay diffing; ``observe`` accepts ``True`` or an existing
        # :class:`~repro.obs.Observer` (e.g. shared across restart
        # segments by the driver).
        attached = attach_instruments(
            self,
            check=check,
            record_events=record_events,
            observe=observe,
            trace_detail=trace_detail,
        )
        #: Runtime invariant sanitizer (simcheck), or ``None``.
        self.checker: Sanitizer | None = attached.checker
        #: Event-trace recorder, or ``None``.
        self.event_trace: EventTrace | None = attached.event_trace
        #: Observability bus, or ``None``.  See :mod:`repro.obs`.
        self.observer: Observer | None = attached.observer
        self._soft_errors: SoftErrorInjector | None = None
        self._pending_failures: list[tuple[int, float]] = []
        #: Snapshot of the failures armed before :meth:`run`; the sharded
        #: coordinator derives its lockstep horizon from it.
        self._armed_failures: list[tuple[int, float]] = []
        #: Degraded-performance faults (stragglers, link degradation)
        #: armed on the world's fault overlay; shard replicas re-arm them
        #: (see :func:`repro.pdes.sharded._build_replica`).
        self._armed_perturbations: list[StragglerFault | LinkDegradeFault] = []
        self._ran = False
        #: Filled by a sharded run (``repro.pdes.sharded.ShardStats``).
        self.shard_stats = None

    # ------------------------------------------------------------------
    # injection surface
    # ------------------------------------------------------------------
    def inject_failure(self, rank: int, time: float) -> None:
        """Arm an MPI process failure (earliest ``time``, paper §IV-B).

        May be called before or after :meth:`run` launched the job;
        pre-launch injections are applied at launch.
        """
        self._check_rank(rank)
        if rank < len(self.engine.vps):
            self.engine.schedule_failure(rank, time)
        else:
            self._pending_failures.append((rank, time))

    def inject_schedule(self, schedule: FailureSchedule) -> None:
        """Arm every entry of a schedule, dispatching by fault kind:
        fail-stops go to the engine's failure machinery, correlated
        failures expand over the topology neighborhood into fail-stops,
        and degraded-performance faults arm the world's fault overlay."""
        schedule.validate(self.system.nranks)
        for entry in schedule:
            if isinstance(entry, ScheduledFailure):
                self.inject_failure(entry.rank, entry.time)
            elif isinstance(entry, CorrelatedFailure):
                for rank, time in expand_correlated(
                    entry, self.world.network, self.system.nranks
                ):
                    self.inject_failure(rank, time)
            else:
                self.inject_perturbation(entry)

    def inject_perturbation(self, fault: "StragglerFault | LinkDegradeFault") -> None:
        """Arm a degraded-performance fault (straggler or link degrade) on
        the world's cost overlay."""
        if isinstance(fault, StragglerFault):
            self._check_rank(fault.rank)
        elif isinstance(fault, LinkDegradeFault):
            self._check_rank(fault.rank_a)
            self._check_rank(fault.rank_b)
        else:
            raise SimulationError(
                f"not a degraded-performance fault: {type(fault).__name__}"
            )
        self._armed_perturbations.append(fault)
        self.world.faults.arm(fault)

    def inject_from_environment(self) -> FailureSchedule:
        """Arm the ``XSIM_FAILURES`` environment schedule; returns it."""
        schedule = FailureSchedule.from_environment()
        self.inject_schedule(schedule)
        return schedule

    @property
    def soft_errors(self) -> SoftErrorInjector:
        """The lazily created soft-error injector bound to this run."""
        if self._soft_errors is None:
            self._soft_errors = SoftErrorInjector(
                engine=self.engine, memory=self.memory, rng=self.rng.get("soft-errors")
            )
        return self._soft_errors

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.system.nranks:
            raise SimulationError(f"rank {rank} outside job of {self.system.nranks} ranks")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(
        cls,
        scenario: "Scenario",
        start_time: float = 0.0,
        log_stream: IO[str] | None = None,
        observe: "bool | Observer | None" = None,
    ) -> "XSim":
        """Build the simulation a scenario describes, on the scenario's
        resolved backend (see :mod:`repro.run.backends`)."""
        return get_backend(scenario.backend_name()).make_sim(
            scenario, start_time=start_time, log_stream=log_stream, observe=observe
        )

    @property
    def backend(self):
        """The registry backend this instance dispatches to."""
        return backend_for(self.shards, self.shard_transport)

    def run(self, app, args: tuple = (), nranks: int | None = None) -> SimulationResult:
        """Launch ``app(mpi, *args)`` on ``nranks`` (default: the system's
        full rank count) and simulate to completion or abort via the
        backend registry."""
        if self._ran:
            raise SimulationError("XSim instances are single-shot; create a new one")
        self._ran = True
        nranks = nranks if nranks is not None else self.system.nranks
        self.world.launch(app, nranks, args)
        self._armed_failures = list(self._pending_failures)
        for rank, time in self._pending_failures:
            self.engine.schedule_failure(rank, time)
        self._pending_failures.clear()
        return self.backend.run_engine(self, app, args, nranks)

    # ------------------------------------------------------------------
    # architecture self-description (Figure 1 reproduction)
    # ------------------------------------------------------------------
    def describe_architecture(self) -> dict[str, Any]:
        """Structured description of the layered architecture, mirroring
        the paper's Figure 1 (a) architecture / (b) design diagrams."""
        net = self.world.network
        backend = self.backend
        return {
            "backend": backend.describe(self),
            "layers": [
                "application (simulated MPI processes / virtual processes)",
                "simulated MPI layer (pt2pt matching, collectives, error handlers, ULFM)",
                "resilience extensions (failure injection, detection/notification, abort, C/R)",
                "PDES engine (virtual clocks, event queue, conservative synchronization)",
                "hardware models (processor, network, file system, power, memory)",
            ],
            "virtual_processes": self.system.nranks,
            "topology": type(net.topology).__name__,
            "nodes": net.topology.nnodes,
            "ranks_per_node": net.ranks_per_node,
            "link_latency_s": net.system.latency,
            "link_bandwidth_Bps": net.system.bandwidth,
            "eager_threshold_B": net.eager_threshold,
            "detection_timeout_s": net.system.detection_timeout,
            "collective_algorithm": self.world.collective_algorithm,
            "processor_slowdown": self.system.slowdown,
            "components": {
                "engine": type(self.engine).__name__,
                "world": type(self.world).__name__,
                "network_model": type(net).__name__,
                "processor_model": type(self.world.processor).__name__,
                "filesystem_model": type(self.world.filesystem).__name__,
                "memory_tracker": type(self.memory).__name__,
            },
        }

    def render_architecture(self) -> str:
        """ASCII rendering of :meth:`describe_architecture`."""
        d = self.describe_architecture()
        width = 74
        lines = ["+" + "-" * width + "+"]
        for layer in d["layers"]:
            lines.append("| " + layer.ljust(width - 2) + " |")
            lines.append("+" + "-" * width + "+")
        lines.append(
            f"simulated machine: {d['virtual_processes']} VPs on {d['nodes']} nodes "
            f"({d['topology']}), {d['collective_algorithm']} collectives, "
            f"{d['processor_slowdown']:g}x slowdown"
        )
        b = d["backend"]
        transport = f", {b['shard_transport']} transport" if b["shard_transport"] else ""
        shard_word = "shard" if b["shards"] == 1 else "shards"
        lines.append(
            f"execution backend: {b['name']} ({b['shards']} {shard_word}{transport})"
        )
        return "\n".join(lines)
