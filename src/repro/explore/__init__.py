"""Adaptive fault-space exploration (``xsim-run explore``).

Instead of sweeping a fixed fault grid, :class:`Explorer` stratifies the
(kind x rank x time x magnitude) fault space, seeds every stratum, and
then steers each simulation batch at whichever stratum's impact estimate
is still the least certain — stopping when every Wilson interval is
tighter than the requested width.  Cells run through the same
:func:`~repro.run.sweep.run_cells` core as sweeps, so the result cache
memoises them and a rerun (or a tightened CI target, which replays the
identical allocation prefix) is nearly free.
"""

from repro.explore.report import render_scorecard, scorecard, scorecard_json
from repro.explore.sampler import (
    ExploreResult,
    Explorer,
    StrategyExploreResult,
    Stratum,
    StratumState,
    build_strata,
    run_explore,
    wilson_halfwidth,
    wilson_interval,
    z_score,
)
from repro.explore.spec import (
    KINDS,
    ExploreSpec,
    load_explore_file,
    read_explore_environment,
)

__all__ = [
    "KINDS",
    "ExploreResult",
    "ExploreSpec",
    "Explorer",
    "Stratum",
    "StrategyExploreResult",
    "StratumState",
    "build_strata",
    "load_explore_file",
    "read_explore_environment",
    "render_scorecard",
    "run_explore",
    "scorecard",
    "scorecard_json",
    "wilson_halfwidth",
    "wilson_interval",
    "z_score",
]
