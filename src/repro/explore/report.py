"""The resilience scorecard: deterministic export of an exploration.

:func:`scorecard` reduces an :class:`~repro.explore.sampler.ExploreResult`
to a primitive dict whose JSON serialisation is byte-identical across
reruns of the same spec — it contains estimates, intervals, and budgets,
never wall-clock or cache facts (those are execution accidents, printed
to stdout by the CLI instead).  :func:`render_scorecard` is the
human-facing table view of the same data.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.harness.report import format_table
from repro.explore.sampler import (
    ExploreResult,
    StratumState,
    StrategyExploreResult,
    bootstrap_mean_ci,
    wilson_halfwidth,
    wilson_interval,
)
from repro.util.stats import summarize

#: Seed-material tag separating bootstrap draws from the sampler's cell
#: draws (arbitrary constant, stable forever).
_BOOT_TAG = 0xB007


def _stratum_record(result: ExploreResult, state: StratumState) -> dict[str, Any]:
    s = state.stratum
    lo, hi = wilson_interval(state.impacted, state.n, result.z)
    d_lo, d_hi = bootstrap_mean_ci(
        state.deltas, (result.spec.seed, _BOOT_TAG, s.index)
    )
    deltas = summarize(state.deltas)
    record: dict[str, Any] = {
        "index": s.index,
        "kind": s.kind,
        "label": s.label(),
        "rank_lo": s.rank_lo,
        "rank_hi": s.rank_hi,
        "time_lo": s.time_lo,
        "time_hi": s.time_hi,
        "n": state.n,
        "impacted": state.impacted,
        "died": state.died,
        "impact_p": (state.impacted / state.n) if state.n else None,
        "impact_ci": [lo, hi],
        "impact_halfwidth": wilson_halfwidth(state.impacted, state.n, result.z),
        "delta_mean": deltas.mean,
        "delta_stddev": deltas.stddev,
        "delta_ci": [d_lo, d_hi],
    }
    if s.kind in ("straggler", "link_degrade"):
        record["mag_lo"], record["mag_hi"] = s.mag_lo, s.mag_hi
    if s.kind == "correlated":
        record["radius"] = s.radius
    return record


def _kind_record(result: ExploreResult, kind: str) -> dict[str, Any]:
    states = [s for s in result.strata if s.stratum.kind == kind]
    n = sum(s.n for s in states)
    impacted = sum(s.impacted for s in states)
    died = sum(s.died for s in states)
    deltas = [d for s in states for d in s.deltas]
    e2s = [t for s in states for t in s.e2s]
    mttfs = [m for s in states for m in s.mttfs]
    dsum = summarize(deltas)
    esum = summarize(e2s)
    msum = summarize(mttfs)
    return {
        "kind": kind,
        "n": n,
        "impacted": impacted,
        "died": died,
        "impact_p": (impacted / n) if n else None,
        # E1 is the fault-free completion time; delta_* measures the
        # relative E2/E1 stretch this kind inflicts.
        "delta_mean": dsum.mean,
        "delta_max": dsum.maximum,
        "e2_mean": esum.mean,
        "e2_delta_mean": (esum.mean - result.e1) / result.e1 if n else 0.0,
        "mttf_a_mean": msum.mean if msum.count else None,
        "mttf_samples": msum.count,
    }


def scorecard(result: "ExploreResult | StrategyExploreResult") -> dict[str, Any]:
    """The deterministic scorecard dict (JSON-stable across reruns).  A
    multi-strategy rollup nests one full scorecard per strategy under a
    comparison summary."""
    if isinstance(result, StrategyExploreResult):
        return {
            "explore": result.spec.describe(),
            "comparison": [
                _strategy_record(name, sub) for name, sub in result.results
            ],
            "strategies": {
                name: scorecard(sub) for name, sub in result.results
            },
        }
    return {
        "explore": result.spec.describe(),
        "z": result.z,
        "baseline": {
            "e1": result.e1,
            "result_digest": result.baseline_digest,
            "time_hi": result.time_hi,
        },
        "budget": {
            "cells": result.spent,
            "batches": len(result.batches),
            "grid_equivalent_cells": result.grid_cells,
            "cells_ratio": result.cells_ratio,
            "stopped": result.stopped,
        },
        "kinds": [
            _kind_record(result, kind) for kind in result.spec.kinds
        ],
        "strata": [_stratum_record(result, s) for s in result.strata],
        "batches": result.batches,
    }


def _strategy_record(name: str, result: ExploreResult) -> dict[str, Any]:
    """One strategy's aggregate line of the head-to-head comparison."""
    n = sum(s.n for s in result.strata)
    impacted = sum(s.impacted for s in result.strata)
    died = sum(s.died for s in result.strata)
    deltas = [d for s in result.strata for d in s.deltas]
    dsum = summarize(deltas)
    return {
        "strategy": name,
        "e1": result.e1,
        "cells": result.spent,
        "impacted": impacted,
        "died": died,
        "impact_p": (impacted / n) if n else None,
        "delta_mean": dsum.mean,
        "delta_max": dsum.maximum,
        "stopped": result.stopped,
    }


def scorecard_json(result: "ExploreResult | StrategyExploreResult") -> str:
    """Canonical JSON bytes of the scorecard (sorted keys, 2-space
    indent, trailing newline) — the thing CI diffs for byte-identity."""
    return json.dumps(scorecard(result), sort_keys=True, indent=2) + "\n"


def _pct(p: float | None) -> str:
    return "-" if p is None else f"{100 * p:.1f}%"


def render_scorecard(result: "ExploreResult | StrategyExploreResult") -> str:
    """Human-facing report: per-kind summary + per-stratum table.  A
    multi-strategy rollup leads with the head-to-head comparison, then
    each strategy's full scorecard."""
    if isinstance(result, StrategyExploreResult):
        records = [_strategy_record(name, sub) for name, sub in result.results]
        rows = [
            [
                r["strategy"],
                f"{r['e1']:.6g}",
                str(r["cells"]),
                _pct(r["impact_p"]),
                str(r["died"]),
                f"{r['delta_mean']:+.3f}",
                r["stopped"],
            ]
            for r in records
        ]
        lines = [
            "strategy head-to-head (identical fault draws per campaign)",
            format_table(
                ["strategy", "E1", "cells", "impact", "died", "d(E2/E1)", "stopped"],
                rows,
            ),
            "",
        ]
        for name, sub in result.results:
            lines.append(f"--- strategy: {name} ---")
            lines.append(render_scorecard(sub).rstrip("\n"))
            lines.append("")
        return "\n".join(lines).rstrip("\n") + "\n"
    card = scorecard(result)
    lines = [
        "resilience scorecard",
        f"  baseline E1       : {result.e1:.6g} s "
        f"(digest {result.baseline_digest[:12]})",
        f"  cells spent       : {result.spent} in {len(result.batches)} batches "
        f"({result.stopped})",
        f"  grid equivalent   : {card['budget']['grid_equivalent_cells']} cells "
        f"(ratio {card['budget']['cells_ratio']:.2f})",
        f"  CI target         : half-width <= {result.spec.ci_width:g} "
        f"at {100 * result.spec.confidence:g}% confidence",
        "",
    ]
    kind_rows = [
        [
            k["kind"],
            str(k["n"]),
            _pct(k["impact_p"]),
            str(k["died"]),
            f"{k['delta_mean']:+.3f}",
            f"{k['e2_mean']:.6g}" if k["n"] else "-",
            f"{k['mttf_a_mean']:.6g}" if k["mttf_a_mean"] is not None else "-",
        ]
        for k in card["kinds"]
    ]
    lines.append(
        format_table(
            ["kind", "n", "impact", "died", "d(E2/E1)", "E2 mean", "MTTF_a"],
            kind_rows,
        )
    )
    lines.append("")
    stratum_rows = [
        [
            r["label"],
            str(r["n"]),
            _pct(r["impact_p"]),
            f"[{r['impact_ci'][0]:.2f},{r['impact_ci'][1]:.2f}]",
            f"{r['impact_halfwidth']:.3f}",
            f"{r['delta_mean']:+.3f}",
        ]
        for r in card["strata"]
    ]
    lines.append(
        format_table(
            ["stratum", "n", "impact", "CI", "hw", "d mean"], stratum_rows
        )
    )
    return "\n".join(lines) + "\n"
