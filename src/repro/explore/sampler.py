"""Stratified adaptive sampling over the fault space.

The explorer runs a batched explore -> simulate -> refine loop:

1. *Stratify* the fault space into (kind x rank-bin x time-bin x
   magnitude-bin) strata.
2. *Seed* every stratum with ``min_samples`` cells, then repeatedly
   allocate each batch greedily to whichever stratum currently has the
   widest Wilson confidence interval on its impact proportion (ties to
   the lowest stratum index).  The allocation policy never looks at the
   stopping target, so a tighter ``ci_width`` replays the identical
   sampling trajectory and simply runs more rounds — stopping is monotone
   in the threshold, and a rerun against a warm result cache replays the
   prefix for free.
3. *Stop* when every stratum's half-width is within ``ci_width`` or the
   ``max_cells`` budget is spent.

Determinism: one root ``numpy.random.SeedSequence(spec.seed)`` spawns a
child per sampled cell, in allocation order; no wall-clock or set/dict
iteration feeds the draw.  Two runs with the same spec produce the same
cells, and therefore (cells being deterministic simulations) the same
scorecard, byte for byte.

Impact of a cell: the job *died* (did not complete within the restart
budget) or its completion time exceeded the fault-free baseline E1 by
more than ``impact_threshold`` relative.  The per-stratum estimate is the
Wilson score interval on that binary proportion; the continuous
completion-time delta gets a seeded-bootstrap CI alongside.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.faults.schedule import (
    CorrelatedFailure,
    LinkDegradeFault,
    ScheduledFailure,
    StragglerFault,
)
from repro.explore.spec import ExploreSpec
from repro.run.sweep import run_cells
from repro.util.errors import SimulationError

# ----------------------------------------------------------------------
# confidence-interval machinery
# ----------------------------------------------------------------------

def inverse_normal_cdf(p: float) -> float:
    """Acklam's rational approximation to the standard normal quantile
    (|relative error| < 1.15e-9 — ample for CI z-scores; avoids a scipy
    dependency)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile needs p in (0, 1), got {p}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)


def z_score(confidence: float) -> float:
    """Two-sided z for a confidence level (0.95 -> ~1.96)."""
    return inverse_normal_cdf(0.5 + confidence / 2.0)


def wilson_interval(k: int, n: int, z: float) -> tuple[float, float]:
    """Wilson score interval for ``k`` successes in ``n`` trials.
    ``n == 0`` returns the maximally uncertain (0, 1)."""
    if n == 0:
        return (0.0, 1.0)
    p = k / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2 * n)) / denom
    half = z * math.sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / denom
    return (max(0.0, center - half), min(1.0, center + half))


def wilson_halfwidth(k: int, n: int, z: float) -> float:
    """Half the Wilson interval width (0.5 for the empty stratum)."""
    lo, hi = wilson_interval(k, n, z)
    return (hi - lo) / 2.0


def projected_halfwidth(p: float, n: int, z: float) -> float:
    """Wilson half-width a stratum *would* have after ``n`` samples if its
    impact proportion held at ``p`` (fractional successes allowed — this
    is the allocator's projection, not an observed interval)."""
    if n == 0:
        return 0.5
    z2 = z * z
    denom = 1.0 + z2 / n
    return z * math.sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / denom


def bootstrap_mean_ci(
    values: list[float], seed_material: tuple[int, ...], nboot: int = 200,
    lo_q: float = 0.025, hi_q: float = 0.975,
) -> tuple[float, float]:
    """Seeded percentile-bootstrap CI on the mean of ``values``.

    The seed derives only from ``seed_material`` (spec seed + stratum
    index), never from how many batches it took to collect the values —
    so the reported CI is stable under resumption."""
    if not values:
        return (0.0, 0.0)
    if len(values) == 1:
        return (values[0], values[0])
    rng = np.random.default_rng(np.random.SeedSequence(seed_material))
    arr = np.asarray(values, dtype=float)
    idx = rng.integers(0, len(arr), size=(nboot, len(arr)))
    means = arr[idx].mean(axis=1)
    return (
        float(np.quantile(means, lo_q)),
        float(np.quantile(means, hi_q)),
    )


def required_n(p: float, z: float, target_halfwidth: float, cap: int = 1 << 20) -> int:
    """Smallest sample count whose Wilson half-width at proportion ``p``
    is within ``target_halfwidth`` (the per-stratum cost of a uniform
    grid that guarantees the same CI everywhere)."""
    k_of = lambda n: int(round(p * n))  # noqa: E731 - local helper
    lo, hi = 1, 1
    while wilson_halfwidth(k_of(hi), hi, z) > target_halfwidth:
        hi *= 2
        if hi >= cap:
            return cap
    while lo < hi:
        mid = (lo + hi) // 2
        if wilson_halfwidth(k_of(mid), mid, z) <= target_halfwidth:
            hi = mid
        else:
            lo = mid + 1
    return lo


# ----------------------------------------------------------------------
# strata
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Stratum:
    """One (kind x rank-bin x time-bin x magnitude-bin) cell of the
    stratification.  ``radius`` >= 0 identifies a correlated stratum;
    ``mag_lo/mag_hi`` bound the factor range for straggler/link strata."""

    index: int
    kind: str
    rank_lo: int
    rank_hi: int  # exclusive
    time_lo: float
    time_hi: float
    mag_lo: float = 0.0
    mag_hi: float = 0.0
    radius: int = -1

    def label(self) -> str:
        mag = ""
        if self.kind in ("straggler", "link_degrade"):
            mag = f" x{self.mag_lo:g}-{self.mag_hi:g}"
        elif self.kind == "correlated":
            mag = f" r={self.radius}"
        return (
            f"{self.kind} ranks[{self.rank_lo},{self.rank_hi}) "
            f"t[{self.time_lo:.4g},{self.time_hi:.4g}){mag}"
        )


def build_strata(spec: ExploreSpec, time_hi: float) -> list[Stratum]:
    """The deterministic stratification: kinds in spec order, rank bins
    outermost, then time bins, then magnitude bins."""
    nranks = spec.scenario.ranks
    strata: list[Stratum] = []
    t_lo, t_span = spec.time_lo, time_hi - spec.time_lo
    for kind in spec.kinds:
        if kind == "failstop":
            mags: list[tuple[float, float, int]] = [(0.0, 0.0, -1)]
        elif kind == "correlated":
            mags = [(0.0, 0.0, r) for r in spec.radii]
        else:
            lo, hi = spec.straggler_factor if kind == "straggler" else spec.link_factor
            step = (hi - lo) / spec.magnitude_bins
            mags = [
                (lo + i * step, hi if i == spec.magnitude_bins - 1 else lo + (i + 1) * step, -1)
                for i in range(spec.magnitude_bins)
            ]
        for rb in range(spec.rank_bins):
            r_lo = rb * nranks // spec.rank_bins
            r_hi = (rb + 1) * nranks // spec.rank_bins
            if r_hi <= r_lo:
                continue
            for tb in range(spec.time_bins):
                s_lo = t_lo + tb * t_span / spec.time_bins
                s_hi = t_lo + (tb + 1) * t_span / spec.time_bins
                for mag_lo, mag_hi, radius in mags:
                    strata.append(
                        Stratum(
                            index=len(strata), kind=kind,
                            rank_lo=r_lo, rank_hi=r_hi,
                            time_lo=s_lo, time_hi=s_hi,
                            mag_lo=mag_lo, mag_hi=mag_hi, radius=radius,
                        )
                    )
    return strata


def draw_cell(
    spec: ExploreSpec,
    stratum: Stratum,
    network,
    e1: float,
    rng: np.random.Generator,
) -> str:
    """Sample one concrete fault from a stratum: the cell's ``failures``
    string.  Consumption order of ``rng`` is fixed per kind."""
    rank = int(rng.integers(stratum.rank_lo, stratum.rank_hi))
    time = stratum.time_lo + (stratum.time_hi - stratum.time_lo) * float(rng.random())
    if stratum.kind == "failstop":
        return ScheduledFailure(rank, time).render()
    if stratum.kind == "correlated":
        return CorrelatedFailure(rank, time, stratum.radius, spec.spread).render()
    factor = stratum.mag_lo + (stratum.mag_hi - stratum.mag_lo) * float(rng.random())
    duration = spec.straggler_duration_frac * e1
    if stratum.kind == "straggler":
        return StragglerFault(rank, time, factor, duration).render()
    # link_degrade: partner = a rank one topology hop away (the links the
    # app's halo traffic actually crosses), drawn uniformly.
    node = network.node_of(rank)
    rpn = network.ranks_per_node
    candidates = sorted(
        n * rpn
        for n in network.topology.neighbors(node)
        if n * rpn < spec.scenario.ranks and n * rpn != rank
    )
    if not candidates:
        partner = (rank + 1) % spec.scenario.ranks
    else:
        partner = candidates[int(rng.integers(len(candidates)))]
    return LinkDegradeFault(rank, partner, time, factor, duration).render()


# ----------------------------------------------------------------------
# the explorer
# ----------------------------------------------------------------------

@dataclass
class StratumState:
    """Mutable tallies of one stratum during exploration."""

    stratum: Stratum
    n: int = 0
    impacted: int = 0
    deltas: list[float] = field(default_factory=list)
    e2s: list[float] = field(default_factory=list)
    mttfs: list[float] = field(default_factory=list)
    died: int = 0


@dataclass
class ExploreResult:
    """Everything one exploration produced (see
    :func:`repro.explore.report.scorecard` for the deterministic export)."""

    spec: ExploreSpec
    z: float
    e1: float
    baseline_digest: str
    time_hi: float
    strata: list[StratumState]
    batches: list[dict[str, Any]]
    spent: int
    stopped: str
    #: Execution facts, never part of the scorecard bytes: cache hits and
    #: wall time saved on this invocation.
    cache_hits: int = 0
    cache_saved_s: float = 0.0

    @property
    def grid_cells(self) -> int:
        """Cell count of the uniform grid that would guarantee the same
        half-width everywhere: every stratum sized for the *worst* one
        (a fixed grid cannot allocate adaptively)."""
        worst = max(
            required_n(
                (s.impacted / s.n) if s.n else 0.5, self.z, self.spec.ci_width
            )
            for s in self.strata
        )
        return worst * len(self.strata)

    @property
    def cells_ratio(self) -> float:
        """Adaptive cells spent / equivalent-grid cells (< 1 = saved)."""
        grid = self.grid_cells
        return self.spent / grid if grid else math.inf


class Explorer:
    """One adaptive exploration campaign (see module docstring)."""

    def __init__(
        self,
        spec: ExploreSpec,
        cache: Any = None,
        jobs: int | None = None,
        observer: Any = None,
    ):
        self.spec = spec
        self.cache = cache
        self.jobs = spec.scenario.jobs if jobs is None else jobs
        self.observer = observer
        self.z = z_score(spec.confidence)

    # -- internals -----------------------------------------------------
    def _measure_baseline(self) -> dict[str, Any]:
        summary = run_cells(
            [self.spec.scenario], jobs=1, cache=self.cache, key_prefix="explore-base"
        )[0]
        if not summary["completed"]:
            raise SimulationError(
                "the fault-free base scenario did not complete; an "
                "exploration needs a healthy baseline E1"
            )
        return summary

    def _allocate(self, states: list[StratumState], budget: int) -> list[int]:
        """Stratum index per cell of the next batch.

        Seeding round (all-empty strata): ``min_samples`` each.  After
        that: greedy minimax — each cell goes to the stratum with the
        widest *projected* half-width (current p, projected n), ties to
        the lowest index.  Deliberately independent of ``ci_width`` so
        stopping is monotone in the threshold.
        """
        spec = self.spec
        if all(s.n == 0 for s in states):
            alloc = [s.stratum.index for s in states for _ in range(spec.min_samples)]
            return alloc[:budget]
        # A stratum the truncated seeding round never reached projects at
        # the maximally uncertain p = 0.5, i.e. highest priority.
        probs = [s.impacted / s.n if s.n else 0.5 for s in states]
        extra = [0] * len(states)
        alloc: list[int] = []
        for _ in range(min(spec.batch, budget)):
            widths = [
                projected_halfwidth(probs[i], s.n + extra[i], self.z)
                for i, s in enumerate(states)
            ]
            pick = max(range(len(states)), key=lambda i: (widths[i], -i))
            extra[pick] += 1
            alloc.append(pick)
        return alloc

    # -- driver --------------------------------------------------------
    def run(self) -> ExploreResult:
        spec = self.spec
        base_summary = self._measure_baseline()
        e1 = float(base_summary["exit_time"])
        cache_hits = 1 if base_summary.get("cached") else 0
        cache_saved = float(base_summary.get("saved_s", 0.0))
        time_hi = spec.time_hi if spec.time_hi is not None else e1
        network = spec.scenario.system_config().make_network()
        states = [StratumState(s) for s in build_strata(spec, time_hi)]
        root = np.random.SeedSequence(spec.seed)
        batches: list[dict[str, Any]] = []
        spent = 0
        stopped = "max-cells"
        while True:
            widths = [wilson_halfwidth(s.impacted, s.n, self.z) for s in states]
            if spent > 0 and max(widths) <= spec.ci_width:
                stopped = "ci-target"
                break
            if spent >= spec.max_cells:
                stopped = "max-cells"
                break
            alloc = self._allocate(states, spec.max_cells - spent)
            if not alloc:
                stopped = "max-cells"
                break
            children = root.spawn(len(alloc))
            cells: list[tuple[int, str]] = []
            for s_idx, child in zip(alloc, children):
                rng = np.random.default_rng(child)
                cells.append(
                    (s_idx, draw_cell(spec, states[s_idx].stratum, network, e1, rng))
                )
            scenarios = [
                spec.scenario.with_(failures=failures) for _, failures in cells
            ]
            summaries = run_cells(
                scenarios, jobs=self.jobs, cache=self.cache, key_prefix="explore"
            )
            for (s_idx, _), summary in zip(cells, summaries):
                state = states[s_idx]
                t_done = float(summary.get("e2", summary["exit_time"]))
                delta = (t_done - e1) / e1
                completed = bool(summary["completed"])
                state.n += 1
                state.deltas.append(delta)
                state.e2s.append(t_done)
                if not completed:
                    state.died += 1
                if not completed or delta > spec.impact_threshold:
                    state.impacted += 1
                mttf_a = summary.get("mttf_a")
                if mttf_a is not None and math.isfinite(mttf_a):
                    state.mttfs.append(float(mttf_a))
                if summary.get("cached"):
                    cache_hits += 1
                    cache_saved += float(summary.get("saved_s", 0.0))
            spent += len(cells)
            batches.append(
                {
                    "index": len(batches),
                    "cells": len(cells),
                    "spent": spent,
                    "max_halfwidth": max(
                        wilson_halfwidth(s.impacted, s.n, self.z) for s in states
                    ),
                }
            )
            if self.observer is not None:
                import time as _time

                self.observer.host_instant(
                    _time.perf_counter(),
                    "explore-batch",
                    track="explore",
                    args={
                        "batch": batches[-1]["index"],
                        "cells": batches[-1]["cells"],
                        "spent": spent,
                        "max_halfwidth": batches[-1]["max_halfwidth"],
                    },
                )
        return ExploreResult(
            spec=spec,
            z=self.z,
            e1=e1,
            baseline_digest=base_summary["result_digest"],
            time_hi=time_hi,
            strata=states,
            batches=batches,
            spent=spent,
            stopped=stopped,
            cache_hits=cache_hits,
            cache_saved_s=cache_saved,
        )


@dataclass
class StrategyExploreResult:
    """Rollup of one exploration per resilience strategy (the spec's
    ``strategies`` list).  Every campaign uses the same root seed, hence
    identical fault draws per stratum — the per-strategy scorecards are
    directly comparable."""

    spec: ExploreSpec
    #: ``(strategy name, result)`` in the spec's ``strategies`` order.
    results: tuple[tuple[str, ExploreResult], ...]

    @property
    def baselines(self) -> int:
        return len(self.results)

    @property
    def spent(self) -> int:
        return sum(r.spent for _, r in self.results)

    @property
    def cache_hits(self) -> int:
        return sum(r.cache_hits for _, r in self.results)

    @property
    def cache_saved_s(self) -> float:
        return sum(r.cache_saved_s for _, r in self.results)


def run_explore(
    spec: ExploreSpec,
    cache: Any = None,
    jobs: int | None = None,
    observer: Any = None,
) -> "ExploreResult | StrategyExploreResult":
    """Run one adaptive exploration campaign end to end.  A spec with a
    ``strategies`` list runs one full campaign per strategy (same fault
    draws) and returns the :class:`StrategyExploreResult` rollup."""
    if not spec.strategies:
        return Explorer(spec, cache=cache, jobs=jobs, observer=observer).run()
    results = []
    for name in spec.strategies:
        # The base scenario's params only apply to its own strategy;
        # every other one runs at its defaults.
        params = spec.scenario.strategy_params if name == spec.scenario.strategy else ()
        sub = spec.with_(
            strategies=(),
            scenario=spec.scenario.with_(strategy=name, strategy_params=params),
        )
        results.append(
            (name, Explorer(sub, cache=cache, jobs=jobs, observer=observer).run())
        )
    return StrategyExploreResult(spec=spec, results=tuple(results))
