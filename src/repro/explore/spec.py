"""Declarative exploration specs: what fault space to explore, how hard.

An :class:`ExploreSpec` is a base :class:`~repro.run.scenario.Scenario`
(the machine/app/execution axes) plus an ``[explore]`` table describing
the fault axes — which fault kinds to sample, the (rank x time x
magnitude) ranges, the stratification, and the stopping rule.  It rides
in an ordinary scenario TOML file::

    [machine]
    ranks = 8

    [app]
    name = "heat3d"
    iterations = 60

    [explore]
    kinds = ["failstop", "straggler", "link_degrade", "correlated"]
    rank_bins = 2
    time_bins = 2
    ci_width = 0.15
    batch = 16

Resolution follows the scenario layering: spec file < environment
(``XSIM_EXPLORE_CI`` and friends) < explicit flags.  The base scenario must not pin ``failures``
or ``mttf`` — the explorer owns the fault axis.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any

from repro.run.scenario import Scenario, _parse_toml, load_scenario_file
from repro.util.errors import ConfigurationError

#: Fault kinds the explorer can sample.
KINDS = ("failstop", "straggler", "link_degrade", "correlated")


@dataclass(frozen=True)
class ExploreSpec:
    """One adaptive exploration campaign over a scenario's fault space."""

    #: Base scenario: machine, application, execution.  ``failures`` and
    #: ``mttf`` must be unset (the explorer varies the fault axis).
    scenario: Scenario = field(default_factory=Scenario)
    #: Fault kinds to stratify over (subset of :data:`KINDS`).
    kinds: tuple[str, ...] = KINDS
    #: Rank-range strata count (ranks split into equal contiguous bins).
    rank_bins: int = 2
    #: Injection-time strata count over [time_lo, time_hi).
    time_bins: int = 2
    #: Magnitude strata count for straggler/link factors.
    magnitude_bins: int = 1
    #: Injection-time range; ``time_hi`` None = the measured fault-free
    #: completion time E1 (so samples land during the run).
    time_lo: float = 0.0
    time_hi: float | None = None
    #: Straggler slowdown-factor range (>= 1) and window length as a
    #: fraction of E1.
    straggler_factor: tuple[float, float] = (1.5, 4.0)
    straggler_duration_frac: float = 0.25
    #: Link-degrade factor range (>= 1); windows use the same E1 fraction.
    link_factor: tuple[float, float] = (2.0, 8.0)
    #: Correlated-failure radii (each radius is its own magnitude stratum)
    #: and per-hop failure-time spread in seconds.
    radii: tuple[int, ...] = (1,)
    spread: float = 0.0
    #: A cell counts as *impacted* when the job dies or its completion
    #: time exceeds E1 by more than this relative threshold.
    impact_threshold: float = 0.01
    #: Stopping rule: sample until every stratum's Wilson half-width on
    #: the impact proportion is <= ci_width (at ``confidence``), or
    #: ``max_cells`` simulations were spent.
    ci_width: float = 0.15
    confidence: float = 0.95
    #: Cells per refinement batch after the seeding round, and the
    #: per-stratum seeding sample count.
    batch: int = 16
    min_samples: int = 4
    max_cells: int = 1024
    #: Root seed of the sampler's ``SeedSequence.spawn`` chain (separate
    #: from the scenario's simulation seed).
    seed: int = 0
    #: Resilience strategies to explore head-to-head: empty = just the
    #: base scenario's strategy; otherwise one full campaign per name
    #: (identical fault draws — same seed chain — so the scorecards are
    #: directly comparable).
    strategies: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.strategies:
            from repro.resilience import strategy_names

            for name in self.strategies:
                if name not in strategy_names():
                    raise ConfigurationError(
                        f"unknown explore strategy {name!r} (expected one "
                        f"of {', '.join(strategy_names())})"
                    )
        for kind in self.kinds:
            if kind not in KINDS:
                raise ConfigurationError(
                    f"unknown explore kind {kind!r} (expected one of {', '.join(KINDS)})"
                )
        if not self.kinds:
            raise ConfigurationError("explore needs at least one fault kind")
        if self.scenario.failures:
            raise ConfigurationError(
                "the explore base scenario must not set failures "
                "(the explorer owns the fault axis)"
            )
        if self.scenario.mttf is not None:
            raise ConfigurationError(
                "the explore base scenario must not set mttf "
                "(the explorer owns the fault axis)"
            )
        if self.scenario.max_restarts < 1:
            raise ConfigurationError(
                "explore needs scenario max_restarts >= 1 (a sampled "
                "fail-stop cell must be able to restart and finish)"
            )
        for name in ("rank_bins", "time_bins", "magnitude_bins", "batch",
                     "min_samples", "max_cells"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"explore {name} must be >= 1")
        if self.rank_bins > self.scenario.ranks:
            raise ConfigurationError(
                f"rank_bins ({self.rank_bins}) cannot exceed the job's "
                f"{self.scenario.ranks} ranks"
            )
        if not 0.0 < self.ci_width < 0.5:
            raise ConfigurationError(
                f"ci_width must be in (0, 0.5), got {self.ci_width}"
            )
        if not 0.5 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0.5, 1), got {self.confidence}"
            )
        if self.time_lo < 0 or (self.time_hi is not None and self.time_hi <= self.time_lo):
            raise ConfigurationError("explore needs 0 <= time_lo < time_hi")
        for lo, hi, name in (
            (*self.straggler_factor, "straggler_factor"),
            (*self.link_factor, "link_factor"),
        ):
            if not 1.0 <= lo <= hi:
                raise ConfigurationError(
                    f"explore {name} must satisfy 1 <= lo <= hi, got ({lo}, {hi})"
                )
        if any(r < 0 for r in self.radii) or not self.radii:
            raise ConfigurationError("explore radii must be non-empty, each >= 0")
        if self.spread < 0:
            raise ConfigurationError(f"explore spread must be >= 0, got {self.spread}")
        if not 0.0 < self.straggler_duration_frac <= 1.0:
            raise ConfigurationError(
                "explore straggler_duration_frac must be in (0, 1]"
            )
        if self.impact_threshold < 0:
            raise ConfigurationError("explore impact_threshold must be >= 0")

    def with_(self, **overrides: Any) -> "ExploreSpec":
        return replace(self, **overrides)

    def describe(self) -> dict[str, Any]:
        """Primitive-only record of the spec (scorecard header)."""
        out: dict[str, Any] = {
            f.name: list(v) if isinstance(v := getattr(self, f.name), tuple) else v
            for f in fields(self)
            if f.name != "scenario"
        }
        out["scenario_digest"] = self.scenario.scenario_digest()
        return out


_EXPLORE_KEYS = {f.name for f in fields(ExploreSpec)} - {"scenario"}

#: Environment overrides: variable -> (field, caster).
_ENV_FIELDS = {
    "XSIM_EXPLORE_CI": ("ci_width", float),
    "XSIM_EXPLORE_BATCH": ("batch", int),
    "XSIM_EXPLORE_MAX_CELLS": ("max_cells", int),
}


def read_explore_environment(environ=None) -> dict[str, Any]:
    """The environment layer of the explore precedence chain."""
    env = os.environ if environ is None else environ
    out: dict[str, Any] = {}
    for name, (field_name, cast) in _ENV_FIELDS.items():
        raw = env.get(name, "").strip()
        if not raw:
            continue
        try:
            out[field_name] = cast(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"{name} must be a {cast.__name__}, got {raw!r}"
            ) from exc
    return out


def _coerce_explore(key: str, value: Any) -> Any:
    """TOML value -> ExploreSpec field value (lists become tuples)."""
    if key in ("kinds", "radii", "strategies"):
        if not isinstance(value, list):
            raise ConfigurationError(f"explore.{key} must be a list")
        return tuple(value)
    if key in ("straggler_factor", "link_factor"):
        if not isinstance(value, list) or len(value) != 2:
            raise ConfigurationError(f"explore.{key} must be a [lo, hi] pair")
        return (float(value[0]), float(value[1]))
    return value


def load_explore_file(
    path: "str | Path",
    environ: dict[str, str] | None = None,
    use_environment: bool = True,
    scenario_overrides: dict[str, Any] | None = None,
    **overrides: Any,
) -> ExploreSpec:
    """Load an exploration spec: scenario tables + ``[explore]`` table,
    with environment (``XSIM_EXPLORE_CI`` and friends) and explicit
    overrides layered on top (file < environment < flags, like scenarios)."""
    scenario, grid = load_scenario_file(
        path,
        environ=environ,
        use_environment=use_environment,
        ignore_tables=("explore",),
        **(scenario_overrides or {}),
    )
    if grid:
        raise ConfigurationError(
            "an explore spec cannot also carry a [sweep] table"
        )
    doc = _parse_toml(Path(path).read_text())
    body = doc.get("explore", {})
    if not isinstance(body, dict):
        raise ConfigurationError("[explore] must be a table")
    layers: dict[str, Any] = {}
    for key, value in body.items():
        if key not in _EXPLORE_KEYS:
            raise ConfigurationError(
                f"unknown explore key {key!r} (expected "
                f"{', '.join(sorted(_EXPLORE_KEYS))})"
            )
        layers[key] = _coerce_explore(key, value)
    if use_environment:
        layers.update(read_explore_environment(environ))
    layers.update({k: v for k, v in overrides.items() if v is not None})
    unknown = set(layers) - _EXPLORE_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown explore field(s): {', '.join(sorted(unknown))}"
        )
    return ExploreSpec(scenario=scenario, **layers)
