"""Hardware models of the simulated extreme-scale system.

xSim extracts application performance "based on a processor and a network
model with the appropriate simulation scalability/accuracy trade-off".
This package provides those models plus the ones the paper lists as ongoing
work (file system, power) and the dynamic-memory tracking that enables the
soft-error injector:

* :mod:`repro.models.processor` — node compute speed (the paper slows the
  simulated node 1000x relative to a 1.7 GHz Opteron core);
* :mod:`repro.models.network` — topology (3-D torus et al.), link
  latency/bandwidth, eager/rendezvous protocol selection, per-tier failure
  detection timeouts;
* :mod:`repro.models.filesystem` — parallel file system cost model
  ("xSim's file system model is a work in progress");
* :mod:`repro.models.power` — node power/energy accounting (future work 5);
* :mod:`repro.models.memory` — per-VP dynamic memory tracking (the last
  piece needed for the soft-error injector).
"""

from repro.models.filesystem import FileSystemModel
from repro.models.memory import FlipRecord, MemoryRegion, MemoryTracker, RegionKind
from repro.models.power import PowerModel
from repro.models.processor import ProcessorModel

__all__ = [
    "FileSystemModel",
    "FlipRecord",
    "MemoryRegion",
    "MemoryTracker",
    "PowerModel",
    "ProcessorModel",
    "RegionKind",
]
