"""Parallel file system cost model.

The paper excludes checkpoint I/O cost from its experiments ("since the
individual checkpoint files are extremely small and xSim's file system model
is a work in progress, the file system overhead for checkpoint/restart was
not considered") but names file system models as future work (4).  This
model implements the straightforward shared-bandwidth PFS the paper's
discussion implies: writers share an aggregate backend bandwidth, each
client is additionally capped by its injection bandwidth, and every file
operation pays a metadata latency.

``FileSystemModel.disabled()`` gives the zero-cost configuration used for
the Table II reproduction; :mod:`benchmarks.test_filesystem_model` exercises
the non-zero model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError
from repro.util.units import parse_rate, parse_time


@dataclass(frozen=True)
class FileSystemModel:
    """Cost model of the simulated parallel file system.

    Parameters
    ----------
    aggregate_bandwidth:
        Total backend bandwidth shared by all concurrent clients
        (bytes/second, or a string like ``"500GB/s"``).
    client_bandwidth:
        Per-client cap (a single writer cannot exceed its node's injection
        bandwidth into the I/O network).
    metadata_latency:
        Fixed cost per file open/create/delete operation.
    enabled:
        When False every operation costs zero simulated time (the paper's
        Table II configuration).
    """

    aggregate_bandwidth: float = 500e9
    client_bandwidth: float = 4e9
    metadata_latency: float = 1e-3
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.aggregate_bandwidth <= 0 or self.client_bandwidth <= 0:
            raise ConfigurationError("file system bandwidths must be > 0")
        if self.metadata_latency < 0:
            raise ConfigurationError("metadata_latency must be >= 0")

    @staticmethod
    def disabled() -> "FileSystemModel":
        """The zero-overhead configuration the paper's experiments use."""
        return FileSystemModel(enabled=False)

    @staticmethod
    def create(
        aggregate_bandwidth: float | str = "500GB/s",
        client_bandwidth: float | str = "4GB/s",
        metadata_latency: float | str = "1ms",
    ) -> "FileSystemModel":
        """Build a model from human-readable unit strings."""
        return FileSystemModel(
            aggregate_bandwidth=parse_rate(aggregate_bandwidth),
            client_bandwidth=parse_rate(client_bandwidth),
            metadata_latency=parse_time(metadata_latency),
        )

    def effective_bandwidth(self, concurrent_clients: int) -> float:
        """Per-client bandwidth with ``concurrent_clients`` active writers."""
        if concurrent_clients < 1:
            raise ConfigurationError("concurrent_clients must be >= 1")
        return min(self.client_bandwidth, self.aggregate_bandwidth / concurrent_clients)

    def write_time(self, nbytes: int, concurrent_clients: int = 1) -> float:
        """Simulated duration of one client writing ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        if not self.enabled:
            return 0.0
        return self.metadata_latency + nbytes / self.effective_bandwidth(concurrent_clients)

    def read_time(self, nbytes: int, concurrent_clients: int = 1) -> float:
        """Simulated duration of one client reading ``nbytes`` (same cost
        shape as writes for this model)."""
        return self.write_time(nbytes, concurrent_clients)

    def delete_time(self) -> float:
        """Simulated duration of removing one file (metadata only)."""
        return self.metadata_latency if self.enabled else 0.0
