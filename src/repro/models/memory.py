"""Per-virtual-process dynamic memory tracking.

The paper's conclusion: "we recently added the tracking of dynamic memory
allocation of simulated MPI processes, which was the last piece needed to
develop a soft error injector."  This module is that piece: simulated
applications (and the MPI layer) register their allocations per rank, and
the soft-error injector (:mod:`repro.core.faults.softerror`) picks uniformly
random bits across a rank's live footprint to flip.

Regions can optionally be backed by a real :class:`numpy.ndarray`; a flip
then actually corrupts the array contents, so applications running in
real-data mode experience genuine silent data corruption (the redMPI-style
propagation experiments).  Unbacked regions only record the flip and its
classification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError


class RegionKind(enum.Enum):
    """How a bit flip in a region manifests."""

    DATA = "data"
    """Application payload: a flip is silent data corruption."""
    CRITICAL = "critical"
    """Pointers, code, runtime state: a flip crashes the process."""
    UNUSED = "unused"
    """Allocated but dead memory: a flip is benign."""


@dataclass
class MemoryRegion:
    """One tracked allocation of a simulated process."""

    name: str
    nbytes: int
    kind: RegionKind = RegionKind.DATA
    array: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.array is not None:
            if not self.array.flags.c_contiguous:
                raise ConfigurationError(
                    f"region {self.name!r}: backing arrays must be C-contiguous"
                )
            self.nbytes = int(self.array.nbytes)
        if self.nbytes <= 0:
            raise ConfigurationError(f"region {self.name!r} must have nbytes > 0")


@dataclass(frozen=True)
class FlipRecord:
    """Where a soft error landed and what it did."""

    rank: int
    region: str
    kind: RegionKind
    byte_offset: int
    bit: int
    applied: bool
    """True when a backing array was really modified."""


class MemoryTracker:
    """Tracks live allocations per rank and applies random bit flips."""

    def __init__(self) -> None:
        self._regions: dict[int, dict[str, MemoryRegion]] = {}

    def allocate(
        self,
        rank: int,
        name: str,
        nbytes: int = 0,
        kind: RegionKind = RegionKind.DATA,
        array: np.ndarray | None = None,
    ) -> MemoryRegion:
        """Register an allocation; re-allocating a name replaces it."""
        region = MemoryRegion(name=name, nbytes=nbytes, kind=kind, array=array)
        self._regions.setdefault(rank, {})[name] = region
        return region

    def free(self, rank: int, name: str) -> None:
        """Release one named allocation."""
        regions = self._regions.get(rank, {})
        if name not in regions:
            raise ConfigurationError(f"rank {rank} has no region {name!r}")
        del regions[name]

    def free_all(self, rank: int) -> None:
        """Drop every allocation of ``rank`` (e.g. the process died)."""
        self._regions.pop(rank, None)

    def regions(self, rank: int) -> list[MemoryRegion]:
        """Live allocations of ``rank``."""
        return list(self._regions.get(rank, {}).values())

    def footprint(self, rank: int) -> int:
        """Total live bytes of ``rank``."""
        return sum(r.nbytes for r in self._regions.get(rank, {}).values())

    def flip_random_bit(self, rank: int, rng: np.random.Generator) -> FlipRecord:
        """Flip one uniformly random bit across ``rank``'s live footprint.

        Uniform over *bytes* (so big regions are proportionally likelier
        targets), then uniform over the 8 bits of the chosen byte.  When
        the region is array-backed the flip is really applied.
        """
        regions = self.regions(rank)
        total = sum(r.nbytes for r in regions)
        if total == 0:
            raise ConfigurationError(f"rank {rank} has no tracked memory to corrupt")
        target = int(rng.integers(0, total))
        for region in regions:
            if target < region.nbytes:
                break
            target -= region.nbytes
        bit = int(rng.integers(0, 8))
        applied = False
        if region.array is not None:
            flat = region.array.view(np.uint8).reshape(-1)
            flat[target] ^= np.uint8(1 << bit)
            applied = True
        return FlipRecord(
            rank=rank,
            region=region.name,
            kind=region.kind,
            byte_offset=target,
            bit=bit,
            applied=applied,
        )
