"""Network models: topologies, routing hops, and the communication cost model.

The paper's simulated machine is "32,768 nodes organized in a 32x32x32 3-D
wrapped torus with 1 us link latency and 32 GB/s link bandwidth", a 256 kB
eager threshold (larger payloads use the simulated rendezvous protocol),
and linear-algorithm MPI collectives.  Failure detection "is purely based
on simulated network communication timeouts ... configurable as part of
xSim's network model.  Each simulated network, such as the on-chip,
on-node, and system-wide network, has its own network communication
timeout."

:mod:`~repro.models.network.topology` defines the topology interface and
the concrete torus/mesh/fat-tree/star/crossbar topologies;
:mod:`~repro.models.network.model` defines :class:`NetworkModel`, the
latency/bandwidth/protocol/timeout cost model consumed by the simulated
MPI layer.
"""

from repro.models.network.model import NetworkModel, NetworkTier
from repro.models.network.topology import (
    CrossbarTopology,
    FatTreeTopology,
    MeshTopology,
    StarTopology,
    Topology,
    TorusTopology,
)

__all__ = [
    "CrossbarTopology",
    "FatTreeTopology",
    "MeshTopology",
    "NetworkModel",
    "NetworkTier",
    "StarTopology",
    "Topology",
    "TorusTopology",
]
