"""Communication cost model of the simulated machine.

Combines a :class:`~repro.models.network.topology.Topology` with per-tier
link parameters into the quantities the simulated MPI layer needs:

* message transfer time (per-hop latency + payload/bandwidth, optionally
  scaled by a congestion factor),
* the eager/rendezvous protocol decision (the paper sets "the simulated
  eager communication threshold ... to 256 kB, i.e., MPI payloads above
  256 kB utilize the simulated rendezvous protocol"),
* per-message software overheads paid on the (slowed-down) simulated node's
  CPU for sending and receiving — these serialize message processing at a
  rank, which is what makes linear-algorithm collectives expensive at
  32,768 ranks, and
* the per-tier failure-detection timeout ("each simulated network, such as
  the on-chip, on-node, and system-wide network, has its own network
  communication timeout simulated based on assumptions of the architectural
  features of the simulated HPC system").

Ranks are mapped onto compute nodes block-wise (``node = rank //
ranks_per_node``); the paper places one rank per node because an MPI+X
programming model is assumed.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass
from functools import lru_cache, partial

from repro.models.network.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.units import parse_rate, parse_size, parse_time


class NetworkTier(enum.Enum):
    """Which simulated network a message crosses."""

    ON_CHIP = "on-chip"
    ON_NODE = "on-node"
    SYSTEM = "system"


@dataclass(frozen=True)
class TierParams:
    """Link parameters of one network tier.

    ``latency`` is per hop for the system tier and end-to-end for the
    intra-node tiers (which have no routed hops).
    """

    latency: float
    bandwidth: float
    detection_timeout: float

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0 or self.detection_timeout < 0:
            raise ConfigurationError(f"invalid tier parameters {self!r}")


class NetworkModel:
    """Cost model answering the simulated MPI layer's timing questions.

    Parameters accept the human-readable unit strings from
    :mod:`repro.util.units` (``"1us"``, ``"32GB/s"``, ``"256kB"``).

    Parameters
    ----------
    topology:
        Compute-node interconnect (hop counts for the system tier).
    latency, bandwidth:
        System-tier per-hop link latency and link bandwidth.
    eager_threshold:
        Payloads strictly above this use the rendezvous protocol.
    send_overhead, recv_overhead:
        Per-message software overhead in *simulated* seconds, i.e. already
        scaled by the node slowdown.  These advance the sender's/receiver's
        virtual clock per message and therefore serialize message
        processing at a rank.
    detection_timeout:
        System-tier failure-detection timeout: a rank blocked on
        communication with a failed peer detects the failure this long
        after the (later of) the failure and the start of its wait.
    ranks_per_node, chips_per_node:
        Rank placement; intra-node traffic uses the on-node (or on-chip)
        tier instead of the routed system network.
    on_node, on_chip:
        Tier parameter overrides; defaults are derived from the system tier
        (10x lower latency / 4x higher bandwidth on-node, 100x / 16x
        on-chip) and only matter when ``ranks_per_node > 1``.
    congestion_factor:
        Multiplier (>= 1) applied to payload transfer times, a coarse knob
        for modeling background congestion in ablation studies.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        latency: float | str = "1us",
        bandwidth: float | str = "32GB/s",
        eager_threshold: int | str = "256kB",
        send_overhead: float | str = 0.0,
        recv_overhead: float | str = 0.0,
        detection_timeout: float | str = "10s",
        ranks_per_node: int = 1,
        chips_per_node: int = 1,
        on_node: TierParams | None = None,
        on_chip: TierParams | None = None,
        congestion_factor: float = 1.0,
    ):
        if ranks_per_node < 1 or chips_per_node < 1:
            raise ConfigurationError("ranks_per_node and chips_per_node must be >= 1")
        if ranks_per_node % chips_per_node != 0:
            raise ConfigurationError(
                f"ranks_per_node ({ranks_per_node}) must be divisible by "
                f"chips_per_node ({chips_per_node})"
            )
        if congestion_factor < 1.0:
            raise ConfigurationError(f"congestion_factor must be >= 1, got {congestion_factor}")
        self.topology = topology
        lat = parse_time(latency)
        bw = parse_rate(bandwidth)
        timeout = parse_time(detection_timeout)
        self.system = TierParams(latency=lat, bandwidth=bw, detection_timeout=timeout)
        self.on_node = on_node or TierParams(
            latency=lat / 10.0, bandwidth=bw * 4.0, detection_timeout=timeout / 10.0
        )
        self.on_chip = on_chip or TierParams(
            latency=lat / 100.0, bandwidth=bw * 16.0, detection_timeout=timeout / 100.0
        )
        self.eager_threshold = parse_size(eager_threshold)
        self.send_overhead = parse_time(send_overhead)
        self.recv_overhead = parse_time(recv_overhead)
        self.ranks_per_node = ranks_per_node
        self.chips_per_node = chips_per_node
        self.ranks_per_chip = ranks_per_node // chips_per_node
        self.congestion_factor = congestion_factor
        self._install_caches()

    #: Cost methods shadowed by per-instance LRU caches, with cache sizes.
    _CACHED_METHODS = (
        ("tier", 1 << 17),
        ("hops", 1 << 17),
        ("wire_latency", 1 << 17),
        ("transfer_time", 1 << 16),
        ("serialization_time", 1 << 16),
        ("detection_timeout", 1 << 16),
    )

    def _install_caches(self) -> None:
        """Shadow the pure cost methods with per-instance LRU caches.

        The cost inputs (topology, tier parameters, placement, congestion)
        are fixed after construction, so every cost method is a pure
        function of its rank/size arguments; the torus hop computation and
        the tier dispatch dominate the simulated MPI layer's per-message
        cost otherwise.  Mutating cost parameters afterwards (tests only)
        requires calling :meth:`invalidate_caches`.

        Each cache binds the *class* function to a cycle-free snapshot of
        the model's state, never to ``self``: a ``lru_cache`` around the
        bound method ``self.method`` stored back onto ``self`` would
        strongly reference the instance from its own attribute, forming a
        cycle that keeps the model — and up to 2^17 cached cost tuples —
        alive until a *cyclic* gc pass.  The engine disables gc during
        runs and campaigns build one model per task, so those cycles
        previously accumulated into an unbounded memory ramp.  The
        snapshot (a shallow copy sharing the immutable parameter objects)
        holds no reference back to the instance, so a dropped model frees
        by reference count alone.
        """
        state = copy.copy(self)
        for name, _size in self._CACHED_METHODS:
            # Drop wrappers a previous install left on the copied __dict__.
            state.__dict__.pop(name, None)
        cls = type(self)
        for name, size in self._CACHED_METHODS:
            func = getattr(cls, name)
            setattr(self, name, lru_cache(maxsize=size)(partial(func, state)))

    def invalidate_caches(self) -> None:
        """Drop all memoized cost results (after mutating cost parameters).

        Rebuilds the caches against a fresh state snapshot, so parameter
        mutations made on the instance take effect."""
        self._install_caches()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Compute node hosting ``rank`` (block placement)."""
        return rank // self.ranks_per_node

    def max_ranks(self) -> int:
        """Largest rank count this model's machine can host."""
        return self.topology.nnodes * self.ranks_per_node

    def tier(self, src: int, dst: int) -> NetworkTier:
        """Which network a ``src -> dst`` message crosses."""
        if self.node_of(src) != self.node_of(dst):
            return NetworkTier.SYSTEM
        if src // self.ranks_per_chip == dst // self.ranks_per_chip:
            return NetworkTier.ON_CHIP
        return NetworkTier.ON_NODE

    def _params(self, tier: NetworkTier) -> TierParams:
        if tier is NetworkTier.SYSTEM:
            return self.system
        if tier is NetworkTier.ON_NODE:
            return self.on_node
        return self.on_chip

    # ------------------------------------------------------------------
    # protocol and timing
    # ------------------------------------------------------------------
    def is_eager(self, nbytes: int) -> bool:
        """True when ``nbytes`` is sent with the eager protocol."""
        return nbytes <= self.eager_threshold

    def hops(self, src: int, dst: int) -> int:
        """Routed system-network hops between the ranks' nodes (0 intra-node)."""
        a, b = self.node_of(src), self.node_of(dst)
        if a == b:
            return 0
        return self.topology.hops(a, b)

    def wire_latency(self, src: int, dst: int) -> float:
        """End-to-end latency of a minimal (zero-payload) packet."""
        tier = self.tier(src, dst)
        p = self._params(tier)
        if tier is NetworkTier.SYSTEM:
            return p.latency * max(1, self.hops(src, dst))
        return p.latency

    def transfer_time(self, nbytes: int, src: int, dst: int) -> float:
        """Wire time of a ``nbytes`` payload from ``src`` to ``dst``
        (latency plus serialization, excluding CPU software overheads)."""
        if nbytes < 0:
            raise ConfigurationError(f"message size must be >= 0, got {nbytes}")
        p = self._params(self.tier(src, dst))
        return self.wire_latency(src, dst) + self.congestion_factor * nbytes / p.bandwidth

    def serialization_time(self, nbytes: int, src: int, dst: int) -> float:
        """Time the payload occupies the sender's injection link (transfer
        time minus the wire latency) — what a rendezvous sender pays after
        the clear-to-send arrives."""
        if nbytes < 0:
            raise ConfigurationError(f"message size must be >= 0, got {nbytes}")
        p = self._params(self.tier(src, dst))
        return self.congestion_factor * nbytes / p.bandwidth

    def detection_timeout(self, src: int, dst: int) -> float:
        """Failure-detection timeout of the tier a ``src <-> dst``
        communication uses."""
        return self._params(self.tier(src, dst)).detection_timeout
