"""Interconnect topologies and hop-count routing.

A topology maps compute-node ids to positions and answers two questions the
communication cost model needs: how many link hops a minimal route between
two nodes takes, and who a node's direct neighbours are (the heat3d
application uses torus neighbourships for its halo exchange when mapping
ranks onto the machine).

All topologies use deterministic minimal routing; the cost model multiplies
``hops`` by the per-link latency.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.util.errors import ConfigurationError


class Topology:
    """Interface for interconnect topologies."""

    #: Number of compute nodes.
    nnodes: int

    def hops(self, a: int, b: int) -> int:
        """Link hops on a minimal route from node ``a`` to node ``b``.

        ``hops(a, a)`` is 0 (loopback traffic never enters the network).
        """
        raise NotImplementedError

    def neighbors(self, node: int) -> list[int]:
        """Directly connected compute nodes (one hop away)."""
        raise NotImplementedError

    def diameter(self) -> int:
        """Maximum hop count between any two nodes."""
        raise NotImplementedError

    def _check(self, node: int) -> None:
        if not 0 <= node < self.nnodes:
            raise ConfigurationError(f"node {node} outside topology of {self.nnodes} nodes")


class _GridTopology(Topology):
    """Shared machinery for k-ary n-dimensional grids (torus and mesh)."""

    def __init__(self, dims: Sequence[int], wrap: bool):
        dims = tuple(int(d) for d in dims)
        if not dims or any(d < 1 for d in dims):
            raise ConfigurationError(f"grid dims must be positive, got {dims!r}")
        self.dims = dims
        self.wrap = wrap
        self.nnodes = math.prod(dims)
        # Row-major strides: node id = sum(coord[i] * stride[i]).
        strides = []
        acc = 1
        for d in reversed(dims):
            strides.append(acc)
            acc *= d
        self._strides = tuple(reversed(strides))

    def coords(self, node: int) -> tuple[int, ...]:
        """Grid coordinates of ``node`` (row-major layout)."""
        self._check(node)
        out = []
        for stride, dim in zip(self._strides, self.dims):
            out.append((node // stride) % dim)
        return tuple(out)

    def node_at(self, coords: Iterable[int]) -> int:
        """Node id at ``coords`` (wrapped per-dimension when torus)."""
        cs = tuple(coords)
        if len(cs) != len(self.dims):
            raise ConfigurationError(f"expected {len(self.dims)} coords, got {cs!r}")
        node = 0
        for c, stride, dim in zip(cs, self._strides, self.dims):
            if self.wrap:
                c %= dim
            elif not 0 <= c < dim:
                raise ConfigurationError(f"coordinate {c} outside mesh dimension {dim}")
            node += c * stride
        return node

    def _axis_distance(self, a: int, b: int, dim: int) -> int:
        d = abs(a - b)
        if self.wrap:
            d = min(d, dim - d)
        return d

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        total = 0
        for stride, dim in zip(self._strides, self.dims):
            ca = (a // stride) % dim
            cb = (b // stride) % dim
            total += self._axis_distance(ca, cb, dim)
        return total

    def neighbors(self, node: int) -> list[int]:
        cs = self.coords(node)
        out = []
        for axis, dim in enumerate(self.dims):
            if dim == 1:
                continue
            for step in (-1, +1):
                c = cs[axis] + step
                if self.wrap:
                    c %= dim
                elif not 0 <= c < dim:
                    continue
                nb = self.node_at(cs[:axis] + (c,) + cs[axis + 1 :])
                if nb != node and nb not in out:
                    out.append(nb)
        return out

    def diameter(self) -> int:
        if self.wrap:
            return sum(d // 2 for d in self.dims)
        return sum(d - 1 for d in self.dims)


class TorusTopology(_GridTopology):
    """k-ary n-dimensional wrapped torus.

    The paper's machine is ``TorusTopology((32, 32, 32))`` — a 32x32x32 3-D
    wrapped torus of 32,768 nodes.  Minimal dimension-order routing gives
    ``hops`` as the sum of per-axis wrapped distances.
    """

    def __init__(self, dims: Sequence[int] = (32, 32, 32)):
        super().__init__(dims, wrap=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TorusTopology({'x'.join(map(str, self.dims))})"


class MeshTopology(_GridTopology):
    """k-ary n-dimensional mesh (a torus without the wrap-around links)."""

    def __init__(self, dims: Sequence[int]):
        super().__init__(dims, wrap=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MeshTopology({'x'.join(map(str, self.dims))})"


class FatTreeTopology(Topology):
    """k-ary fat tree of switches with compute nodes at the leaves.

    Nodes are numbered left-to-right under a complete ``arity``-ary switch
    tree of ``levels`` levels (``arity**levels`` nodes).  A message climbs
    to the lowest common ancestor switch and back down, so the hop count is
    ``2 * (levels - common_prefix_length)``.
    """

    def __init__(self, arity: int = 16, levels: int = 3):
        if arity < 2 or levels < 1:
            raise ConfigurationError(f"fat tree needs arity >= 2, levels >= 1, got {arity}, {levels}")
        self.arity = arity
        self.levels = levels
        self.nnodes = arity**levels

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        up = 0
        while a != b:
            a //= self.arity
            b //= self.arity
            up += 1
        return 2 * up

    def neighbors(self, node: int) -> list[int]:
        """Leaves under the same first-level switch (2 hops is the minimum
        distance in a fat tree; those peers share the cheapest routes)."""
        self._check(node)
        base = (node // self.arity) * self.arity
        return [n for n in range(base, base + self.arity) if n != node]

    def diameter(self) -> int:
        return 2 * self.levels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FatTreeTopology(arity={self.arity}, levels={self.levels})"


class StarTopology(Topology):
    """All nodes hang off one central switch: every route is 2 hops."""

    def __init__(self, nnodes: int):
        if nnodes < 1:
            raise ConfigurationError(f"star needs >= 1 node, got {nnodes}")
        self.nnodes = nnodes

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return 0 if a == b else 2

    def neighbors(self, node: int) -> list[int]:
        self._check(node)
        return [n for n in range(self.nnodes) if n != node]

    def diameter(self) -> int:
        return 0 if self.nnodes == 1 else 2


class CrossbarTopology(Topology):
    """Ideal full crossbar: every distinct pair is directly linked (1 hop)."""

    def __init__(self, nnodes: int):
        if nnodes < 1:
            raise ConfigurationError(f"crossbar needs >= 1 node, got {nnodes}")
        self.nnodes = nnodes

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return 0 if a == b else 1

    def neighbors(self, node: int) -> list[int]:
        self._check(node)
        return [n for n in range(self.nnodes) if n != node]

    def diameter(self) -> int:
        return 0 if self.nnodes == 1 else 1
