"""Node power and energy model (paper future work 5).

The paper's outlook targets "the first holistic HPC co-design toolkit that
considers architectural performance and resilience parameters to optimize
parallel application performance within a given power consumption budget"
and lists "developing power consumption models" as ongoing work.  This is
the standard two-state model used in such studies: a node draws
``idle_watts`` always and ``busy_watts`` while computing; communication
waits count as idle.  The experiment harness integrates per-phase busy/idle
durations into machine energy, including the energy *wasted* on work lost
to failures and on checkpoint overhead — the quantity the co-design
trade-off needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class PowerModel:
    """Two-state (idle/busy) per-node power model."""

    idle_watts: float = 60.0
    busy_watts: float = 180.0

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.busy_watts < self.idle_watts:
            raise ConfigurationError(
                f"need 0 <= idle_watts <= busy_watts, got {self.idle_watts}, {self.busy_watts}"
            )

    def node_energy(self, busy_seconds: float, idle_seconds: float) -> float:
        """Joules one node consumes for the given busy/idle durations."""
        if busy_seconds < 0 or idle_seconds < 0:
            raise ConfigurationError("durations must be >= 0")
        return busy_seconds * self.busy_watts + idle_seconds * self.idle_watts

    def machine_energy(
        self, nnodes: int, wall_seconds: float, busy_seconds_per_node: float
    ) -> float:
        """Joules ``nnodes`` consume over ``wall_seconds`` of which each node
        is busy ``busy_seconds_per_node`` (and otherwise idle)."""
        if busy_seconds_per_node > wall_seconds:
            raise ConfigurationError("busy time cannot exceed wall time")
        idle = wall_seconds - busy_seconds_per_node
        return nnodes * self.node_energy(busy_seconds_per_node, idle)

    def average_power(self, nnodes: int, wall_seconds: float, busy_seconds_per_node: float) -> float:
        """Machine-average watts over the run."""
        if wall_seconds <= 0:
            raise ConfigurationError("wall_seconds must be > 0")
        return self.machine_energy(nnodes, wall_seconds, busy_seconds_per_node) / wall_seconds
