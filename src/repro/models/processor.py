"""Processor model: how long modeled computation takes on a simulated node.

The paper's simulated system runs each MPI rank on one simulated compute
node "operating at a speed 1000x slower than a single 1.7 GHz AMD Opteron
6164 HE core".  The model therefore needs only two knobs: the reference
core and a slowdown factor.  Work is expressed either as *native seconds*
(time the work would take on the unscaled reference core) or as an
operation count with a per-operation native cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ProcessorModel:
    """Speed model of one simulated compute node.

    Parameters
    ----------
    reference_hz:
        Clock rate of the reference core (default: the paper's 1.7 GHz
        AMD Opteron 6164 HE).
    slowdown:
        Factor by which the simulated node is slower than the reference
        core (the paper uses 1000 "for demonstration purposes", which
        lessens the native computational load and permits simulations with
        more realistic failure frequencies).
    """

    reference_hz: float = 1.7e9
    slowdown: float = 1000.0

    def __post_init__(self) -> None:
        if self.reference_hz <= 0:
            raise ConfigurationError(f"reference_hz must be > 0, got {self.reference_hz}")
        if self.slowdown <= 0:
            raise ConfigurationError(f"slowdown must be > 0, got {self.slowdown}")

    @property
    def effective_hz(self) -> float:
        """Cycle rate of the simulated node."""
        return self.reference_hz / self.slowdown

    def time_for_native_seconds(self, native_seconds: float) -> float:
        """Simulated duration of work that takes ``native_seconds`` on the
        reference core."""
        if native_seconds < 0:
            raise ConfigurationError(f"work must be >= 0, got {native_seconds}")
        return native_seconds * self.slowdown

    def time_for_cycles(self, cycles: float) -> float:
        """Simulated duration of ``cycles`` reference-core cycles."""
        if cycles < 0:
            raise ConfigurationError(f"cycles must be >= 0, got {cycles}")
        return cycles / self.effective_hz

    def time_for_ops(self, ops: float, native_seconds_per_op: float) -> float:
        """Simulated duration of ``ops`` operations, each costing
        ``native_seconds_per_op`` on the reference core.

        The heat3d application uses this with its calibrated per-point
        stencil-update cost (see :mod:`repro.apps.heat3d`).
        """
        return self.time_for_native_seconds(ops * native_seconds_per_op)
