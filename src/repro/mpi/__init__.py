"""Simulated MPI layer.

xSim is "designed like a traditional performance tool, as an interposition
library that sits between the MPI application and the MPI layer".  In this
reproduction the application is a Python coroutine and the interposition
library is this package: a full simulated MPI with point-to-point matching
semantics (tags, ``MPI_ANY_SOURCE``/``MPI_ANY_TAG``, non-overtaking order),
eager and rendezvous protocols, nonblocking requests, linear-algorithm
collectives (the paper's configuration) plus tree variants, communicator
management, MPI error handlers, ``MPI_Abort``, and the ULFM user-level
failure mitigation extension the paper lists as recently added.

Applications receive a per-rank :class:`~repro.mpi.api.MpiApi` facade and
issue calls with ``yield from`` (every call is a simulator control point):

    def app(mpi):
        yield from mpi.init()
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=8, tag=1)
        elif mpi.rank == 1:
            msg = yield from mpi.recv(0, tag=1)
        yield from mpi.barrier()
        yield from mpi.finalize()

Failure semantics follow paper §IV-C: failure detection is based on
simulated network communication timeouts; blocked requests involving a
failed peer are released and failed; later requests fail from the per-rank
failed-process list; the default ``MPI_ERRORS_ARE_FATAL`` handler turns any
such error into a simulated ``MPI_Abort``.
"""

from repro.mpi.api import MpiApi
from repro.mpi.communicator import Communicator
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    ERR_ABORT,
    ERR_PROC_FAILED,
    ERR_REVOKED,
    PROC_NULL,
    SUCCESS,
)
from repro.mpi.datatypes import BYTE, DOUBLE, FLOAT, INT, Datatype
from repro.mpi.errhandler import ERRORS_ARE_FATAL, ERRORS_RETURN, MpiError
from repro.mpi.group import Group
from repro.mpi.world import MpiWorld

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BYTE",
    "Communicator",
    "DOUBLE",
    "Datatype",
    "ERRORS_ARE_FATAL",
    "ERRORS_RETURN",
    "ERR_ABORT",
    "ERR_PROC_FAILED",
    "ERR_REVOKED",
    "FLOAT",
    "Group",
    "INT",
    "MpiApi",
    "MpiError",
    "MpiWorld",
    "PROC_NULL",
    "SUCCESS",
]
