"""Per-rank MPI facade handed to simulated applications.

An application is a generator function ``def app(mpi, *args)`` whose first
argument is an :class:`MpiApi`.  Every MPI call is itself a generator and
must be driven with ``yield from`` — each call is a point where the
simulator regains control (and may activate an injected failure, exactly
like xSim's interposition layer).

The facade exposes:

* lifecycle — :meth:`init`, :meth:`finalize`, :meth:`abort`;
* modeled computation and timing — :meth:`compute`,
  :meth:`compute_native`, :meth:`compute_ops`, :meth:`wtime`;
* point-to-point — :meth:`send`/:meth:`recv`/:meth:`sendrecv` and the
  nonblocking :meth:`isend`/:meth:`irecv`/:meth:`wait`/:meth:`waitall`/
  :meth:`test`;
* collectives — :meth:`barrier`, :meth:`bcast`, :meth:`reduce`,
  :meth:`allreduce`, :meth:`gather`, :meth:`scatter`, :meth:`allgather`,
  :meth:`alltoall`, :meth:`scan`;
* communicator management — :meth:`comm_dup`, :meth:`comm_split`,
  :meth:`comm_free`, :meth:`set_errhandler`;
* resilience — the ULFM calls (:meth:`comm_revoke`, :meth:`comm_shrink`,
  :meth:`comm_agree`, :meth:`comm_failure_ack`,
  :meth:`comm_failure_get_acked`), :meth:`failed_ranks`, and
  condition-based self-injection via :meth:`fail_here`;
* simulated file I/O (:meth:`file_write` et al.) and tracked dynamic
  memory (:meth:`malloc`/:meth:`free`) feeding the soft-error injector.

Ranks in all calls are *communicator* ranks of the ``comm`` argument
(default ``MPI_COMM_WORLD``); the facade translates to world ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Iterable, Sequence

from repro.models.memory import MemoryRegion, RegionKind
from repro.mpi import collectives as coll
from repro.mpi import ops
from repro.mpi.communicator import Communicator
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, SUCCESS, TAG_UB
from repro.mpi.datatypes import payload_nbytes
from repro.mpi.errhandler import Errhandler, MpiError
from repro.mpi.group import Group
from repro.mpi.messages import Msg, Request
from repro.pdes.requests import Advance, Block
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.mpi.world import MpiWorld
    from repro.pdes.context import VirtualProcess

Gen = Generator[Any, Any, Any]


@dataclass(frozen=True)
class Status:
    """Receive status (``MPI_Status``): source/tag/size of the message."""

    source: int
    tag: int
    nbytes: int


class MpiApi:
    """The simulated MPI interface of one rank."""

    def __init__(self, world: "MpiWorld", rank: int):
        self.world = world
        self.rank = rank
        #: Set by :meth:`MpiWorld.launch` once the VP exists.
        self.vp: "VirtualProcess" = None  # type: ignore[assignment]
        #: Lazily cached RankState (stable after launch).
        self._rs = None
        self._wc = None  # validated world communicator (see _comm)

    # ------------------------------------------------------------------
    # identity and timing
    # ------------------------------------------------------------------
    @property
    def comm_world(self) -> Communicator:
        return self.world.world_comm  # type: ignore[return-value]

    @property
    def size(self) -> int:
        return self.comm_world.size

    def wtime(self) -> float:
        """Current virtual time of this rank (``MPI_Wtime``)."""
        return self.vp.clock

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def initialized(self) -> bool:
        return self._state().initialized

    @property
    def finalized(self) -> bool:
        return self._state().finalized

    def init(self) -> Gen:
        """``MPI_Init``."""
        state = self._state()
        if state.initialized:
            raise ConfigurationError(f"rank {self.rank}: MPI already initialized")
        state.initialized = True
        yield Advance(0.0)  # simulator control point

    def finalize(self) -> Gen:
        """``MPI_Finalize`` (synchronizes like a barrier, then marks the
        rank finalized — a VP exiting without this counts as a failure)."""
        self._check_active()
        yield from coll.barrier(self, self.comm_world)
        self._state().finalized = True

    def abort(self, code: int = 1) -> Gen:
        """``MPI_Abort``: terminate the whole simulated job (paper §IV-D)."""
        self.world.engine.request_abort(self.vp.clock, self.rank)
        yield Block("aborting")

    def fail_here(self, reason: str = "application-triggered failure") -> Gen:
        """Condition-based failure self-injection: the application asks the
        simulator to fail this rank *now* (paper §IV-B)."""
        self.world.engine.schedule_failure(self.rank, self.vp.clock)
        yield Advance(0.0)  # control point at which the failure activates

    # ------------------------------------------------------------------
    # modeled computation, I/O, memory
    # ------------------------------------------------------------------
    def _stretch(self, seconds: float) -> float:
        """Wall-clock cost of ``seconds`` of work starting now: any
        straggler windows this advance overlaps stretch the overlapping
        portions (see :meth:`FaultOverlay.stretch_compute`).  ``seconds``
        unchanged when the overlay is empty."""
        faults = self.world.faults
        if not faults.active_compute:
            return seconds
        return faults.stretch_compute(self.rank, self.vp.clock, seconds)

    def compute(self, seconds: float) -> Gen:
        """Advance this rank's clock by ``seconds`` of simulated work."""
        if seconds < 0:
            raise ConfigurationError(f"compute() needs seconds >= 0, got {seconds}")
        yield Advance(self._stretch(seconds))

    def compute_native(self, native_seconds: float) -> Gen:
        """Work that would take ``native_seconds`` on the reference core,
        scaled by the simulated node's slowdown."""
        yield Advance(
            self._stretch(self.world.processor.time_for_native_seconds(native_seconds))
        )

    def compute_ops(self, nops: float, native_seconds_per_op: float) -> Gen:
        """``nops`` operations at a calibrated native per-op cost."""
        yield Advance(
            self._stretch(self.world.processor.time_for_ops(nops, native_seconds_per_op))
        )

    def file_write(self, nbytes: int, concurrent_clients: int = 1) -> Gen:
        """Write ``nbytes`` to the simulated parallel file system."""
        yield Advance(self.world.filesystem.write_time(nbytes, concurrent_clients), busy=False)

    def file_read(self, nbytes: int, concurrent_clients: int = 1) -> Gen:
        """Read ``nbytes`` from the simulated parallel file system."""
        yield Advance(self.world.filesystem.read_time(nbytes, concurrent_clients), busy=False)

    def file_delete(self) -> Gen:
        """Remove one simulated file (metadata cost only)."""
        yield Advance(self.world.filesystem.delete_time(), busy=False)

    def malloc(
        self,
        name: str,
        nbytes: int = 0,
        kind: RegionKind = RegionKind.DATA,
        array: Any = None,
    ) -> MemoryRegion:
        """Register a tracked dynamic allocation (soft-error target)."""
        return self.world.memory.allocate(self.rank, name, nbytes, kind, array)

    def free(self, name: str) -> None:
        """Release a tracked allocation."""
        self.world.memory.free(self.rank, name)

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def isend(
        self,
        dest: int,
        payload: Any = None,
        nbytes: int | None = None,
        tag: int = 0,
        comm: Communicator | None = None,
    ) -> Generator[Any, Any, Request]:
        """Nonblocking send to communicator rank ``dest``."""
        self._check_active()
        comm = self._comm(comm)
        self._check_tag(tag)
        size = payload_nbytes(payload, nbytes)
        if dest == PROC_NULL:
            return self._null_request(Request.SEND, comm, tag)
        dst = comm.world_rank(dest)
        world = self.world
        if world.network.send_overhead > 0.0:
            yield world.send_overhead_advance
        return world.post_send(self.vp, comm, comm.context_id * 2, dst, tag, payload, size)

    def post_isend(
        self,
        dest: int,
        payload: Any = None,
        nbytes: int | None = None,
        tag: int = 0,
        comm: Communicator | None = None,
    ) -> Request:
        """Plain-call variant of :meth:`isend` for callers that pay the
        per-message send overhead themselves (by yielding
        ``world.send_overhead_advance`` first when it is nonzero).

        Skipping the generator frame matters in per-message hot loops like
        the halo exchange; semantics are otherwise identical to
        :meth:`isend`.  ``PROC_NULL`` destinations return a completed null
        request and owe no overhead, mirroring :meth:`isend`.
        """
        self._check_active()
        comm = self._comm(comm)
        self._check_tag(tag)
        size = payload_nbytes(payload, nbytes)
        if dest == PROC_NULL:
            return self._null_request(Request.SEND, comm, tag)
        return self.world.post_send(
            self.vp, comm, comm.context_id * 2, comm.world_rank(dest), tag, payload, size
        )

    def irecv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Communicator | None = None,
    ) -> Request:
        """Nonblocking receive from communicator rank ``source`` (local call)."""
        self._check_active()
        comm = self._comm(comm)
        self._check_tag(tag, allow_any=True)
        if source == PROC_NULL:
            return self._null_request(Request.RECV, comm, tag)
        src = ANY_SOURCE if source == ANY_SOURCE else comm.world_rank(source)
        return self.world.irecv(self.vp, comm, comm.context_id * 2, src, tag)

    def _wait_done_locally(self, request: Request) -> bool:
        """True when ``request`` already completed successfully at-or-before
        this rank's clock with no receive overhead left to pay — i.e.
        waiting on it yields no control point at all (the common case for
        eager sends), so the generator machinery can be skipped."""
        return (
            request.done
            and request.error == SUCCESS
            and request.completion_time <= self.vp.clock
            and (request.kind != Request.RECV or self.world.network.recv_overhead <= 0.0)
        )

    def wait(self, request: Request) -> Gen:
        """Complete one request; returns the received payload for receives."""
        self._check_active()
        if self._wait_done_locally(request):
            if self.world.check is not None:
                self.world.check.on_wait_complete(self.vp, request)
            msg = request.result
            return msg.payload if isinstance(msg, Msg) else None
        # Inline of MpiWorld.wait (saves one generator frame on every
        # blocking completion, the per-message hot path).
        vp = self.vp
        world = self.world
        req = request
        t0 = None
        if not req.done:
            obs = world.obs
            if obs is not None and obs.detail:
                t0 = vp.clock
            req.waiting = True
            yield Block(req)  # stringified lazily, only for reports
            req.waiting = False
        if req.completion_time > vp.clock:
            yield Advance(req.completion_time - vp.clock, busy=False)
        if t0 is not None:
            world.obs.span(t0, vp.clock, "wait", rank=vp.rank)
        if world.check is not None:
            world.check.on_wait_complete(vp, req)
        if req.error != SUCCESS:
            yield from world.handle_error(
                vp, req.comm, MpiError(req.error, req.describe(), req.failed_rank)
            )
        elif req.kind == Request.RECV and world.network.recv_overhead > 0.0:
            yield world.recv_overhead_advance
        msg = req.result
        return msg.payload if isinstance(msg, Msg) else None

    def waitall(self, requests: Iterable[Request]) -> Gen:
        """Complete all requests; returns their payloads in order."""
        self._check_active()
        world = self.world
        vp = self.vp
        out = []
        for req in requests:
            if self._wait_done_locally(req):
                if world.check is not None:
                    world.check.on_wait_complete(vp, req)
                msg = req.result
            else:
                msg = yield from world.wait(vp, req)
            out.append(msg.payload if isinstance(msg, Msg) else None)
        return out

    def test(self, request: Request) -> Generator[Any, Any, tuple[bool, Any]]:
        """``MPI_Test``: (completed?, payload)."""
        done, msg = yield from self.world.test(self.vp, request)
        return done, (msg.payload if isinstance(msg, Msg) else None)

    def send(
        self,
        dest: int,
        payload: Any = None,
        nbytes: int | None = None,
        tag: int = 0,
        comm: Communicator | None = None,
    ) -> Gen:
        """Blocking send."""
        self._check_active()
        req = yield from self.isend(dest, payload, nbytes, tag, comm)
        yield from self.wait(req)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Communicator | None = None,
        status: bool = False,
    ) -> Gen:
        """Blocking receive; returns the payload (or ``(payload, Status)``)."""
        self._check_active()
        comm = self._comm(comm)
        req = self.irecv(source, tag, comm)
        msg = yield from self.world.wait(self.vp, req)
        if not status:
            return msg.payload if isinstance(msg, Msg) else None
        if isinstance(msg, Msg):
            st = Status(source=comm.rank_of(msg.src), tag=msg.tag, nbytes=msg.nbytes)
            return msg.payload, st
        return None, Status(source=PROC_NULL, tag=tag, nbytes=0)

    def sendrecv(
        self,
        dest: int,
        source: int,
        send_payload: Any = None,
        nbytes: int | None = None,
        send_tag: int = 0,
        recv_tag: int | None = None,
        comm: Communicator | None = None,
    ) -> Gen:
        """``MPI_Sendrecv``: concurrent send and receive; returns the
        received payload."""
        self._check_active()
        comm = self._comm(comm)
        rtag = send_tag if recv_tag is None else recv_tag
        rreq = self.irecv(source, rtag, comm)
        sreq = yield from self.isend(dest, send_payload, nbytes, send_tag, comm)
        yield from self.wait(sreq)
        return (yield from self.wait(rreq))

    def iprobe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Communicator | None = None,
    ) -> Status | None:
        """``MPI_Iprobe``: status of a matching buffered message already
        delivered to this rank, or ``None`` (local, nonblocking)."""
        self._check_active()
        comm = self._comm(comm)
        self._check_tag(tag, allow_any=True)
        src = ANY_SOURCE if source == ANY_SOURCE else comm.world_rank(source)
        state = self._state()
        best = None
        for (ctx, msrc, mtag), msgs in state.unexpected.items():
            if ctx != comm.context_id * 2:
                continue
            if (src == ANY_SOURCE or src == msrc) and (tag == ANY_TAG or tag == mtag):
                head = msgs[0]
                if head.arrival <= self.vp.clock and (best is None or head.seq < best.seq):
                    best = head
        if best is None:
            return None
        return Status(source=comm.rank_of(best.src), tag=best.tag, nbytes=best.nbytes)

    def probe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Communicator | None = None,
        poll_interval: float = 1e-6,
    ) -> Gen:
        """``MPI_Probe``: wait (by polling the simulated clock) until a
        matching message is available; returns its :class:`Status`."""
        while True:
            status = self.iprobe(source, tag, comm)
            if status is not None:
                return status
            yield Advance(poll_interval)

    def _null_request(self, kind: str, comm: Communicator, tag: int) -> Request:
        req = Request(kind, self.vp, comm, comm.context_id * 2, PROC_NULL, PROC_NULL, tag, 0, self.vp.clock)
        req.complete(self.vp.clock)
        return req

    # ------------------------------------------------------------------
    # collectives (communicator rank order everywhere)
    # ------------------------------------------------------------------
    def barrier(self, comm: Communicator | None = None) -> Gen:
        """``MPI_Barrier`` on ``comm`` (default ``MPI_COMM_WORLD``)."""
        self._check_active()
        yield from coll.barrier(self, self._comm(comm))

    def bcast(
        self,
        value: Any = None,
        nbytes: int | None = None,
        root: int = 0,
        comm: Communicator | None = None,
    ) -> Gen:
        """``MPI_Bcast``: every member returns the root's ``value``."""
        self._check_active()
        comm = self._comm(comm)
        size = payload_nbytes(value, nbytes) if comm.rank_of(self.rank) == root else (nbytes or 0)
        return (yield from coll.bcast(self, comm, value, size, root))

    def reduce(
        self,
        value: Any = None,
        nbytes: int | None = None,
        op: ops.Op = ops.SUM,
        root: int = 0,
        comm: Communicator | None = None,
    ) -> Gen:
        """``MPI_Reduce``: the folded value at ``root``, ``None`` elsewhere."""
        self._check_active()
        return (yield from coll.reduce(self, self._comm(comm), value, payload_nbytes(value, nbytes), op, root))

    def allreduce(
        self,
        value: Any = None,
        nbytes: int | None = None,
        op: ops.Op = ops.SUM,
        comm: Communicator | None = None,
    ) -> Gen:
        """``MPI_Allreduce``: every member returns the folded value."""
        self._check_active()
        return (yield from coll.allreduce(self, self._comm(comm), value, payload_nbytes(value, nbytes), op))

    def gather(
        self,
        value: Any = None,
        nbytes: int | None = None,
        root: int = 0,
        comm: Communicator | None = None,
    ) -> Gen:
        """``MPI_Gather``: rank-ordered value list at ``root``."""
        self._check_active()
        return (yield from coll.gather(self, self._comm(comm), value, payload_nbytes(value, nbytes), root))

    def allgather(
        self, value: Any = None, nbytes: int | None = None, comm: Communicator | None = None
    ) -> Gen:
        """``MPI_Allgather``: every member gets the rank-ordered list."""
        self._check_active()
        return (yield from coll.allgather(self, self._comm(comm), value, payload_nbytes(value, nbytes)))

    def scatter(
        self,
        values: Sequence[Any] | None = None,
        nbytes: int | None = None,
        root: int = 0,
        comm: Communicator | None = None,
    ) -> Gen:
        """``MPI_Scatter``: ``values[i]`` (supplied at ``root``) to rank i."""
        self._check_active()
        comm = self._comm(comm)
        size = nbytes
        if size is None:
            size = payload_nbytes(values[0], None) if values else 0
        return (yield from coll.scatter(self, comm, list(values) if values is not None else None, size, root))

    def alltoall(
        self,
        values: Sequence[Any],
        nbytes: int | Sequence[int] | None = None,
        comm: Communicator | None = None,
    ) -> Gen:
        """``MPI_Alltoall``; with per-destination payloads of differing
        sizes (``nbytes=None`` infers each, or pass a size list) this is
        ``MPI_Alltoallv``."""
        self._check_active()
        comm = self._comm(comm)
        vals = list(values)
        if nbytes is None:
            sizes: int | list[int] = [payload_nbytes(v, None) for v in vals]
        elif isinstance(nbytes, (list, tuple)):
            sizes = [int(n) for n in nbytes]
        else:
            sizes = int(nbytes)
        return (yield from coll.alltoall(self, comm, vals, sizes))

    def scan(
        self,
        value: Any = None,
        nbytes: int | None = None,
        op: ops.Op = ops.SUM,
        comm: Communicator | None = None,
    ) -> Gen:
        """``MPI_Scan`` (inclusive prefix reduction)."""
        self._check_active()
        return (yield from coll.scan(self, self._comm(comm), value, payload_nbytes(value, nbytes), op))

    # internal collective-context point-to-point helpers
    def _coll_send(self, comm: Communicator, dst: int, tag: int, payload: Any, nbytes: int) -> Gen:
        world = self.world
        if world.network.send_overhead > 0.0:
            yield world.send_overhead_advance
        req = world.post_send(
            self.vp, comm, comm.context_id * 2 + 1, comm.world_rank(dst), tag, payload, nbytes
        )
        yield from world.wait(self.vp, req)

    def _coll_recv(self, comm: Communicator, src: int, tag: int) -> Gen:
        req = self.world.irecv(self.vp, comm, comm.context_id * 2 + 1, comm.world_rank(src), tag)
        return (yield from self.world.wait(self.vp, req))

    def _coll_isend(self, comm: Communicator, dst: int, tag: int, payload: Any, nbytes: int) -> Gen:
        world = self.world
        if world.network.send_overhead > 0.0:
            yield world.send_overhead_advance
        return world.post_send(
            self.vp, comm, comm.context_id * 2 + 1, comm.world_rank(dst), tag, payload, nbytes
        )

    def _coll_irecv(self, comm: Communicator, src: int, tag: int) -> Request:
        return self.world.irecv(self.vp, comm, comm.context_id * 2 + 1, comm.world_rank(src), tag)

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def comm_rank(self, comm: Communicator | None = None) -> int:
        """This process's rank within ``comm``."""
        return self._comm(comm).rank_of(self.rank)

    def comm_size(self, comm: Communicator | None = None) -> int:
        """Member count of ``comm``."""
        return self._comm(comm).size

    def comm_dup(self, comm: Communicator | None = None) -> Gen:
        """Collectively duplicate ``comm`` into a fresh context."""
        self._check_active()
        comm = self._comm(comm)
        me = comm.rank_of(self.rank)
        new = None
        if me == 0:
            new = Communicator(comm.group, self.world.alloc_context(), f"{comm.name}.dup")
        return (yield from coll.bcast(self, comm, new, 16, root=0))

    def comm_split(
        self, color: int | None, key: int | None = None, comm: Communicator | None = None
    ) -> Gen:
        """Collectively split ``comm`` by color, ordering members by key.

        Returns the new communicator, or ``None`` for ``color=None``
        (``MPI_UNDEFINED``) callers.
        """
        self._check_active()
        comm = self._comm(comm)
        me = comm.rank_of(self.rank)
        entry = (color, me if key is None else key, me)
        entries = yield from coll.gather(self, comm, entry, 24, root=0)
        table: dict[int, Communicator] | None = None
        if me == 0:
            table = {}
            by_color: dict[int, list[tuple[int, int]]] = {}
            for c, k, m in entries:  # type: ignore[union-attr]
                if c is not None:
                    by_color.setdefault(c, []).append((k, m))
            for c in sorted(by_color):
                members = [comm.world_rank(m) for _, m in sorted(by_color[c])]
                table[c] = Communicator(
                    Group(members), self.world.alloc_context(), f"{comm.name}.split({c})"
                )
        table = yield from coll.bcast(self, comm, table, 16, root=0)
        return None if color is None else table[color]

    def comm_free(self, comm: Communicator) -> Gen:
        """Mark ``comm`` freed (local bookkeeping + a control point)."""
        comm.freed = True
        yield Advance(0.0)

    def set_errhandler(self, handler: Errhandler, comm: Communicator | None = None) -> None:
        """``MPI_Comm_set_errhandler`` for this rank on ``comm``."""
        self._comm(comm).set_errhandler(self.rank, handler)

    # ------------------------------------------------------------------
    # resilience / ULFM
    # ------------------------------------------------------------------
    def failed_ranks(self, comm: Communicator | None = None) -> list[int]:
        """Communicator ranks this process knows to have failed (i.e.
        whose failure notification has reached this rank — see
        ``MpiWorld._failure_visible``)."""
        comm = self._comm(comm)
        return sorted(
            comm.rank_of(w)
            for w, t in self.vp.failed_peers.items()
            if comm.contains(w) and self.world._failure_visible(self.vp, w, t)
        )

    def comm_failure_ack(self, comm: Communicator | None = None) -> Gen:
        """``MPI_Comm_failure_ack``: acknowledge currently known failures,
        re-enabling ``MPI_ANY_SOURCE`` receives on ``comm``."""
        comm = self._comm(comm)
        known = frozenset(
            w
            for w, t in self.vp.failed_peers.items()
            if comm.contains(w) and self.world._failure_visible(self.vp, w, t)
        )
        comm.ack_failures(self.rank, known)
        yield Advance(0.0)

    def comm_failure_get_acked(self, comm: Communicator | None = None) -> list[int]:
        """``MPI_Comm_failure_get_acked``: acknowledged failed comm ranks."""
        comm = self._comm(comm)
        return sorted(comm.rank_of(w) for w in comm.acked_failures(self.rank))

    def comm_revoke(self, comm: Communicator | None = None) -> Gen:
        """``MPI_Comm_revoke``: interrupt all pending/future operations on
        ``comm`` at every member (they observe ``MPI_ERR_REVOKED``)."""
        comm = self._comm(comm)
        self.world.revoke(comm, self.vp.clock, self.rank)
        yield Advance(0.0)

    def comm_shrink(self, comm: Communicator | None = None) -> Gen:
        """``MPI_Comm_shrink``: collectively build a new communicator from
        the surviving members of ``comm`` (works on revoked communicators
        and tolerates failures during the operation)."""
        self._check_active()
        comm = self._comm(comm)
        seq = comm.next_collective_seq(self.rank)
        result = yield from self.world.sync_arrive(self.vp, comm, "shrink", seq)
        cache_key = ("shrink", comm.context_id, seq)
        newcomm = self.world.comm_cache.get(cache_key)
        if newcomm is None:
            newcomm = Communicator(
                Group(result.alive), self.world.alloc_context(), f"{comm.name}.shrink"
            )
            self.world.comm_cache[cache_key] = newcomm
        return newcomm

    def comm_agree(self, flag: bool, comm: Communicator | None = None) -> Gen:
        """``MPI_Comm_agree``: fault-tolerant agreement on the logical AND
        of ``flag`` over the surviving members; returns the agreed value."""
        self._check_active()
        comm = self._comm(comm)
        seq = comm.next_collective_seq(self.rank)
        result = yield from self.world.sync_arrive(self.vp, comm, "agree", seq, value=bool(flag))
        return all(result.values.values())

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _comm(self, comm: Communicator | None) -> Communicator:
        if comm is None:
            # Fast path: the world communicator always contains this rank,
            # so only the freed check applies (validated once, then cached).
            c = self._wc
            if c is not None:
                if c.freed:
                    raise ConfigurationError(f"operation on freed communicator {c.name}")
                return c
            c = self.world.world_comm
            if c is not None and not c.freed and c.contains(self.rank):
                self._wc = c
                return c
        c = comm if comm is not None else self.world.world_comm
        if c is None:
            raise ConfigurationError("MPI world not launched")
        if c.freed:
            raise ConfigurationError(f"operation on freed communicator {c.name}")
        if not c.contains(self.rank):
            raise ConfigurationError(f"rank {self.rank} is not a member of {c.name}")
        return c

    def _state(self):
        rs = self._rs
        if rs is None:
            rs = self._rs = self.world.states[self.rank]
        return rs

    def _check_active(self) -> None:
        state = self._rs
        if state is None:
            state = self._state()
        if not state.initialized:
            raise ConfigurationError(f"rank {self.rank}: MPI_Init has not been called")
        if state.finalized:
            raise ConfigurationError(f"rank {self.rank}: MPI already finalized")

    def _check_tag(self, tag: int, allow_any: bool = False) -> None:
        if allow_any and tag == ANY_TAG:
            return
        if not 0 <= tag <= TAG_UB:
            raise ConfigurationError(f"tag {tag} outside [0, {TAG_UB}]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MpiApi rank={self.rank}/{self.size}>"
