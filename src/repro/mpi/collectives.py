"""Simulated MPI collective operations.

Three algorithm families, selected by ``MpiWorld.collective_algorithm``:

* ``"linear"`` — the paper's configuration ("MPI collectives utilize
  linear algorithms"): rooted operations are a flat fan-in/fan-out at the
  root, built literally from simulated point-to-point messages.  At 32,768
  ranks the root's per-message software overheads serialize, which is what
  makes the paper's checkpoint-phase barriers expensive.
* ``"tree"`` — binomial-tree variants (the ablation baseline quantifying
  the paper's linear-algorithm choice).
* ``"analytic"`` — an O(1)-events-per-rank fast path for full-scale runs:
  members join a simulator-internal synchronization point and all complete
  at ``max(arrival) + modeled linear-algorithm cost``.  Failure semantics
  are preserved: if any communicator member is dead when the point
  completes, every participant experiences ``MPI_ERR_PROC_FAILED`` after
  the detection timeout (so the heat application still aborts in the
  barrier after a checkpoint-phase failure).  ``scatter``, ``alltoall``
  and ``scan`` always use their message-level implementations.

Every function is a generator to be driven with ``yield from`` inside an
application coroutine; ``comm`` ranks (not world ranks) are used
throughout, with the data-carrying collectives taking/returning payloads
in communicator rank order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.mpi.constants import ERR_PROC_FAILED
from repro.mpi.errhandler import MpiError
from repro.mpi.ops import Op, fold
from repro.pdes.requests import Advance
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.mpi.api import MpiApi
    from repro.mpi.communicator import Communicator

GenOp = Generator[Any, Any, Any]


def _setup(api: "MpiApi", comm: "Communicator") -> tuple[int, int, int]:
    """Per-call (me, size, tag): the tag is the communicator's collective
    sequence number, which SPMD symmetry keeps consistent across members."""
    me = comm.rank_of(api.rank)
    tag = comm.next_collective_seq(api.rank)
    return me, comm.size, tag


# ----------------------------------------------------------------------
# linear algorithms (the paper's configuration)
# ----------------------------------------------------------------------
def _barrier_linear(api: "MpiApi", comm: "Communicator", me: int, size: int, tag: int) -> GenOp:
    if me == 0:
        for r in range(1, size):
            yield from api._coll_recv(comm, r, tag)
        for r in range(1, size):
            yield from api._coll_send(comm, r, tag, None, 0)
    else:
        yield from api._coll_send(comm, 0, tag, None, 0)
        yield from api._coll_recv(comm, 0, tag)


def _bcast_linear(
    api: "MpiApi", comm: "Communicator", me: int, size: int, tag: int, value: Any, nbytes: int, root: int
) -> GenOp:
    if me == root:
        for r in range(size):
            if r != root:
                yield from api._coll_send(comm, r, tag, value, nbytes)
        return value
    msg = yield from api._coll_recv(comm, root, tag)
    return msg.payload


def _reduce_linear(
    api: "MpiApi", comm: "Communicator", me: int, size: int, tag: int, value: Any, nbytes: int, op: Op, root: int
) -> GenOp:
    if me != root:
        yield from api._coll_send(comm, root, tag, value, nbytes)
        return None
    contributions: list[Any] = [None] * size
    contributions[root] = value
    for r in range(size):
        if r != root:
            msg = yield from api._coll_recv(comm, r, tag)
            contributions[r] = msg.payload
    return fold(op, contributions)


def _gather_linear(
    api: "MpiApi", comm: "Communicator", me: int, size: int, tag: int, value: Any, nbytes: int, root: int
) -> GenOp:
    if me != root:
        yield from api._coll_send(comm, root, tag, value, nbytes)
        return None
    out: list[Any] = [None] * size
    out[root] = value
    for r in range(size):
        if r != root:
            msg = yield from api._coll_recv(comm, r, tag)
            out[r] = msg.payload
    return out


def _scatter_linear(
    api: "MpiApi",
    comm: "Communicator",
    me: int,
    size: int,
    tag: int,
    values: list[Any] | None,
    nbytes: int,
    root: int,
) -> GenOp:
    if me == root:
        if values is None or len(values) != size:
            raise ConfigurationError(f"scatter root needs one value per rank ({size})")
        for r in range(size):
            if r != root:
                yield from api._coll_send(comm, r, tag, values[r], nbytes)
        return values[root]
    msg = yield from api._coll_recv(comm, root, tag)
    return msg.payload


def _alltoall_linear(
    api: "MpiApi",
    comm: "Communicator",
    me: int,
    size: int,
    tag: int,
    values: list[Any],
    nbytes: int | list[int],
) -> GenOp:
    if len(values) != size:
        raise ConfigurationError(f"alltoall needs one value per rank ({size})")
    if isinstance(nbytes, list):
        if len(nbytes) != size:
            raise ConfigurationError(f"alltoallv needs one size per rank ({size})")
        sizes = nbytes
    else:
        sizes = [nbytes] * size
    recvs = [
        api._coll_irecv(comm, r, tag) if r != me else None for r in range(size)
    ]
    for r in range(size):
        if r != me:
            req = yield from api._coll_isend(comm, r, tag, values[r], sizes[r])
            yield from api.world.wait(api.vp, req)
    out: list[Any] = [None] * size
    out[me] = values[me]
    for r in range(size):
        if r != me:
            msg = yield from api.world.wait(api.vp, recvs[r])
            out[r] = msg.payload
    return out


def _scan_linear(
    api: "MpiApi", comm: "Communicator", me: int, size: int, tag: int, value: Any, nbytes: int, op: Op
) -> GenOp:
    acc = value
    if me > 0:
        msg = yield from api._coll_recv(comm, me - 1, tag)
        acc = fold(op, [msg.payload, value])
    if me < size - 1:
        yield from api._coll_send(comm, me + 1, tag, acc, nbytes)
    return acc


# ----------------------------------------------------------------------
# binomial tree algorithms (ablation variant)
# ----------------------------------------------------------------------
def _bcast_tree(
    api: "MpiApi", comm: "Communicator", me: int, size: int, tag: int, value: Any, nbytes: int, root: int
) -> GenOp:
    vr = (me - root) % size
    mask = 1
    while mask < size:
        if vr & mask:
            src = (vr - mask + root) % size
            msg = yield from api._coll_recv(comm, src, tag)
            value = msg.payload
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < size:
            dst = (vr + mask + root) % size
            yield from api._coll_send(comm, dst, tag, value, nbytes)
        mask >>= 1
    return value


def _reduce_tree(
    api: "MpiApi", comm: "Communicator", me: int, size: int, tag: int, value: Any, nbytes: int, op: Op, root: int
) -> GenOp:
    vr = (me - root) % size
    acc = value
    mask = 1
    while mask < size:
        if vr & mask:
            dst = (vr - mask + root) % size
            yield from api._coll_send(comm, dst, tag, acc, nbytes)
            return None
        if vr + mask < size:
            src = (vr + mask + root) % size
            msg = yield from api._coll_recv(comm, src, tag)
            acc = fold(op, [acc, msg.payload])
        mask <<= 1
    return acc


def _barrier_tree(api: "MpiApi", comm: "Communicator", me: int, size: int, tag: int) -> GenOp:
    yield from _reduce_tree(api, comm, me, size, tag, None, 0, _NOOP, 0)
    # second phase needs a distinct tag to stay unambiguous
    tag2 = comm.next_collective_seq(api.rank)
    yield from _bcast_tree(api, comm, me, size, tag2, None, 0, 0)


_NOOP = Op("NOOP", lambda a, b: None)


# ----------------------------------------------------------------------
# analytic fast path (simulator-internal synchronization points)
# ----------------------------------------------------------------------
def _analytic(
    api: "MpiApi",
    comm: "Communicator",
    kind: str,
    tag: int,
    value: Any,
    cost: float,
) -> GenOp:
    """Join the sync point, then enforce failure semantics: any dead
    communicator member surfaces as MPI_ERR_PROC_FAILED after the
    detection timeout, mirroring the message-level algorithms."""
    world = api.world
    result = yield from world.sync_arrive(
        api.vp, comm, kind, tag, value=value, cost_fn=lambda n: cost
    )
    dead = [r for r in comm.group if r not in result.values]
    if dead:
        f = dead[0]
        timeout = world.network.detection_timeout(api.rank, f)
        yield Advance(timeout, busy=False)
        world.engine.log.log(
            api.vp.clock,
            "detect",
            f"detected failure of rank {f} ({kind} ctx={comm.context_id * 2 + 1})",
            rank=api.rank,
        )
        if world.obs is not None:
            world.obs.instant(
                api.vp.clock, "detect", rank=api.rank, track="resilience",
                args={"failed_rank": f, "latency": timeout},
            )
        yield from world.handle_error(
            api.vp, comm, MpiError(ERR_PROC_FAILED, f"{kind} with failed rank {f}", f)
        )
    return result


def _linear_cost(api: "MpiApi", size: int, nbytes: int, phases: int = 2) -> float:
    """Modeled completion cost of a linear fan-in/fan-out at the root.

    In the message-level linear algorithms the root serializes (size-1)
    receives at its receive overhead (fan-in) and (size-1) sends at its
    send overhead (fan-out); the members' own per-message overheads are
    paid in parallel.  ``phases=2`` models fan-in + fan-out (barrier,
    allreduce), ``phases=1`` a single rooted phase (bcast, reduce,
    gather)."""
    net = api.world.network
    per_msg = net.send_overhead + net.recv_overhead
    avg_hops = max(1, net.topology.diameter() // 2)
    wire = avg_hops * net.system.latency + nbytes / net.system.bandwidth
    if phases >= 2:
        root_serial = (size - 1) * per_msg
    else:
        root_serial = (size - 1) * per_msg / 2.0
    return root_serial + phases * wire + per_msg


# ----------------------------------------------------------------------
# public dispatchers
# ----------------------------------------------------------------------
def _observed(api: "MpiApi", name: str, inner: GenOp) -> GenOp:
    """Wrap a collective's dispatch in an observer span.

    The span covers this rank's virtual entry-to-exit interval.  When no
    observer is attached the inner generator is delegated to directly; a
    collective killed mid-flight by an abort emits no span (the serial
    and sharded engines kill generators at the same virtual point, so
    exports stay identical).
    """
    obs = api.world.obs
    if obs is None:
        return (yield from inner)
    t0 = api.vp.clock
    result = yield from inner
    obs.span(t0, api.vp.clock, name, rank=api.rank)
    return result


def barrier(api: "MpiApi", comm: "Communicator") -> GenOp:
    """``MPI_Barrier``."""
    return (yield from _observed(api, "coll:barrier", _barrier_dispatch(api, comm)))


def _barrier_dispatch(api: "MpiApi", comm: "Communicator") -> GenOp:
    me, size, tag = _setup(api, comm)
    if size == 1:
        return
    algo = api.world.collective_algorithm
    if algo == "linear":
        yield from _barrier_linear(api, comm, me, size, tag)
    elif algo == "tree":
        yield from _barrier_tree(api, comm, me, size, tag)
    else:
        yield from _analytic(api, comm, "barrier", tag, None, _linear_cost(api, size, 0))


def bcast(api: "MpiApi", comm: "Communicator", value: Any, nbytes: int, root: int = 0) -> GenOp:
    """``MPI_Bcast``: returns the root's value on every member."""
    return (
        yield from _observed(api, "coll:bcast", _bcast_dispatch(api, comm, value, nbytes, root))
    )


def _bcast_dispatch(
    api: "MpiApi", comm: "Communicator", value: Any, nbytes: int, root: int = 0
) -> GenOp:
    me, size, tag = _setup(api, comm)
    if size == 1:
        return value
    algo = api.world.collective_algorithm
    if algo == "linear":
        return (yield from _bcast_linear(api, comm, me, size, tag, value, nbytes, root))
    if algo == "tree":
        return (yield from _bcast_tree(api, comm, me, size, tag, value, nbytes, root))
    result = yield from _analytic(
        api, comm, "bcast", tag, value if me == root else None,
        _linear_cost(api, size, nbytes, phases=1),
    )
    return result.values[comm.world_rank(root)]


def reduce(
    api: "MpiApi", comm: "Communicator", value: Any, nbytes: int, op: Op, root: int = 0
) -> GenOp:
    """``MPI_Reduce``: the folded value at the root, ``None`` elsewhere."""
    return (
        yield from _observed(
            api, "coll:reduce", _reduce_dispatch(api, comm, value, nbytes, op, root)
        )
    )


def _reduce_dispatch(
    api: "MpiApi", comm: "Communicator", value: Any, nbytes: int, op: Op, root: int = 0
) -> GenOp:
    me, size, tag = _setup(api, comm)
    if size == 1:
        return fold(op, [value])
    algo = api.world.collective_algorithm
    if algo == "linear":
        return (yield from _reduce_linear(api, comm, me, size, tag, value, nbytes, op, root))
    if algo == "tree":
        return (yield from _reduce_tree(api, comm, me, size, tag, value, nbytes, op, root))
    result = yield from _analytic(
        api, comm, "reduce", tag, value, _linear_cost(api, size, nbytes, phases=1)
    )
    if me != root:
        return None
    return fold(op, [result.values[w] for w in comm.group if w in result.values])


def allreduce(api: "MpiApi", comm: "Communicator", value: Any, nbytes: int, op: Op) -> GenOp:
    """``MPI_Allreduce`` (reduce to rank 0, then broadcast)."""
    return (
        yield from _observed(
            api, "coll:allreduce", _allreduce_dispatch(api, comm, value, nbytes, op)
        )
    )


def _allreduce_dispatch(
    api: "MpiApi", comm: "Communicator", value: Any, nbytes: int, op: Op
) -> GenOp:
    me, size, tag = _setup(api, comm)
    if size == 1:
        return fold(op, [value])
    algo = api.world.collective_algorithm
    if algo == "analytic":
        result = yield from _analytic(
            api, comm, "allreduce", tag, value, _linear_cost(api, size, nbytes)
        )
        return fold(op, [result.values[w] for w in comm.group if w in result.values])
    if algo == "linear":
        acc = yield from _reduce_linear(api, comm, me, size, tag, value, nbytes, op, 0)
    else:
        acc = yield from _reduce_tree(api, comm, me, size, tag, value, nbytes, op, 0)
    # _bcast_dispatch (not bcast): the composing allreduce span is the one
    # user-visible collective; no nested bcast span.
    return (yield from _bcast_dispatch(api, comm, acc, nbytes, root=0))


def gather(api: "MpiApi", comm: "Communicator", value: Any, nbytes: int, root: int = 0) -> GenOp:
    """``MPI_Gather``: list of member values (rank order) at the root."""
    return (
        yield from _observed(api, "coll:gather", _gather_dispatch(api, comm, value, nbytes, root))
    )


def _gather_dispatch(
    api: "MpiApi", comm: "Communicator", value: Any, nbytes: int, root: int = 0
) -> GenOp:
    me, size, tag = _setup(api, comm)
    if size == 1:
        return [value]
    algo = api.world.collective_algorithm
    if algo == "analytic":
        result = yield from _analytic(
            api, comm, "gather", tag, value, _linear_cost(api, size, nbytes, phases=1)
        )
        if me != root:
            return None
        return [result.values.get(w) for w in comm.group]
    return (yield from _gather_linear(api, comm, me, size, tag, value, nbytes, root))


def allgather(api: "MpiApi", comm: "Communicator", value: Any, nbytes: int) -> GenOp:
    """``MPI_Allgather``: every member gets the rank-ordered value list."""
    return (
        yield from _observed(api, "coll:allgather", _allgather_dispatch(api, comm, value, nbytes))
    )


def _allgather_dispatch(api: "MpiApi", comm: "Communicator", value: Any, nbytes: int) -> GenOp:
    me, size, tag = _setup(api, comm)
    if size == 1:
        return [value]
    algo = api.world.collective_algorithm
    if algo == "analytic":
        result = yield from _analytic(
            api, comm, "allgather", tag, value, _linear_cost(api, size, nbytes)
        )
        return [result.values.get(w) for w in comm.group]
    out = yield from _gather_linear(api, comm, me, size, tag, value, nbytes, 0)
    return (yield from _bcast_dispatch(api, comm, out, nbytes * size, root=0))


def scatter(
    api: "MpiApi", comm: "Communicator", values: list[Any] | None, nbytes: int, root: int = 0
) -> GenOp:
    """``MPI_Scatter``: always message-level (per-destination payloads)."""
    return (
        yield from _observed(
            api, "coll:scatter", _scatter_dispatch(api, comm, values, nbytes, root)
        )
    )


def _scatter_dispatch(
    api: "MpiApi", comm: "Communicator", values: list[Any] | None, nbytes: int, root: int = 0
) -> GenOp:
    me, size, tag = _setup(api, comm)
    if size == 1:
        if values is None or len(values) != 1:
            raise ConfigurationError("scatter root needs one value per rank (1)")
        return values[0]
    return (yield from _scatter_linear(api, comm, me, size, tag, values, nbytes, root))


def alltoall(
    api: "MpiApi", comm: "Communicator", values: list[Any], nbytes: int | list[int]
) -> GenOp:
    """``MPI_Alltoall``/``MPI_Alltoallv``: always message-level.  A list of
    sizes (one per destination) gives the variable-size semantics."""
    return (
        yield from _observed(api, "coll:alltoall", _alltoall_dispatch(api, comm, values, nbytes))
    )


def _alltoall_dispatch(
    api: "MpiApi", comm: "Communicator", values: list[Any], nbytes: int | list[int]
) -> GenOp:
    me, size, tag = _setup(api, comm)
    if size == 1:
        return [values[0]]
    return (yield from _alltoall_linear(api, comm, me, size, tag, values, nbytes))


def scan(api: "MpiApi", comm: "Communicator", value: Any, nbytes: int, op: Op) -> GenOp:
    """``MPI_Scan`` (inclusive): always message-level (chain)."""
    return (yield from _observed(api, "coll:scan", _scan_dispatch(api, comm, value, nbytes, op)))


def _scan_dispatch(api: "MpiApi", comm: "Communicator", value: Any, nbytes: int, op: Op) -> GenOp:
    me, size, tag = _setup(api, comm)
    if size == 1:
        return fold(op, [value])
    return (yield from _scan_linear(api, comm, me, size, tag, value, nbytes, op))
