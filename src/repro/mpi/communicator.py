"""Simulated MPI communicators.

A communicator couples a :class:`~repro.mpi.group.Group` with a *context
id* that isolates its message traffic (point-to-point and collective
traffic use separate contexts, as real MPI implementations do), the
per-rank error handlers, and the ULFM state (revocation flag and per-rank
acknowledged-failure sets).

Communicator objects are shared across all member ranks — the simulator
equivalent of each rank holding a handle to the same distributed object.
State that is logically per-rank (error handler, acknowledged failures,
collective sequence numbers) is stored in per-rank tables inside the
shared object.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mpi.errhandler import ERRORS_ARE_FATAL, Errhandler
from repro.mpi.group import Group
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    pass


class Communicator:
    """One simulated communicator."""

    __slots__ = (
        "group",
        "context_id",
        "name",
        "revoked",
        "freed",
        "_errhandlers",
        "_acked",
        "_coll_seq",
        "_world_ranks",
    )

    def __init__(self, group: Group, context_id: int, name: str = ""):
        self.group = group
        # Groups are immutable, so the rank translation table can be
        # indexed directly in the per-message hot path (see world_rank).
        self._world_ranks = group.ranks
        self.context_id = context_id
        self.name = name or f"comm#{context_id}"
        #: Set by ``MPI_Comm_revoke``; all subsequent operations fail with
        #: ``MPI_ERR_REVOKED`` (except shrink/agree).
        self.revoked = False
        self.freed = False
        self._errhandlers: dict[int, Errhandler] = {}
        self._acked: dict[int, frozenset[int]] = {}
        self._coll_seq: dict[int, int] = {}

    # -- shape ----------------------------------------------------------
    @property
    def size(self) -> int:
        return self.group.size

    def rank_of(self, world_rank: int) -> int:
        """Communicator rank of ``world_rank`` (raises if not a member)."""
        r = self.group.group_rank(world_rank)
        if r is None:
            raise ConfigurationError(f"world rank {world_rank} not in {self.name}")
        return r

    def world_rank(self, comm_rank: int) -> int:
        """World rank of communicator rank ``comm_rank``."""
        if comm_rank >= 0:
            try:
                return self._world_ranks[comm_rank]
            except IndexError:
                pass
        raise ConfigurationError(
            f"group rank {comm_rank} outside group of {self.size}"
        )

    def contains(self, world_rank: int) -> bool:
        """Is ``world_rank`` a member?"""
        return self.group.contains(world_rank)

    # -- error handlers ---------------------------------------------------
    def get_errhandler(self, world_rank: int) -> Errhandler:
        """This member's error handler (default ``MPI_ERRORS_ARE_FATAL``)."""
        return self._errhandlers.get(world_rank, ERRORS_ARE_FATAL)

    def set_errhandler(self, world_rank: int, handler: Errhandler) -> None:
        """Set this member's error handler."""
        self._errhandlers[world_rank] = handler

    # -- ULFM per-rank acknowledged failures ------------------------------
    def acked_failures(self, world_rank: int) -> frozenset[int]:
        """Failed world ranks this member has acknowledged
        (``MPI_Comm_failure_ack`` / ``_get_acked``)."""
        return self._acked.get(world_rank, frozenset())

    def ack_failures(self, world_rank: int, failed: frozenset[int]) -> None:
        """Record this member's acknowledged failed-rank set (ULFM)."""
        self._acked[world_rank] = frozenset(failed)

    # -- collective sequencing ---------------------------------------------
    def next_collective_seq(self, world_rank: int) -> int:
        """Per-member counter of collective calls on this communicator.

        Collective-internal messages use this as their tag; because
        collectives are called SPMD-symmetrically, members agree on the
        sequence number of each operation, isolating overlapping
        collectives from each other and from point-to-point traffic.
        """
        seq = self._coll_seq.get(world_rank, 0)
        self._coll_seq[world_rank] = seq + 1
        return seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            s for s, on in ((" revoked", self.revoked), (" freed", self.freed)) if on
        )
        return f"<Communicator {self.name} size={self.size} ctx={self.context_id}{flags}>"
