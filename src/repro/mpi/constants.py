"""MPI constants used by the simulated MPI layer.

Values mirror the MPI standard's semantics, not any particular ABI: they
are only compared within the simulator.
"""

from __future__ import annotations

#: Wildcard source for receives.
ANY_SOURCE: int = -1
#: Wildcard tag for receives.
ANY_TAG: int = -1
#: Null peer: communication with it completes immediately and carries nothing.
PROC_NULL: int = -2

#: Operation completed.
SUCCESS: int = 0
#: A communication peer (or collective member) has failed — the ULFM
#: ``MPI_ERR_PROC_FAILED`` error class the paper's future work adopts.
ERR_PROC_FAILED: int = 75
#: The communicator was revoked with ``MPI_Comm_revoke`` (ULFM).
ERR_REVOKED: int = 76
#: The application (or the MPI layer under ``MPI_ERRORS_ARE_FATAL``) aborted.
ERR_ABORT: int = 77
#: Invalid argument to an MPI call.
ERR_ARG: int = 12
#: Operation on a communicator this rank is not a member of, etc.
ERR_COMM: int = 5

#: Largest application-usable tag; the simulated MPI layer reserves the
#: space above it for collective-operation internal messages.
TAG_UB: int = 2**20

ERROR_NAMES: dict[int, str] = {
    SUCCESS: "MPI_SUCCESS",
    ERR_PROC_FAILED: "MPI_ERR_PROC_FAILED",
    ERR_REVOKED: "MPI_ERR_REVOKED",
    ERR_ABORT: "MPI_ERR_ABORT",
    ERR_ARG: "MPI_ERR_ARG",
    ERR_COMM: "MPI_ERR_COMM",
}


def error_name(code: int) -> str:
    """Human-readable name of an MPI error class."""
    return ERROR_NAMES.get(code, f"MPI_ERR_{code}")
