"""Simulated MPI datatypes.

The cost model only needs payload *sizes*; datatypes exist so applications
can express counts the MPI way (``count * datatype.size`` bytes) and so the
reduction collectives know how to combine real payloads when the
application runs in real-data mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class Datatype:
    """An elementary simulated MPI datatype."""

    name: str
    size: int
    numpy: np.dtype | None = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"datatype {self.name} must have size > 0")

    def extent(self, count: int) -> int:
        """Bytes occupied by ``count`` elements."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        return count * self.size


BYTE = Datatype("MPI_BYTE", 1, np.dtype(np.uint8))
CHAR = Datatype("MPI_CHAR", 1, np.dtype(np.int8))
INT = Datatype("MPI_INT", 4, np.dtype(np.int32))
LONG = Datatype("MPI_LONG", 8, np.dtype(np.int64))
FLOAT = Datatype("MPI_FLOAT", 4, np.dtype(np.float32))
DOUBLE = Datatype("MPI_DOUBLE", 8, np.dtype(np.float64))


def payload_nbytes(payload: object, nbytes: int | None) -> int:
    """Resolve the wire size of a message.

    ``nbytes`` wins when given; otherwise numpy arrays report their real
    size, ``bytes``-likes their length, and ``None`` means a zero-byte
    (signalling) message.  Other payloads require an explicit ``nbytes``.
    """
    if nbytes is not None:
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return int(nbytes)
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    raise ConfigurationError(
        f"cannot infer message size from {type(payload).__name__}; pass nbytes="
    )
