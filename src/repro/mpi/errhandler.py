"""MPI error handlers and the error delivered to applications.

Paper §IV-D: "Once the simulated MPI layer detects a process failure,
MPI_Abort() is invoked if the error handler of the particular communicator
is set to the default value of MPI_ERRORS_ARE_FATAL.  Note that xSim does
support other error handlers, such as MPI_ERRORS_RETURN and user-defined
error handlers."

This reproduction delivers ``MPI_ERRORS_RETURN`` (and user handlers that
return) Pythonically: the failing call raises :class:`MpiError`, which the
application catches — the idiom ULFM-style recovery code uses in
:mod:`repro.mpi.ulfm` and ``examples/ulfm_recovery.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.mpi.constants import error_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.mpi.communicator import Communicator


class MpiError(Exception):
    """An MPI call failed and the error handler allowed it to return."""

    def __init__(self, code: int, message: str, failed_rank: int | None = None):
        self.code = code
        #: World rank of the failed peer when the error class is
        #: ``MPI_ERR_PROC_FAILED``; otherwise ``None``.
        self.failed_rank = failed_rank
        super().__init__(f"{error_name(code)}: {message}")


class _FatalHandler:
    """Sentinel for the default ``MPI_ERRORS_ARE_FATAL`` handler."""

    def __repr__(self) -> str:
        return "MPI_ERRORS_ARE_FATAL"

    def __reduce__(self):
        # Pickle to the module-global name so the sharded engine's fork
        # transport (and checkpoint stores) round-trip the sentinel to the
        # *same* object — handler dispatch compares with ``is``.
        return "ERRORS_ARE_FATAL"


class _ReturnHandler:
    """Sentinel for ``MPI_ERRORS_RETURN``."""

    def __repr__(self) -> str:
        return "MPI_ERRORS_RETURN"

    def __reduce__(self):
        return "ERRORS_RETURN"


#: Default: any MPI error triggers a simulated ``MPI_Abort``.
ERRORS_ARE_FATAL = _FatalHandler()
#: Errors are raised to the application as :class:`MpiError`.
ERRORS_RETURN = _ReturnHandler()

#: A user-defined handler: called with ``(comm, error)``.  If it returns
#: normally the error is then raised to the application like
#: ``MPI_ERRORS_RETURN``; the handler may itself raise (or call
#: ``mpi.abort()`` from application context before re-raising).
UserHandler = Callable[["Communicator", MpiError], None]

Errhandler = _FatalHandler | _ReturnHandler | UserHandler
