"""MPI groups: ordered sets of world ranks.

A group defines the rank translation of a communicator: position ``i`` in
the group is communicator rank ``i``, holding a world (global) rank.  The
set-like operations mirror ``MPI_Group_incl/excl/union/intersection/
difference`` and are what ``MPI_Comm_shrink`` uses to exclude failed
members.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.util.errors import ConfigurationError


class Group:
    """Immutable ordered set of world ranks."""

    __slots__ = ("_ranks", "_index")

    def __init__(self, ranks: Iterable[int]):
        ranks = tuple(int(r) for r in ranks)
        if len(set(ranks)) != len(ranks):
            raise ConfigurationError(f"group ranks must be unique, got {ranks!r}")
        if any(r < 0 for r in ranks):
            raise ConfigurationError(f"group ranks must be >= 0, got {ranks!r}")
        self._ranks = ranks
        self._index = {r: i for i, r in enumerate(ranks)}

    @property
    def size(self) -> int:
        return len(self._ranks)

    @property
    def ranks(self) -> tuple[int, ...]:
        """World ranks in group order."""
        return self._ranks

    def world_rank(self, group_rank: int) -> int:
        """Translate a group (communicator) rank to a world rank."""
        if not 0 <= group_rank < len(self._ranks):
            raise ConfigurationError(f"group rank {group_rank} outside group of {self.size}")
        return self._ranks[group_rank]

    def group_rank(self, world_rank: int) -> int | None:
        """Translate a world rank to its group rank (None if absent)."""
        return self._index.get(world_rank)

    def contains(self, world_rank: int) -> bool:
        """Is ``world_rank`` in the group?"""
        return world_rank in self._index

    # -- set-like constructors -----------------------------------------
    def incl(self, group_ranks: Iterable[int]) -> "Group":
        """Subgroup of the listed group ranks, in the listed order."""
        return Group(self.world_rank(i) for i in group_ranks)

    def excl(self, group_ranks: Iterable[int]) -> "Group":
        """Subgroup without the listed group ranks, preserving order."""
        drop = set(group_ranks)
        for i in drop:
            self.world_rank(i)  # validate
        return Group(r for i, r in enumerate(self._ranks) if i not in drop)

    def union(self, other: "Group") -> "Group":
        """``MPI_Group_union``: self's ranks then other's new ones."""
        extra = [r for r in other._ranks if r not in self._index]
        return Group(self._ranks + tuple(extra))

    def intersection(self, other: "Group") -> "Group":
        """``MPI_Group_intersection``, in self's order."""
        return Group(r for r in self._ranks if other.contains(r))

    def difference(self, other: "Group") -> "Group":
        """``MPI_Group_difference``: self's ranks not in other."""
        return Group(r for r in self._ranks if not other.contains(r))

    def excl_world(self, world_ranks: Iterable[int]) -> "Group":
        """Subgroup without the listed *world* ranks (shrink's operation)."""
        drop = set(world_ranks)
        return Group(r for r in self._ranks if r not in drop)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ranks)

    def __len__(self) -> int:
        return len(self._ranks)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._ranks == other._ranks

    def __hash__(self) -> int:
        return hash(self._ranks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.size <= 8:
            return f"Group{self._ranks!r}"
        head = ", ".join(map(str, self._ranks[:4]))
        return f"Group(({head}, ... {self.size} ranks))"
