"""Messages and communication requests of the simulated MPI layer.

A :class:`Msg` is what travels through the simulated network: either an
eager payload or a rendezvous request-to-send (RTS) control message.  A
:class:`Request` is the per-rank handle of one communication operation
(MPI's ``MPI_Request``); blocking calls are nonblocking posts followed by a
wait.  Matching (tag/source, wildcards, non-overtaking order) is performed
by :class:`~repro.mpi.world.MpiWorld` over the per-rank posted/unexpected
queues.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, SUCCESS

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.mpi.communicator import Communicator
    from repro.pdes.context import VirtualProcess

#: Protocols a message can use on the wire.
EAGER = "eager"
RTS = "rts"


class Msg:
    """One simulated network message (eager payload or rendezvous RTS)."""

    __slots__ = ("ctx", "src", "dst", "tag", "nbytes", "payload", "seq", "protocol", "arrival", "send_req")

    def __init__(
        self,
        ctx: int,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        payload: Any,
        seq: int,
        protocol: str,
        send_req: "Request | None" = None,
    ):
        self.ctx = ctx
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.seq = seq
        self.protocol = protocol
        #: Virtual time the message reached the destination NIC (set on delivery).
        self.arrival = math.nan
        #: The sender's pending request, for rendezvous hand-shake completion.
        self.send_req = send_req

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Msg {self.protocol} {self.src}->{self.dst} ctx={self.ctx} "
            f"tag={self.tag} {self.nbytes}B seq={self.seq}>"
        )


class Request:
    """Handle of one nonblocking send or receive operation."""

    __slots__ = (
        "kind",
        "vp",
        "comm",
        "ctx",
        "src",
        "dst",
        "tag",
        "nbytes",
        "post_time",
        "done",
        "waiting",
        "error",
        "failed_rank",
        "completion_time",
        "result",
        "post_seq",
    )

    SEND = "send"
    RECV = "recv"

    def __init__(
        self,
        kind: str,
        vp: "VirtualProcess",
        comm: "Communicator",
        ctx: int,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        post_time: float,
    ):
        self.kind = kind
        self.vp = vp
        self.comm = comm
        self.ctx = ctx
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.post_time = post_time
        self.done = False
        #: True while the owning VP is blocked inside wait() on this request.
        self.waiting = False
        self.error = SUCCESS
        #: World rank whose failure caused ``error`` (for MPI_ERR_PROC_FAILED).
        self.failed_rank: int | None = None
        #: Virtual time the operation completed (may be in the owner's
        #: future; wait() advances the owner's clock to it).
        self.completion_time = math.nan
        #: Received payload (recv requests).
        self.result: Any = None
        #: Monotonic post order among this rank's receives (matching tie-break).
        self.post_seq = 0

    # -- lifecycle -------------------------------------------------------
    def complete(self, time: float, result: Any = None) -> None:
        """Mark successful completion at virtual ``time``."""
        self.done = True
        self.completion_time = time
        self.result = result

    def fail(self, time: float, error: int, failed_rank: int | None = None) -> None:
        """Mark completion-with-error at virtual ``time``."""
        self.done = True
        self.completion_time = time
        self.error = error
        self.failed_rank = failed_rank

    # -- matching keys -----------------------------------------------------
    def matches_msg(self, msg: Msg) -> bool:
        """Does this *posted receive* accept ``msg``? (context must equal,
        source/tag may be wildcards)."""
        return (
            msg.ctx == self.ctx
            and (self.src == ANY_SOURCE or self.src == msg.src)
            and (self.tag == ANY_TAG or self.tag == msg.tag)
        )

    def describe(self) -> str:
        """Short human-readable description (deadlock reports, traces)."""
        if self.kind == Request.RECV:
            src = "ANY" if self.src == ANY_SOURCE else str(self.src)
            tag = "ANY" if self.tag == ANY_TAG else str(self.tag)
            return f"recv src={src} tag={tag} ctx={self.ctx}"
        return f"send dst={self.dst} tag={self.tag} ctx={self.ctx} ({self.nbytes}B)"

    # A Request used as a Block tag stringifies to its description, so the
    # f-string is only built when a deadlock report or trace needs it.
    __str__ = describe

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("waiting" if self.waiting else "pending")
        return f"<Request {self.describe()} {state} err={self.error}>"
