"""Reduction operations for the simulated MPI collectives.

Operations combine *payloads* — numpy arrays or scalars in real-data mode,
``None`` in modeled mode (where only message sizes matter and the fold
short-circuits to ``None``).  All provided operations are associative and
commutative, as MPI requires for predefined ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np


@dataclass(frozen=True)
class Op:
    """A binary reduction operation (``MPI_Op``)."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


SUM = Op("MPI_SUM", lambda a, b: a + b)
PROD = Op("MPI_PROD", lambda a, b: a * b)
MIN = Op("MPI_MIN", lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b))
MAX = Op("MPI_MAX", lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b))
LAND = Op("MPI_LAND", lambda a, b: bool(a) and bool(b))
LOR = Op("MPI_LOR", lambda a, b: bool(a) or bool(b))
BAND = Op("MPI_BAND", lambda a, b: a & b)
BOR = Op("MPI_BOR", lambda a, b: a | b)


def fold(op: Op, contributions: Iterable[Any]) -> Any:
    """Fold contributions in the given order; ``None`` anywhere (modeled
    payloads) makes the result ``None``."""
    acc: Any = None
    first = True
    for value in contributions:
        if value is None:
            return None
        acc = value if first else op(acc, value)
        first = False
    return acc
