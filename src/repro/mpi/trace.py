"""Communication tracing (the DUMPI-trace analogue).

The xSim ecosystem interoperates with trace-driven tools — SST/macro
consumes DUMPI traces of MPI communication.  Enabling tracing on a
:class:`~repro.mpi.world.MpiWorld` (``record_trace=True``) records one
:class:`MsgRecord` per simulated message: post and delivery virtual times,
endpoints, context/tag, payload size, protocol, and whether the message
was *dropped* because its destination had failed (a resilience-specific
extension a real DUMPI trace cannot express).

The trace supports the usual post-mortem queries (per-pair traffic
matrices, byte totals, time-window filters) and a portable row export.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(slots=True)
class MsgRecord:
    """One simulated message, as observed by the tracer.

    Mutable only through the tracer itself (delivery fills in
    ``arrival_time``/``dropped``); treat instances as read-only.
    """

    seq: int
    post_time: float
    arrival_time: float
    """NaN while in flight / if the run ended first; see ``dropped``."""
    src: int
    dst: int
    ctx: int
    tag: int
    nbytes: int
    protocol: str
    dropped: bool
    """True when delivery was discarded because the destination failed."""
    drop_time: float = math.nan
    """Virtual time the drop was observed at (NaN unless ``dropped``)."""

    @property
    def delivered(self) -> bool:
        return not self.dropped and not math.isnan(self.arrival_time)

    @property
    def latency(self) -> float:
        """Post-to-delivery virtual duration (NaN if undelivered).

        Dropped messages were never delivered, so their latency is NaN;
        the drop instant itself is kept in :attr:`drop_time`.
        """
        return self.arrival_time - self.post_time

    def as_row(self) -> tuple:
        """Portable tuple export (CSV-friendly)."""
        return (
            self.seq,
            self.post_time,
            self.arrival_time,
            self.src,
            self.dst,
            self.ctx,
            self.tag,
            self.nbytes,
            self.protocol,
            int(self.dropped),
            self.drop_time,
        )


#: Column names matching :meth:`MsgRecord.as_row`.
ROW_HEADER = (
    "seq",
    "post_time",
    "arrival_time",
    "src",
    "dst",
    "ctx",
    "tag",
    "nbytes",
    "protocol",
    "dropped",
    "drop_time",
)


class CommTrace:
    """Append-only trace of every simulated message."""

    def __init__(self) -> None:
        self._records: dict[int, MsgRecord] = {}
        #: Deliveries whose seq was never posted.  Expected (and benign)
        #: when tracing is enabled mid-run; a sequencing bug otherwise.
        self.orphan_deliveries = 0
        #: Set by :meth:`MpiWorld.launch` when the trace was attached before
        #: any message was posted, so orphans cannot be mid-run artifacts.
        self.from_start = False

    # -- recording (called by MpiWorld) ---------------------------------
    def record_post(
        self,
        seq: int,
        time: float,
        src: int,
        dst: int,
        ctx: int,
        tag: int,
        nbytes: int,
        protocol: str,
    ) -> None:
        """Record a message leaving its sender (called at post time)."""
        self._records[seq] = MsgRecord(
            seq=seq,
            post_time=time,
            arrival_time=math.nan,
            src=src,
            dst=dst,
            ctx=ctx,
            tag=tag,
            nbytes=nbytes,
            protocol=protocol,
            dropped=False,
        )

    def record_delivery(self, seq: int, time: float, dropped: bool) -> None:
        """Record the delivery (or resilience drop) of message ``seq``."""
        record = self._records.get(seq)
        if record is None:
            self.orphan_deliveries += 1
            return  # tracing was enabled mid-run (or a sequencing bug)
        if dropped:
            record.dropped = True
            record.drop_time = time
        else:
            record.arrival_time = time

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[MsgRecord]:
        return iter(sorted(self._records.values(), key=lambda r: r.seq))

    def messages(
        self,
        src: int | None = None,
        dst: int | None = None,
        ctx: int | None = None,
        since: float = -math.inf,
        until: float = math.inf,
    ) -> list[MsgRecord]:
        """Records filtered by endpoints, context, and post-time window."""
        return [
            r
            for r in self
            if (src is None or r.src == src)
            and (dst is None or r.dst == dst)
            and (ctx is None or r.ctx == ctx)
            and since <= r.post_time < until
        ]

    def dropped_messages(self) -> list[MsgRecord]:
        """Messages deleted because their destination had failed."""
        return [r for r in self if r.dropped]

    def total_bytes(self) -> int:
        """Sum of all traced payload sizes."""
        return sum(r.nbytes for r in self._records.values())

    def traffic_matrix(self) -> dict[tuple[int, int], int]:
        """(src, dst) -> total bytes."""
        out: dict[tuple[int, int], int] = {}
        for r in self._records.values():
            key = (r.src, r.dst)
            out[key] = out.get(key, 0) + r.nbytes
        return out

    def busiest_pairs(self, n: int = 10) -> list[tuple[tuple[int, int], int]]:
        """Top-n (src, dst) pairs by bytes, ties broken by (src, dst).

        The tie-break keeps the report bit-identical across runs that
        produce the same traffic matrix in a different insertion order.
        """
        return sorted(self.traffic_matrix().items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def to_rows(self) -> list[tuple]:
        """All records as portable tuples (see :data:`ROW_HEADER`)."""
        return [r.as_row() for r in self]
