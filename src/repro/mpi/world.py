"""The simulated MPI world: delivery, matching, and failure propagation.

:class:`MpiWorld` owns the global state of one simulated MPI job — the
per-rank matching queues, the communicator table, the network/processor/
file-system models — and implements the mechanics behind every MPI call:

* **Point-to-point** — eager messages are buffered at the sender and
  delivered after the modeled transfer time; payloads above the eager
  threshold use the rendezvous protocol (an RTS control message, a CTS
  after the receive is matched, then the payload transfer).  Matching
  honours MPI semantics: contexts isolate communicators, ``MPI_ANY_SOURCE``
  and ``MPI_ANY_TAG`` wildcards, and non-overtaking order per sender.
  Exact receives are matched through per-``(context, source, tag)`` indexes
  so linear-algorithm collectives stay O(N) at 32,768 ranks.
* **Failure propagation** (paper §IV-B/C) — when a virtual process fails,
  all messages directed to it are deleted, a simulator-internal broadcast
  records the failure (with its time) in every surviving rank's
  failed-process list, and every blocked or posted request involving the
  failed rank — including ``MPI_ANY_SOURCE`` receives on communicators
  containing it and rendezvous sends to it — is *released and failed* at
  ``max(failure time, post time) + detection timeout`` per the network
  model's per-tier timeout.  Requests posted after the notification fail
  from the failed-process list immediately at post time — the detection
  delay was already paid when the notification was delivered.
* **Error delivery** (paper §IV-D) — a failed request consults the
  communicator's error handler: ``MPI_ERRORS_ARE_FATAL`` (the default)
  invokes the simulated ``MPI_Abort``; ``MPI_ERRORS_RETURN`` and user
  handlers surface an :class:`~repro.mpi.errhandler.MpiError` to the
  application (the ULFM path).
* **Synchronization points** — a simulator-internal rendezvous facility
  (:meth:`MpiWorld.sync_arrive`) that completes when every *currently
  alive* expected member has arrived.  It backs the failure-tolerant ULFM
  ``MPI_Comm_shrink``/``MPI_Comm_agree`` and the analytic (O(1)-event)
  collective mode used for full-scale runs.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Generator

import numpy as np

from repro.models.filesystem import FileSystemModel
from repro.models.memory import MemoryTracker
from repro.models.network.model import NetworkModel
from repro.models.processor import ProcessorModel
from repro.mpi.communicator import Communicator
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, ERR_PROC_FAILED, ERR_REVOKED, SUCCESS
from repro.mpi.errhandler import ERRORS_ARE_FATAL, ERRORS_RETURN, MpiError
from repro.mpi.group import Group
from repro.mpi.messages import EAGER, RTS, Msg, Request
from repro.pdes.context import LIVE_STATES, VirtualProcess
from repro.pdes.engine import Engine
from repro.pdes.requests import Advance, Block
from repro.util.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.mpi.api import MpiApi

MatchKey = tuple[int, int, int]  # (context, source, tag)


class RankState:
    """Per-rank MPI-layer state (hangs off the VP's userdata slot)."""

    __slots__ = (
        "rank",
        "vp",
        "posted_exact",
        "posted_wild",
        "unexpected",
        "rdv_sends",
        "initialized",
        "finalized",
    )

    def __init__(self, rank: int, vp: VirtualProcess):
        self.rank = rank
        self.vp = vp
        #: Posted receives with fully specified (ctx, src, tag), FIFO per key.
        self.posted_exact: dict[MatchKey, list[Request]] = {}
        #: Posted receives using ANY_SOURCE/ANY_TAG, in post order.
        self.posted_wild: list[Request] = []
        #: Arrived-but-unmatched messages per (ctx, src, tag), sorted by seq.
        self.unexpected: dict[MatchKey, list[Msg]] = {}
        #: This rank's pending rendezvous sends (awaiting their CTS).
        self.rdv_sends: list[Request] = []
        self.initialized = False
        self.finalized = False

    def iter_posted(self) -> list[Request]:
        """All posted receives (exact and wildcard), unordered."""
        out: list[Request] = []
        for reqs in self.posted_exact.values():
            out.extend(reqs)
        out.extend(self.posted_wild)
        return out

    def remove_posted(self, req: Request) -> None:
        """Drop a posted receive from whichever index holds it."""
        if req.src != ANY_SOURCE and req.tag != ANY_TAG:
            key = (req.ctx, req.src, req.tag)
            reqs = self.posted_exact.get(key)
            if reqs and req in reqs:
                reqs.remove(req)
                if not reqs:
                    del self.posted_exact[key]
        elif req in self.posted_wild:
            self.posted_wild.remove(req)


class SyncPoint:
    """One open simulator-internal synchronization point."""

    __slots__ = ("key", "comm", "arrived", "values", "cost_fn", "completing")

    def __init__(self, key: tuple, comm: Communicator, cost_fn: Callable[[int], float]):
        self.key = key
        self.comm = comm
        #: world rank -> arrival virtual time
        self.arrived: dict[int, float] = {}
        #: world rank -> contributed value
        self.values: dict[int, Any] = {}
        self.cost_fn = cost_fn
        self.completing = False


class SyncResult:
    """Outcome of a synchronization point, delivered to every participant."""

    __slots__ = ("alive", "values", "time")

    def __init__(self, alive: tuple[int, ...], values: dict[int, Any], time: float):
        #: World ranks alive at completion, in ascending order.
        self.alive = alive
        #: Contributed values of the alive participants.
        self.values = values
        #: Virtual completion time.
        self.time = time


class MpiWorld:
    """Global state and mechanics of one simulated MPI job."""

    def __init__(
        self,
        engine: Engine,
        network: NetworkModel,
        processor: ProcessorModel | None = None,
        filesystem: FileSystemModel | None = None,
        memory: MemoryTracker | None = None,
        strict_finalize: bool = True,
        collective_algorithm: str = "linear",
        record_trace: bool = False,
    ):
        if collective_algorithm not in ("linear", "tree", "analytic"):
            raise ConfigurationError(
                f"collective_algorithm must be linear/tree/analytic, got {collective_algorithm!r}"
            )
        #: Algorithm family used by the collectives (paper: "MPI collectives
        #: utilize linear algorithms").
        self.collective_algorithm = collective_algorithm
        self.engine = engine
        self.network = network
        self.processor = processor if processor is not None else ProcessorModel()
        self.filesystem = filesystem if filesystem is not None else FileSystemModel.disabled()
        self.memory = memory if memory is not None else MemoryTracker()
        #: When True (the xSim semantic), a VP returning from its main
        #: function without having called ``MPI_Finalize`` counts as an
        #: injected process failure.
        self.strict_finalize = strict_finalize
        self.states: list[RankState] = []
        self.world_comm: Communicator | None = None
        self._ctx_counter = 0
        self._msg_seq = 0
        self._post_seq = 0
        self._launched = False
        self._sync_points: dict[tuple, SyncPoint] = {}
        #: Shared communicators produced by simulator-internal operations
        #: (e.g. shrink): first participant creates, the rest reuse.
        self.comm_cache: dict[tuple, Communicator] = {}
        # traffic statistics
        self.messages_sent = 0
        self.bytes_sent = 0
        # matching-scan statistics (wildcard-path scans only; the indexed
        # exact-match fast paths never scan).  Read by repro.util.profiling.
        self.match_scan_calls = 0
        self.match_scan_length = 0
        #: Optional :class:`repro.check.sanitizer.Sanitizer` consulted at
        #: the MPI-layer boundaries (post/match/buffer/failure/sync); off
        #: by default at the cost of one attribute test per boundary.
        self.check = None
        #: Degraded-performance fault windows (stragglers, link degrade);
        #: consulted on the compute and message-cost paths.  Empty by
        #: default at the cost of one attribute test per site.  Failure
        #: *notification* propagation (:meth:`_failure_visible`, ``revoke``)
        #: deliberately stays undegraded: notifications model an
        #: out-of-band resilience channel, and keeping them a pure function
        #: of the undegraded wire latency preserves serial/sharded parity.
        # Imported here, not at module top: ``repro.core.faults`` sits
        # under ``repro.core``, whose package init imports the simulator
        # and hence this module — a top-level import would make
        # ``import repro.mpi`` order-dependent.
        from repro.core.faults.overlay import FaultOverlay

        self.faults = FaultOverlay()
        #: Optional full communication trace (DUMPI-style; see
        #: :mod:`repro.mpi.trace`).
        self.trace = None
        if record_trace:
            from repro.mpi.trace import CommTrace

            self.trace = CommTrace()
        #: Optional :class:`repro.obs.Observer` collecting collective
        #: spans, blocking-wait spans (``detail``), and resilience
        #: instants (detect/notify/revoke).  Off by default at the cost
        #: of one attribute test per emission site.
        self.obs = None
        # Shared Advance instances for the fixed per-message software
        # overheads.  The engine only reads ``dt``/``busy`` from a yielded
        # Advance and the overheads are fixed after construction, so one
        # instance per world avoids an allocation on every send/receive.
        self.send_overhead_advance = Advance(network.send_overhead)
        self.recv_overhead_advance = Advance(network.recv_overhead)

    # ------------------------------------------------------------------
    # job launch
    # ------------------------------------------------------------------
    def alloc_context(self) -> int:
        """Allocate a fresh communicator context id."""
        self._ctx_counter += 1
        return self._ctx_counter

    def launch(self, app, nranks: int, args: tuple = ()) -> "list[MpiApi]":
        """Create ``nranks`` virtual processes running ``app(mpi, *args)``.

        ``app`` is a generator function taking the per-rank
        :class:`~repro.mpi.api.MpiApi` facade as its first argument.
        Call :meth:`Engine.run` afterwards to execute the job.
        """
        from repro.mpi.api import MpiApi  # local import: api builds on world

        if self._launched:
            raise SimulationError("MpiWorld.launch() may only be called once")
        if nranks < 1:
            raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
        if nranks > self.network.max_ranks():
            raise ConfigurationError(
                f"{nranks} ranks exceed the simulated machine's capacity of "
                f"{self.network.max_ranks()} ({self.network.topology.nnodes} nodes x "
                f"{self.network.ranks_per_node} ranks/node)"
            )
        self._launched = True
        if self.trace is not None and len(self.trace) == 0:
            # The trace provably sees every message, so delivery of an
            # unknown seq is a sequencing bug, not a mid-run attach.
            self.trace.from_start = True
        self.world_comm = Communicator(Group(range(nranks)), self.alloc_context(), "MPI_COMM_WORLD")
        apis: list[MpiApi] = []
        for rank in range(nranks):
            api = MpiApi(self, rank)
            # The app generator is spawned directly (no wrapper frame): every
            # yield traverses the whole `yield from` chain, so one less frame
            # is paid on every single event of every VP.
            vp = self.engine.spawn(app(api, *args))
            if vp.rank != rank:
                raise SimulationError("engine assigned unexpected rank")
            api.vp = vp
            state = RankState(rank, vp)
            vp.userdata = state
            self.states.append(state)
            apis.append(api)
        self.engine.exit_policy = self._exit_policy
        self.engine.failure_listeners.append(self._on_failure)
        return apis

    def _exit_policy(self, vp: VirtualProcess) -> str:
        """Paper §IV-B: "returning from main() or calling exit() without
        having called MPI_Finalize()" is a process failure."""
        if self.strict_finalize and not self.states[vp.rank].finalized:
            return "failure"
        return "done"

    # ------------------------------------------------------------------
    # point-to-point: posting
    # ------------------------------------------------------------------
    def isend(
        self,
        vp: VirtualProcess,
        comm: Communicator,
        ctx: int,
        dst: int,
        tag: int,
        payload: Any,
        nbytes: int,
    ) -> Generator[Any, Any, Request]:
        """Post a send (world-rank ``dst``); returns the pending request.

        Pays the per-message send software overhead, then posts via
        :meth:`post_send`.
        """
        if self.network.send_overhead > 0.0:
            yield self.send_overhead_advance
        return self.post_send(vp, comm, ctx, dst, tag, payload, nbytes)

    def post_send(
        self,
        vp: VirtualProcess,
        comm: Communicator,
        ctx: int,
        dst: int,
        tag: int,
        payload: Any,
        nbytes: int,
    ) -> Request:
        """Post a send whose software overhead has already been paid (plain
        call, no generator frame — the point-to-point hot path).

        Either buffers an eager message (request completes locally) or
        emits a rendezvous RTS (request completes when the clear-to-send
        round-trip and payload serialization finish).
        """
        clock = vp.clock
        req = Request(Request.SEND, vp, comm, ctx, vp.rank, dst, tag, nbytes, clock)
        if comm.revoked:
            req.fail(clock, ERR_REVOKED)
            return req
        failed_at = vp.failed_peers.get(dst)
        if failed_at is not None and self._failure_visible(vp, dst, failed_at):
            self._fail_from_list(req, dst)
            return req
        network = self.network
        self._msg_seq += 1
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.trace is not None:
            self.trace.record_post(
                self._msg_seq, clock, vp.rank, dst, ctx, tag, nbytes,
                "eager" if network.is_eager(nbytes) else "rendezvous",
            )
        if isinstance(payload, np.ndarray):
            payload = payload.copy()  # eager/rendezvous buffering semantics
        engine = self.engine
        link_f = (
            self.faults.link_factor(vp.rank, dst, clock)
            if self.faults.active_links
            else 1.0
        )
        if nbytes <= network.eager_threshold:
            msg = Msg(ctx, vp.rank, dst, tag, nbytes, payload, self._msg_seq, EAGER)
            arrival = clock + link_f * network.transfer_time(nbytes, vp.rank, dst)
            req.complete(clock)
        else:
            msg = Msg(ctx, vp.rank, dst, tag, nbytes, payload, self._msg_seq, RTS, send_req=req)
            arrival = clock + link_f * network.wire_latency(vp.rank, dst)
            if failed_at is not None:
                # Posted before the failure notification became visible
                # (see :meth:`_failure_visible`): the request behaves as if
                # pre-posted — it pays the modeled detection timeout
                # instead of failing at the post.
                self._release_failed(req, dst, failed_at)
            else:
                self.states[vp.rank].rdv_sends.append(req)
        # Per-message hot path: engine.schedule minus the varargs tuple.
        if arrival < engine.now:
            raise SimulationError(f"cannot schedule into the past ({arrival} < {engine.now})")
        engine.post_event(arrival, self._arrive, msg)
        return req

    def irecv(
        self, vp: VirtualProcess, comm: Communicator, ctx: int, src: int, tag: int
    ) -> Request:
        """Post a receive (world-rank or ``ANY_SOURCE`` ``src``); local call."""
        state = self.states[vp.rank]
        req = Request(Request.RECV, vp, comm, ctx, src, vp.rank, tag, 0, vp.clock)
        self._post_seq += 1
        req.post_seq = self._post_seq
        if comm.revoked:
            req.fail(vp.clock, ERR_REVOKED)
            return req
        msg = self._match_unexpected(state, req)
        if msg is not None:
            if self.check is not None:
                self.check.on_match_unexpected(state, req, msg)
            if msg.protocol == EAGER:
                self._complete_recv(req, msg, vp.clock)
            else:
                self._rendezvous(req, msg, vp.clock)
            return req
        # No buffered match: fail from the per-process failed list
        # ("any similar receive requests waited on after receiving the
        # simulator-internal notification message fail based on the
        # per-process list of failed simulated MPI processes").  A peer
        # whose failure notification is still in flight (see
        # :meth:`_failure_visible`) is *not* on the visible list yet; such
        # a receive is posted normally and then released with the modeled
        # detection timeout, exactly as if it had been pre-posted.
        in_flight: int | None = None
        if vp.failed_peers:
            if src == ANY_SOURCE:
                failed_members = {
                    r for r, t in vp.failed_peers.items()
                    if comm.contains(r) and self._failure_visible(vp, r, t)
                } - comm.acked_failures(vp.rank)
                if failed_members:
                    self._fail_from_list(req, min(failed_members))
                    return req
                pending_members = [
                    r for r, t in vp.failed_peers.items()
                    if comm.contains(r) and not self._failure_visible(vp, r, t)
                ]
                if pending_members:
                    in_flight = min(pending_members)
            elif src in vp.failed_peers:
                if self._failure_visible(vp, src, vp.failed_peers[src]):
                    self._fail_from_list(req, src)
                    return req
                in_flight = src
        if src != ANY_SOURCE and tag != ANY_TAG:
            key = (ctx, src, tag)
            posted = state.posted_exact.get(key)
            if posted is None:
                state.posted_exact[key] = [req]
            else:
                posted.append(req)
        else:
            state.posted_wild.append(req)
        if self.check is not None:
            self.check.on_post(state, req)
        if in_flight is not None:
            state.remove_posted(req)
            self._release_failed(req, in_flight, vp.failed_peers[in_flight])
        return req

    def _failure_visible(self, vp: VirtualProcess, peer: int, failed_at: float) -> bool:
        """Whether ``vp`` has received the simulator-internal notification
        of ``peer``'s failure at ``failed_at``.

        The notification propagates like any other simulator-internal
        message — one wire latency from the failed rank (the same modeled
        delay :meth:`revoke` uses).  Making visibility a pure function of
        *time* (rather than of the engine's dispatch order among
        same-instant events) is what lets the sharded engine reproduce the
        serial engine's behavior exactly: whether the death or a
        same-instant post is dispatched first is a heap artifact, but both
        engines agree on the clocks.
        """
        return vp.clock >= failed_at + self.network.wire_latency(peer, vp.rank)

    def _fail_from_list(self, req: Request, failed_rank: int) -> None:
        """Fail a freshly posted request against a peer already known (from
        the per-process failed list) to be dead.

        The simulator-internal failure notification has been delivered to
        this rank before the post (:meth:`_failure_visible`), so no
        detection timeout is paid again: the request fails immediately at
        its post time (paper §IV-B — requests posted after the
        notification "fail based on the per-process list of failed
        simulated MPI processes").  Requests *pre-posted* when the failure
        occurred — or posted while the notification was still in flight —
        instead pay the modeled timeout in :meth:`_release_failed`.
        """
        detect = req.post_time
        req.fail(detect, ERR_PROC_FAILED, failed_rank=failed_rank)
        self.engine.log.log(
            detect,
            "detect",
            f"detected failure of rank {failed_rank} ({req.describe()})",
            rank=req.vp.rank,
        )
        if self.obs is not None:
            failed_at = req.vp.failed_peers.get(failed_rank, detect)
            self.obs.instant(
                detect, "detect", rank=req.vp.rank, track="resilience",
                args={"failed_rank": failed_rank, "latency": detect - failed_at},
            )

    def _match_unexpected(self, state: RankState, req: Request) -> Msg | None:
        """Pop the lowest-seq buffered message matching a fresh receive."""
        unexpected = state.unexpected
        if req.src != ANY_SOURCE and req.tag != ANY_TAG:
            key = (req.ctx, req.src, req.tag)
            msgs = unexpected.get(key)
            if not msgs:
                return None
            msg = msgs.pop(0)  # per-key lists are kept sorted by seq
            if not msgs:
                del unexpected[key]
            return msg
        # Wildcard: scan per-key heads for the lowest sequence number.
        self.match_scan_calls += 1
        self.match_scan_length += len(unexpected)
        best_key: MatchKey | None = None
        best: Msg | None = None
        for key, msgs in unexpected.items():
            head = msgs[0]
            if req.matches_msg(head) and (best is None or head.seq < best.seq):
                best, best_key = head, key
        if best is None:
            return None
        msgs = unexpected[best_key]
        msgs.pop(0)
        if not msgs:
            del unexpected[best_key]
        return best

    # ------------------------------------------------------------------
    # point-to-point: completion
    # ------------------------------------------------------------------
    def wait(self, vp: VirtualProcess, req: Request) -> Generator[Any, Any, Msg | None]:
        """Block until ``req`` completes; deliver its error (if any) through
        the communicator's error handler; return the received message."""
        t0 = None
        if not req.done:
            obs = self.obs
            if obs is not None and obs.detail:
                t0 = vp.clock
            req.waiting = True
            yield Block(req)  # stringified lazily, only for reports
            req.waiting = False
        # Inline of _finalize_request — this is the hot path of every
        # point-to-point completion, so it avoids a nested generator frame.
        if req.completion_time > vp.clock:
            # waiting for completion (in-flight data, detection timeout)
            yield Advance(req.completion_time - vp.clock, busy=False)
        if t0 is not None:
            self.obs.span(t0, vp.clock, "wait", rank=vp.rank)
        if self.check is not None:
            self.check.on_wait_complete(vp, req)
        if req.error == SUCCESS:
            if req.kind == Request.RECV and self.network.recv_overhead > 0.0:
                yield self.recv_overhead_advance
            return req.result
        yield from self.handle_error(
            vp, req.comm, MpiError(req.error, req.describe(), req.failed_rank)
        )
        return req.result

    def test(
        self, vp: VirtualProcess, req: Request
    ) -> Generator[Any, Any, tuple[bool, Msg | None]]:
        """Nonblocking completion check; finalizes the request when done."""
        if not req.done or req.completion_time > vp.clock:
            return False, None
        msg = yield from self._finalize_request(vp, req)
        return True, msg

    def _finalize_request(
        self, vp: VirtualProcess, req: Request
    ) -> Generator[Any, Any, Msg | None]:
        if req.completion_time > vp.clock:
            # waiting for completion (in-flight data, detection timeout)
            yield Advance(req.completion_time - vp.clock, busy=False)
        if self.check is not None:
            self.check.on_wait_complete(vp, req)
        if req.error == SUCCESS and req.kind == Request.RECV and self.network.recv_overhead > 0.0:
            yield Advance(self.network.recv_overhead)
        if req.error != SUCCESS:
            yield from self.handle_error(
                vp, req.comm, MpiError(req.error, req.describe(), req.failed_rank)
            )
        return req.result

    def _complete_recv(self, req: Request, msg: Msg, time: float) -> None:
        req.complete(time, result=msg)
        if req.waiting:
            self.engine.wake(req.vp, time)

    def _rendezvous(self, req: Request, rts: Msg, t_match: float) -> None:
        """Complete the RTS/CTS/payload hand-shake matched at ``t_match``.

        The clear-to-send travels back to the sender; the sender then
        serializes the payload onto the wire (completing its request) and
        the receiver gets it one wire-latency later.
        """
        send_req = rts.send_req
        if send_req is None:
            raise SimulationError("rendezvous RTS without a send request")
        src, dst = rts.src, rts.dst
        # Link degradation scales the whole hand-shake, evaluated once at
        # the match instant so serial and sharded engines agree exactly.
        link_f = (
            self.faults.link_factor(src, dst, t_match)
            if self.faults.active_links
            else 1.0
        )
        t_cts = t_match + link_f * self.network.wire_latency(dst, src)
        t_send_done = t_cts + link_f * self.network.serialization_time(rts.nbytes, src, dst)
        t_recv_done = t_cts + link_f * self.network.transfer_time(rts.nbytes, src, dst)
        sender_state = self.states[src]
        if send_req in sender_state.rdv_sends:
            sender_state.rdv_sends.remove(send_req)
        send_req.complete(t_send_done)
        if send_req.waiting:
            self.engine.wake(send_req.vp, t_send_done)
        req.complete(t_recv_done, result=rts)
        if req.waiting:
            self.engine.wake(req.vp, t_recv_done)

    def _arrive(self, msg: Msg) -> None:
        """Delivery event: the message reached the destination NIC."""
        state = self.states[msg.dst]
        if state.vp.state not in LIVE_STATES:
            # "all messages directed to this simulated MPI process are deleted"
            if self.trace is not None:
                self.trace.record_delivery(msg.seq, self.engine.now, dropped=True)
            return
        if msg.protocol == RTS and not self.states[msg.src].vp.alive:
            if self.trace is not None:
                self.trace.record_delivery(msg.seq, self.engine.now, dropped=True)
            return  # sender died in flight; the hand-shake can never complete
        if self.trace is not None:
            self.trace.record_delivery(msg.seq, self.engine.now, dropped=False)
        msg.arrival = self.engine.now
        req = self._match_posted(state, msg)
        if req is not None:
            if self.check is not None:
                self.check.on_match_posted(state, msg, req)
            if msg.protocol == EAGER:
                self._complete_recv(req, msg, msg.arrival)
            else:
                self._rendezvous(req, msg, msg.arrival)
            return
        # Buffer, keeping each per-key list sorted by send sequence so
        # matching preserves non-overtaking order even when a larger,
        # earlier message arrives after a smaller, later one.
        msgs = state.unexpected.setdefault((msg.ctx, msg.src, msg.tag), [])
        if msgs and msgs[-1].seq > msg.seq:
            i = len(msgs) - 1
            while i > 0 and msgs[i - 1].seq > msg.seq:
                i -= 1
            msgs.insert(i, msg)
        else:
            msgs.append(msg)
        if self.check is not None:
            self.check.on_buffer(state, msg)

    def _match_posted(self, state: RankState, msg: Msg) -> Request | None:
        """Pop the earliest-posted receive accepting ``msg``."""
        key = (msg.ctx, msg.src, msg.tag)
        exact = state.posted_exact.get(key)
        if not state.posted_wild:
            # Fast path (no wildcard receives posted): the indexed exact
            # match is the only candidate.
            if not exact:
                return None
            req = exact.pop(0)
            if not exact:
                del state.posted_exact[key]
            return req
        self.match_scan_calls += 1
        self.match_scan_length += len(state.posted_wild)
        candidate: Request | None = exact[0] if exact else None
        wild_i = -1
        for i, req in enumerate(state.posted_wild):
            if req.matches_msg(msg):
                if candidate is None or req.post_time < candidate.post_time or (
                    req.post_time == candidate.post_time and req.post_seq < candidate.post_seq
                ):
                    candidate = req
                    wild_i = i
                break
        if candidate is None:
            return None
        if wild_i >= 0 and candidate is state.posted_wild[wild_i]:
            del state.posted_wild[wild_i]
        else:
            exact.pop(0)
            if not exact:
                del state.posted_exact[key]
        return candidate

    # ------------------------------------------------------------------
    # failure propagation (paper §IV-B/C)
    # ------------------------------------------------------------------
    def _obs_owns(self, rank: int) -> bool:
        """Whether this world emits observer events on behalf of ``rank``.

        Broadcast handlers (like :meth:`_on_failure`) run in *every* shard
        of a sharded run; the sharded world overrides this so each rank's
        events are emitted exactly once, by its owning shard.
        """
        return True

    def _on_failure(self, fvp: VirtualProcess, t_fail: float) -> None:
        f = fvp.rank
        fstate = self.states[f]
        # Delete messages directed to (and state of) the failed process.
        fstate.posted_exact.clear()
        fstate.posted_wild.clear()
        fstate.unexpected.clear()
        fstate.rdv_sends.clear()
        self.memory.free_all(f)
        # Simulator-internal notification broadcast: every VP maintains its
        # own list of failed processes and their failure times.
        obs = self.obs
        for state in self.states:
            if state.vp.alive:
                state.vp.failed_peers[f] = t_fail
                if obs is not None and self._obs_owns(state.rank):
                    # Visible one wire latency after the failure, matching
                    # _failure_visible; owner-filtered so sharded runs
                    # emit each rank's notification exactly once.
                    obs.instant(
                        t_fail + self.network.wire_latency(f, state.rank),
                        "notify", rank=state.rank, track="resilience",
                        args={"failed_rank": f},
                    )
        # Release (and fail) requests involving the failed process.
        for state in self.states:
            if not state.vp.alive:
                continue
            # Unmatched RTS messages from the dead sender can never complete.
            dead_keys = [
                key
                for key, msgs in state.unexpected.items()
                if key[1] == f and any(m.protocol == RTS for m in msgs)
            ]
            for key in dead_keys:
                kept = [m for m in state.unexpected[key] if m.protocol != RTS]
                if kept:
                    state.unexpected[key] = kept
                else:
                    del state.unexpected[key]
            released: list[Request] = []
            if state.posted_exact:
                dead_exact = [key for key in state.posted_exact if key[1] == f]
                for key in dead_exact:
                    released.extend(state.posted_exact.pop(key))
            if state.posted_wild:
                # Single pass, preserving the release order (ANY_SOURCE
                # receives on communicators containing f first, then
                # specific-source receives from f) — the order determines
                # engine event sequence numbers and hence tie-breaking.
                kept: list[Request] = []
                rel_any: list[Request] = []
                rel_src: list[Request] = []
                for req in state.posted_wild:
                    if req.src == ANY_SOURCE and req.comm.contains(f):
                        rel_any.append(req)
                    elif req.src == f:
                        rel_src.append(req)
                    else:
                        kept.append(req)
                if rel_any or rel_src:
                    state.posted_wild[:] = kept
                    released.extend(rel_any)
                    released.extend(rel_src)
            for req in released:
                self._release_failed(req, f, t_fail)
            if state.rdv_sends:
                kept_sends: list[Request] = []
                for req in state.rdv_sends:
                    if req.dst == f:
                        self._release_failed(req, f, t_fail)
                    else:
                        kept_sends.append(req)
                state.rdv_sends[:] = kept_sends
        # Re-check open synchronization points that were waiting on it.
        for key in list(self._sync_points):
            sp = self._sync_points.get(key)
            if sp is not None and sp.comm.contains(f):
                self._check_sync(sp)
        if self.check is not None:
            self.check.on_failure(f, t_fail)

    def _release_failed(self, req: Request, failed_rank: int, t_fail: float) -> None:
        """Release-and-fail a request after the failure-detection timeout.

        "The simulated network communication time of the waiting simulated
        MPI process is adjusted for the time of failure, simulating a
        configurable network communication timeout according to the network
        model."
        """
        timeout = self.network.detection_timeout(req.vp.rank, failed_rank)
        detect = max(t_fail, req.post_time) + timeout
        req.fail(detect, ERR_PROC_FAILED, failed_rank=failed_rank)
        self.engine.log.log(
            detect,
            "detect",
            f"detected failure of rank {failed_rank} ({req.describe()})",
            rank=req.vp.rank,
        )
        if self.obs is not None:
            self.obs.instant(
                detect, "detect", rank=req.vp.rank, track="resilience",
                args={"failed_rank": failed_rank, "latency": detect - t_fail},
            )
        if req.waiting:
            self.engine.wake(req.vp, detect)

    # ------------------------------------------------------------------
    # revocation (ULFM)
    # ------------------------------------------------------------------
    def revoke(self, comm: Communicator, t: float, initiator: int) -> None:
        """Mark ``comm`` revoked and interrupt its pending operations.

        Members learn of the revocation one wire latency after ``t``
        (xSim-style simulator-internal propagation with a modeled delay).
        """
        if comm.revoked:
            return
        comm.revoked = True
        self.engine.log.log(t, "revoke", f"{comm.name} revoked", rank=initiator)
        if self.obs is not None:
            self.obs.instant(
                t, "revoke", rank=initiator, track="resilience",
                args={"comm": comm.name},
            )
        ctxs = (comm.context_id * 2, comm.context_id * 2 + 1)
        for state in self.states:
            if not state.vp.alive or not comm.contains(state.rank):
                continue
            notify = (
                t
                if state.rank == initiator
                else t + self.network.wire_latency(initiator, state.rank)
            )
            for req in [r for r in state.iter_posted() if r.ctx in ctxs]:
                state.remove_posted(req)
                req.fail(max(notify, req.post_time), ERR_REVOKED)
                if req.waiting:
                    self.engine.wake(req.vp, req.completion_time)
            for req in [r for r in state.rdv_sends if r.ctx in ctxs]:
                state.rdv_sends.remove(req)
                req.fail(max(notify, req.post_time), ERR_REVOKED)
                if req.waiting:
                    self.engine.wake(req.vp, req.completion_time)

    # ------------------------------------------------------------------
    # error delivery (paper §IV-D)
    # ------------------------------------------------------------------
    def handle_error(
        self, vp: VirtualProcess, comm: Communicator, err: MpiError
    ) -> Generator[Any, Any, None]:
        """Run the communicator's error handler for ``err`` at ``vp``.

        Under ``MPI_ERRORS_ARE_FATAL`` this invokes the simulated
        ``MPI_Abort`` and never returns (the VP is terminated at its
        current clock).  Otherwise :class:`MpiError` is raised into the
        application.
        """
        handler = comm.get_errhandler(vp.rank)
        if handler is ERRORS_ARE_FATAL:
            self.engine.request_abort(vp.clock, vp.rank)
            yield Block("aborting")
            raise SimulationError("aborted VP resumed")  # pragma: no cover
        if handler is ERRORS_RETURN:
            raise err
        handler(comm, err)  # user handler; returning falls through to raise
        raise err

    # ------------------------------------------------------------------
    # simulator-internal synchronization points
    # ------------------------------------------------------------------
    def sync_arrive(
        self,
        vp: VirtualProcess,
        comm: Communicator,
        kind: str,
        seq: int,
        value: Any = None,
        cost_fn: Callable[[int], float] | None = None,
    ) -> Generator[Any, Any, SyncResult]:
        """Join synchronization point ``(comm, kind, seq)`` and block until
        every *currently alive* member of ``comm`` has joined.

        Members that fail while the point is open are dropped from the
        expectation, so the point still completes — the property ULFM
        shrink/agree need.  All participants are woken at
        ``max(arrival times) + cost_fn(n_alive)`` with the same
        :class:`SyncResult`.
        """
        key = (comm.context_id, kind, seq)
        sp = self._sync_points.get(key)
        if sp is None:
            sp = SyncPoint(key, comm, cost_fn or self.default_sync_cost)
            self._sync_points[key] = sp
        sp.arrived[vp.rank] = vp.clock
        sp.values[vp.rank] = value
        if not sp.completing:
            # Defer: the arriving VP must yield Block before any wake.
            sp.completing = True
            self.engine.schedule(vp.clock, self._check_sync_deferred, key)
        result = yield Block(f"sync {kind}#{seq} on {comm.name}")
        if not isinstance(result, SyncResult):
            raise SimulationError(f"sync point delivered {result!r}")
        return result

    def _check_sync_deferred(self, key: tuple) -> None:
        sp = self._sync_points.get(key)
        if sp is not None:
            sp.completing = False
            self._check_sync(sp)

    def _check_sync(self, sp: SyncPoint) -> None:
        alive = [r for r in sp.comm.group if self.states[r].vp.alive]
        if not alive:
            del self._sync_points[sp.key]
            return
        if any(r not in sp.arrived for r in alive):
            return  # still waiting for members
        # Completion waits for the last arrival — or, when a failure is what
        # unblocked the point, for the failure to become known (now).
        t_done = max(max(sp.arrived[r] for r in alive), self.engine.now) + sp.cost_fn(len(alive))
        result = SyncResult(
            alive=tuple(alive),
            values={r: sp.values[r] for r in alive},
            time=t_done,
        )
        if self.check is not None:
            self.check.on_sync_complete(sp, result)
        del self._sync_points[sp.key]
        for r in alive:
            self.engine.wake(self.states[r].vp, t_done, value=result)

    def default_sync_cost(self, n: int) -> float:
        """Modeled cost of a simulator-internal agreement among ``n`` ranks:
        a binomial-tree reduce-broadcast over the system network."""
        rounds = 2 * max(1, math.ceil(math.log2(max(2, n))))
        per_round = self.network.system.latency + self.network.send_overhead + self.network.recv_overhead
        return rounds * per_round

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def alive_ranks(self) -> list[int]:
        """Ranks whose virtual process is still alive."""
        return [s.rank for s in self.states if s.vp.alive]

    def pending_requests(self, rank: int) -> list[Request]:
        """This rank's posted receives and pending rendezvous sends."""
        state = self.states[rank]
        return state.iter_posted() + list(state.rdv_sends)

    def traffic_summary(self) -> dict[str, int]:
        """Cumulative message/byte counters."""
        return {"messages_sent": self.messages_sent, "bytes_sent": self.bytes_sent}
