"""Unified observability layer (the run-telemetry analogue of DUMPI/OTF).

The simulator's telemetry used to live in four disconnected fragments —
:class:`~repro.util.simlog.SimLog`, the profiler phase marks,
:class:`~repro.mpi.trace.CommTrace`, and the harness metrics — with no
shared timeline or export format.  This package ties them together:

* :class:`Observer` — a low-overhead event bus (no-op when detached, like
  ``Engine.mark_phase``) collecting :class:`ObsEvent` spans and instants
  from the PDES engine, the MPI layer, the resilience path, the sharded
  coordinator, and the campaign executor.
* :mod:`repro.obs.export` — deterministic Chrome trace-event JSON
  (Perfetto-loadable), JSONL, and CSV exporters plus a loader.
* :class:`TimelineReport` — per-rank resilience latency distributions and
  a join of Observer/CommTrace/SimLog records onto one clock.

Attach via ``XSim(observe=...)`` or ``xsim-run app --trace-out``; the
sim-domain event set of a sharded run is byte-identical to the serial
run's export (enforced by the ``obs-parity`` simcheck).
"""

from repro.obs.events import HOST, SIM, ObsEvent, Observer
from repro.obs.export import load_events, to_chrome, to_csv, to_jsonl, write_export
from repro.obs.timeline import LatencyStats, TimelineReport

__all__ = [
    "HOST",
    "SIM",
    "LatencyStats",
    "ObsEvent",
    "Observer",
    "TimelineReport",
    "load_events",
    "to_chrome",
    "to_csv",
    "to_jsonl",
    "write_export",
]
