"""Observability event model and bus.

The :class:`Observer` follows the detached-instrumentation pattern used
everywhere else in the simulator (``engine.check``, ``engine.event_trace``,
``world.trace``, ``engine.mark_phase``): producers hold an ``obs``
attribute that defaults to ``None`` and pay exactly one attribute test per
potential event when detached.  When attached, events are appended to a
plain list — no locking, no I/O, no formatting until export time.

Events live in one of two *domains*:

``sim``
    Stamped in **virtual time**.  These are fully deterministic: a serial
    run and a sharded run of the same configuration produce the same
    multiset of sim events, which the exporters turn into byte-identical
    output (see :mod:`repro.obs.export`).
``host``
    Stamped in **wall-clock time** (``perf_counter``): shard round walls,
    campaign task lifecycle, engine run walls.  Useful for performance
    work, inherently nondeterministic, and therefore excluded from the
    default export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

#: Domain constants (see module docstring).
SIM = "sim"
HOST = "host"

#: Event kinds: a ``span`` has a duration, an ``instant`` is a point.
SPAN = "span"
INSTANT = "instant"


def _canon_args(args: Mapping[str, object] | Iterable[tuple[str, object]] | None) -> tuple:
    """Canonicalize event args to a sorted, hashable tuple of pairs."""
    if not args:
        return ()
    items = args.items() if isinstance(args, Mapping) else args
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True, slots=True)
class ObsEvent:
    """One observed span or instant.

    Frozen and slotted so events are cheap, hashable, and safe to ship
    across process boundaries from shard workers.
    """

    domain: str
    """``"sim"`` (virtual time) or ``"host"`` (wall clock)."""
    kind: str
    """``"span"`` or ``"instant"``."""
    track: str
    """Display lane: ``"rank 3"``, ``"resilience"``, ``"simulator"``, ...."""
    name: str
    start: float
    duration: float = 0.0
    """Zero for instants."""
    rank: int | None = None
    args: tuple = ()
    """Sorted ``(key, value)`` pairs of JSON-scalar extras."""

    @property
    def end(self) -> float:
        return self.start + self.duration

    def sort_key(self) -> tuple:
        """Total order over full event content.

        Sorting by this key makes export order a pure function of the
        event *multiset*, so any producer interleaving (serial dispatch
        vs shard merge order) yields identical output.
        """
        return (
            self.start,
            self.duration,
            -1 if self.rank is None else self.rank,
            self.track,
            self.name,
            self.kind,
            self.args,
        )


class Observer:
    """Event bus collecting :class:`ObsEvent` records.

    Parameters
    ----------
    detail:
        Enables high-volume instrumentation (per-request blocking-wait
        spans).  Off by default: a default heat3d run generates hundreds
        of thousands of waits, versus tens of thousands of collective
        spans and a handful of resilience instants.
    """

    def __init__(self, detail: bool = False) -> None:
        self.detail = detail
        self.events: list[ObsEvent] = []

    # -- recording -------------------------------------------------------
    def instant(
        self,
        time: float,
        name: str,
        rank: int | None = None,
        track: str | None = None,
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Record a sim-domain point event at virtual ``time``."""
        self.events.append(
            ObsEvent(
                domain=SIM,
                kind=INSTANT,
                track=track if track is not None else _default_track(rank),
                name=name,
                start=time,
                rank=rank,
                args=_canon_args(args),
            )
        )

    def span(
        self,
        start: float,
        end: float,
        name: str,
        rank: int | None = None,
        track: str | None = None,
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Record a sim-domain span over virtual ``[start, end]``."""
        self.events.append(
            ObsEvent(
                domain=SIM,
                kind=SPAN,
                track=track if track is not None else _default_track(rank),
                name=name,
                start=start,
                duration=end - start,
                rank=rank,
                args=_canon_args(args),
            )
        )

    def host_instant(
        self,
        time: float,
        name: str,
        track: str = "host",
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Record a host-domain (wall clock) point event."""
        self.events.append(
            ObsEvent(
                domain=HOST,
                kind=INSTANT,
                track=track,
                name=name,
                start=time,
                args=_canon_args(args),
            )
        )

    def host_span(
        self,
        start: float,
        end: float,
        name: str,
        track: str = "host",
        args: Mapping[str, object] | None = None,
    ) -> None:
        """Record a host-domain (wall clock) span."""
        self.events.append(
            ObsEvent(
                domain=HOST,
                kind=SPAN,
                track=track,
                name=name,
                start=start,
                duration=end - start,
                args=_canon_args(args),
            )
        )

    # -- queries ---------------------------------------------------------
    def extend(self, events: Iterable[ObsEvent]) -> None:
        """Merge events collected elsewhere (e.g. by a shard worker)."""
        self.events.extend(events)

    def sim_events(self) -> list[ObsEvent]:
        return [e for e in self.events if e.domain == SIM]

    def host_events(self) -> list[ObsEvent]:
        return [e for e in self.events if e.domain == HOST]


def _default_track(rank: int | None) -> str:
    return "simulator" if rank is None else f"rank {rank}"
