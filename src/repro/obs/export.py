"""Deterministic exporters for observer events.

Three formats, all derived from the same canonical ordering:

* **Chrome trace-event JSON** (``.json``) — loadable in Perfetto or
  ``chrome://tracing``.  Sim-domain events land in a "simulation
  (virtual time)" process with one thread track per rank plus
  ``resilience``/``simulator`` tracks; virtual seconds are mapped to
  trace microseconds.
* **JSONL** (``.jsonl``) — one canonical JSON object per event; the
  lossless interchange format (:func:`load_events` round-trips it
  exactly).
* **CSV** (``.csv``) — flat rows for spreadsheet/pandas consumption.

Determinism contract: output is a pure function of the event *multiset*.
Events are sorted by :meth:`ObsEvent.sort_key` (full content) before
serialization and dict keys are emitted sorted, so a sharded run — whose
workers collect events in shard-local order — exports byte-identically to
the serial run.  Host-domain (wall clock) events are inherently
nondeterministic and excluded unless ``include_host=True``.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.obs.events import HOST, INSTANT, SIM, SPAN, ObsEvent

#: Chrome trace process ids for the two event domains.
_PID = {SIM: 1, HOST: 2}
_PROCESS_NAME = {SIM: "simulation (virtual time)", HOST: "execution (wall clock)"}


def _track_order(track: str) -> tuple:
    """Display order for tracks: ranks numerically, then the rest."""
    if track.startswith("rank "):
        tail = track[5:]
        if tail.isdigit():
            return (0, int(tail), "")
    if track == "resilience":
        return (1, 0, "")
    if track == "simulator":
        return (2, 0, "")
    return (3, 0, track)


def _as_events(events: "Iterable[ObsEvent] | object") -> list[ObsEvent]:
    """Accept an Observer or any iterable of events."""
    inner = getattr(events, "events", events)
    return list(inner)


def canonical_events(
    events: Iterable[ObsEvent], include_host: bool = False
) -> list[ObsEvent]:
    """Filter to the exported domains and sort by full content."""
    kept = [
        e for e in _as_events(events) if include_host or e.domain == SIM
    ]
    kept.sort(key=ObsEvent.sort_key)
    return kept


# -- Chrome trace-event JSON ---------------------------------------------
def to_chrome(events: Iterable[ObsEvent], include_host: bool = False) -> str:
    """Render events as a Chrome trace-event JSON document."""
    ordered = canonical_events(events, include_host=include_host)

    # Stable tid assignment per (domain, track), in display order.
    tracks: dict[tuple[str, str], int] = {}
    for domain in (SIM, HOST):
        names = sorted(
            {e.track for e in ordered if e.domain == domain}, key=_track_order
        )
        for tid, name in enumerate(names, start=1):
            tracks[(domain, name)] = tid

    trace_events: list[dict] = []
    for domain in (SIM, HOST):
        pid = _PID[domain]
        if not any(d == domain for d, _ in tracks):
            continue
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": _PROCESS_NAME[domain]},
            }
        )
        for (d, track), tid in sorted(tracks.items(), key=lambda kv: kv[1]):
            if d != domain:
                continue
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
            trace_events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )

    for e in ordered:
        args = dict(e.args)
        if e.rank is not None:
            args["rank"] = e.rank
        record: dict = {
            "name": e.name,
            "cat": e.domain,
            "pid": _PID[e.domain],
            "tid": tracks[(e.domain, e.track)],
            "ts": e.start * 1e6,
        }
        if e.kind == SPAN:
            record["ph"] = "X"
            record["dur"] = e.duration * 1e6
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if args:
            record["args"] = args
        trace_events.append(record)

    doc = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


# -- JSONL ----------------------------------------------------------------
def _event_obj(e: ObsEvent) -> dict:
    return {
        "domain": e.domain,
        "kind": e.kind,
        "track": e.track,
        "name": e.name,
        "start": e.start,
        "duration": e.duration,
        "rank": e.rank,
        "args": dict(e.args),
    }


def to_jsonl(events: Iterable[ObsEvent], include_host: bool = False) -> str:
    """One canonical JSON object per line; lossless (see load_events)."""
    lines = [
        json.dumps(_event_obj(e), sort_keys=True, separators=(",", ":"))
        for e in canonical_events(events, include_host=include_host)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# -- CSV ------------------------------------------------------------------
CSV_HEADER = ("domain", "kind", "track", "name", "start", "duration", "rank", "args")


def to_csv(events: Iterable[ObsEvent], include_host: bool = False) -> str:
    """Flat CSV rows (args JSON-encoded in the last column)."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(CSV_HEADER)
    for e in canonical_events(events, include_host=include_host):
        writer.writerow(
            (
                e.domain,
                e.kind,
                e.track,
                e.name,
                repr(e.start),
                repr(e.duration),
                "" if e.rank is None else e.rank,
                json.dumps(dict(e.args), sort_keys=True, separators=(",", ":")),
            )
        )
    return out.getvalue()


# -- dispatch -------------------------------------------------------------
def write_export(
    events: "Iterable[ObsEvent] | object", path: str, include_host: bool = False
) -> int:
    """Write events to ``path``, format chosen by extension.

    ``.jsonl`` -> JSONL, ``.csv`` -> CSV, anything else (canonically
    ``.json``) -> Chrome trace-event JSON.  Returns the number of events
    exported.
    """
    resolved = _as_events(events)
    lowered = path.lower()
    if lowered.endswith(".jsonl"):
        text = to_jsonl(resolved, include_host=include_host)
    elif lowered.endswith(".csv"):
        text = to_csv(resolved, include_host=include_host)
    else:
        text = to_chrome(resolved, include_host=include_host)
    with open(path, "w") as fh:
        fh.write(text)
    return len(canonical_events(resolved, include_host=include_host))


# -- loading --------------------------------------------------------------
def load_events(path: str) -> list[ObsEvent]:
    """Load events back from an exported file (chrome JSON, JSONL, or CSV).

    JSONL and CSV round-trip exactly.  Chrome JSON stores timestamps in
    microseconds, so start/duration are recovered to within float
    rescaling error — fine for reports, not for byte-level comparison.
    """
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("domain,"):
        return _from_csv(text)
    try:
        doc = json.loads(stripped)
    except json.JSONDecodeError:
        doc = None  # multiple JSON lines -> JSONL
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _from_chrome(doc)
    return [_from_obj(json.loads(line)) for line in text.splitlines() if line.strip()]


def _from_obj(obj: dict) -> ObsEvent:
    return ObsEvent(
        domain=obj["domain"],
        kind=obj["kind"],
        track=obj["track"],
        name=obj["name"],
        start=obj["start"],
        duration=obj["duration"],
        rank=obj["rank"],
        args=tuple(sorted((str(k), v) for k, v in obj.get("args", {}).items())),
    )


def _from_csv(text: str) -> list[ObsEvent]:
    rows = list(csv.reader(io.StringIO(text)))
    out = []
    for row in rows[1:]:
        domain, kind, track, name, start, duration, rank, args = row
        out.append(
            ObsEvent(
                domain=domain,
                kind=kind,
                track=track,
                name=name,
                start=float(start),
                duration=float(duration),
                rank=None if rank == "" else int(rank),
                args=tuple(sorted((str(k), v) for k, v in json.loads(args).items())),
            )
        )
    return out


def _from_chrome(doc: dict) -> list[ObsEvent]:
    domains = {pid: domain for domain, pid in _PID.items()}
    track_names: dict[tuple[int, int], str] = {}
    for rec in doc.get("traceEvents", ()):
        if rec.get("ph") == "M" and rec.get("name") == "thread_name":
            track_names[(rec["pid"], rec["tid"])] = rec["args"]["name"]
    out = []
    for rec in doc.get("traceEvents", ()):
        ph = rec.get("ph")
        if ph not in ("X", "i"):
            continue
        args = dict(rec.get("args", {}))
        rank = args.pop("rank", None)
        out.append(
            ObsEvent(
                domain=domains.get(rec["pid"], rec.get("cat", SIM)),
                kind=SPAN if ph == "X" else INSTANT,
                track=track_names.get((rec["pid"], rec["tid"]), "unknown"),
                name=rec["name"],
                start=rec["ts"] / 1e6,
                duration=rec.get("dur", 0.0) / 1e6,
                rank=rank,
                args=tuple(sorted((str(k), v) for k, v in args.items())),
            )
        )
    return out
