"""Post-mortem timeline analysis over observer events.

:class:`TimelineReport` answers the questions the paper's tool answers at
``MPI_Abort`` shutdown — how did the failure unfold, per rank? — from the
unified event stream: per-rank failure-detection latency distributions,
the resilience instant sequence (inject -> detect -> notify -> revoke ->
abort -> restart), and a join of :class:`~repro.mpi.trace.CommTrace`,
:class:`~repro.util.simlog.SimLog`, and observer records onto one virtual
clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs.events import SIM, ObsEvent

#: Resilience instant names, in causal order (used for display sorting).
RESILIENCE_ORDER = ("inject", "detect", "notify", "revoke", "abort", "restart")


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one latency sample set (seconds of virtual time)."""

    count: int
    min: float
    mean: float
    max: float

    @classmethod
    def of(cls, samples: "list[float]") -> "LatencyStats":
        return cls(
            count=len(samples),
            min=min(samples),
            mean=sum(samples) / len(samples),
            max=max(samples),
        )


class TimelineReport:
    """Joined view of a run's telemetry on the virtual clock.

    Parameters
    ----------
    events:
        Observer events (or an :class:`~repro.obs.events.Observer`).
    log_entries:
        Optional :class:`~repro.util.simlog.LogEntry` sequence to join.
    comm_records:
        Optional :class:`~repro.mpi.trace.MsgRecord` sequence to join.
    """

    def __init__(
        self,
        events: "Iterable[ObsEvent] | object",
        log_entries: Iterable | None = None,
        comm_records: Iterable | None = None,
    ) -> None:
        inner = getattr(events, "events", events)
        self.events: list[ObsEvent] = sorted(inner, key=ObsEvent.sort_key)
        self.log_entries = list(log_entries) if log_entries is not None else []
        self.comm_records = list(comm_records) if comm_records is not None else []

    @classmethod
    def from_sim(cls, sim) -> "TimelineReport":
        """Build from a finished :class:`~repro.core.simulator.XSim`."""
        observer = getattr(sim, "observer", None)
        if observer is None:
            raise ValueError("simulation was not run with observe=...")
        trace = getattr(sim.world, "trace", None)
        return cls(
            observer,
            log_entries=list(sim.engine.log),
            comm_records=list(trace) if trace is not None else None,
        )

    # -- resilience ------------------------------------------------------
    def resilience_events(self) -> list[ObsEvent]:
        """All resilience-track instants, in causal then time order."""
        order = {name: i for i, name in enumerate(RESILIENCE_ORDER)}
        return sorted(
            (e for e in self.events if e.track == "resilience"),
            key=lambda e: (e.start, order.get(e.name, len(order)), e.sort_key()),
        )

    def detection_latencies(self) -> dict[int, list[float]]:
        """Per-rank failure-detection latency samples (seconds)."""
        out: dict[int, list[float]] = {}
        for e in self.resilience_events():
            if e.name != "detect" or e.rank is None:
                continue
            latency = dict(e.args).get("latency")
            if latency is not None:
                out.setdefault(e.rank, []).append(latency)
        return out

    def detection_stats(self) -> dict[int, LatencyStats]:
        """Per-rank detection latency distributions."""
        return {
            rank: LatencyStats.of(samples)
            for rank, samples in sorted(self.detection_latencies().items())
        }

    # -- joined timeline -------------------------------------------------
    def joined_rows(self) -> list[tuple[float, str, str]]:
        """(time, source, description) rows from every joined stream.

        Observer spans contribute their start; communication records
        contribute the post instant (and the drop instant for dropped
        messages).  Rows are sorted by time then content, so the join is
        deterministic.
        """
        rows: list[tuple[float, str, str]] = []
        for e in self.events:
            if e.domain != SIM:
                continue
            where = f"rank {e.rank}" if e.rank is not None else e.track
            if e.kind == "span":
                rows.append((e.start, "obs", f"{e.name} [{where}] dur={e.duration:.6f}s"))
            else:
                extras = " ".join(f"{k}={v}" for k, v in e.args)
                rows.append((e.start, "obs", f"{e.name} [{where}]{' ' + extras if extras else ''}"))
        for entry in self.log_entries:
            where = f"rank {entry.rank}" if entry.rank is not None else "simulator"
            rows.append((entry.time, "log", f"{entry.category} [{where}]: {entry.message}"))
        for rec in self.comm_records:
            rows.append(
                (
                    rec.post_time,
                    "comm",
                    f"post seq={rec.seq} {rec.src}->{rec.dst} {rec.nbytes}B {rec.protocol}",
                )
            )
            if rec.dropped:
                rows.append(
                    (rec.drop_time, "comm", f"drop seq={rec.seq} {rec.src}->{rec.dst}")
                )
        rows.sort()
        return rows

    # -- rendering -------------------------------------------------------
    def render(self, max_rows: int = 0) -> str:
        """Human-readable report (resilience table + latency stats)."""
        lines = ["== timeline report =="]
        sim = [e for e in self.events if e.domain == SIM]
        host = [e for e in self.events if e.domain == "host"]
        lines.append(
            f"events: {len(sim)} sim, {len(host)} host; "
            f"log entries: {len(self.log_entries)}; "
            f"comm records: {len(self.comm_records)}"
        )
        tracks: dict[str, int] = {}
        for e in sim:
            tracks[e.track] = tracks.get(e.track, 0) + 1
        for track in sorted(tracks):
            lines.append(f"  track {track}: {tracks[track]} events")

        resilience = self.resilience_events()
        if resilience:
            lines.append("-- resilience timeline --")
            for e in resilience:
                where = f"rank {e.rank}" if e.rank is not None else "simulator"
                extras = " ".join(f"{k}={v}" for k, v in e.args)
                lines.append(
                    f"  {e.start:14.6f}s {e.name:>8} {where}"
                    + (f"  {extras}" if extras else "")
                )
            stats = self.detection_stats()
            if stats:
                lines.append("-- per-rank detection latency --")
                for rank, s in stats.items():
                    lines.append(
                        f"  rank {rank}: n={s.count} min={s.min:.6f}s "
                        f"mean={s.mean:.6f}s max={s.max:.6f}s"
                    )
        else:
            lines.append("-- no resilience events --")

        if max_rows:
            lines.append("-- joined timeline (head) --")
            for time, source, desc in self.joined_rows()[:max_rows]:
                lines.append(f"  {time:14.6f}s [{source:>4}] {desc}")
        return "\n".join(lines) + "\n"
