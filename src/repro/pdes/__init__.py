"""Lightweight discrete event simulation engine (the xSim substrate).

xSim executes every simulated MPI rank as a *virtual process* (VP) with its
own execution context and virtual clock, scheduled cooperatively by a
conservative parallel discrete event simulation: a VP runs until it yields
control back to the simulator by receiving a message, calling a
simulator-internal function, or terminating.  This package reproduces that
engine in pure Python: each VP is a generator coroutine that yields
:mod:`engine primitives <repro.pdes.requests>` (:class:`~repro.pdes.requests.Advance`,
:class:`~repro.pdes.requests.Block`), and :class:`~repro.pdes.engine.Engine`
drives all VPs from a single binary-heap event queue in virtual-time order.

Failure and abort *activation* semantics follow the paper exactly: a
scheduled time is the earliest time of failure/abort; the actual time is the
VP's clock at the next point the simulator regains control at-or-after the
scheduled time (see :meth:`Engine.schedule_failure` and
:meth:`Engine.request_abort`).
"""

from repro.pdes.context import VirtualProcess, VpState
from repro.pdes.engine import Engine, SimulationResult
from repro.pdes.requests import Advance, Block

__all__ = [
    "Advance",
    "Block",
    "Engine",
    "SimulationResult",
    "VirtualProcess",
    "VpState",
]
