"""Virtual-process execution contexts.

Each simulated MPI rank is a :class:`VirtualProcess`: a generator coroutine
plus the per-rank simulator state xSim keeps for its user-space thread
contexts — the virtual clock, the scheduled time of failure ("initialized
to 0, i.e. fail never, on startup"; we represent *never* as ``math.inf``),
the per-process list of failed peers with their failure times, and the
lifecycle state.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Generator


class VpState(enum.Enum):
    """Lifecycle of a virtual process."""

    READY = "ready"
    """Spawned, resume event pending."""
    RUNNING = "running"
    """Currently being stepped by the engine."""
    ADVANCING = "advancing"
    """Mid clock-advance; a resume event is queued."""
    BLOCKED = "blocked"
    """Parked on a :class:`~repro.pdes.requests.Block` until woken."""
    DONE = "done"
    """Terminated normally (returned from its main function)."""
    FAILED = "failed"
    """Killed by an injected process failure."""
    ABORTED = "aborted"
    """Terminated by a simulated ``MPI_Abort``."""


#: States in which the VP still has a live coroutine.
LIVE_STATES = frozenset({VpState.READY, VpState.RUNNING, VpState.ADVANCING, VpState.BLOCKED})


class VirtualProcess:
    """One simulated MPI rank: coroutine + virtual clock + failure state."""

    __slots__ = (
        "rank",
        "gen",
        "clock",
        "state",
        "time_of_failure",
        "time_of_abort",
        "pending_delay",
        "busy_time",
        "failed_peers",
        "wait_token",
        "wait_tag",
        "epoch",
        "end_time",
        "exit_value",
        "userdata",
    )

    def __init__(self, rank: int, gen: Generator[Any, Any, Any], start_time: float = 0.0):
        self.rank = rank
        self.gen = gen
        self.clock = start_time
        self.state = VpState.READY
        self.time_of_failure = math.inf
        self.time_of_abort = math.inf
        #: Externally injected downtime (e.g. a proactive migration pause),
        #: consumed at the VP's next execution control point.
        self.pending_delay = 0.0
        #: Accumulated CPU-busy virtual time (``Advance(..., busy=True)``),
        #: the power model's energy-accounting input.
        self.busy_time = 0.0
        #: rank -> virtual time of that peer's failure, as known to this VP
        #: (populated by the simulator-internal failure notification broadcast).
        self.failed_peers: dict[int, float] = {}
        #: Monotonic token guarding against stale wake events.
        self.wait_token = 0
        self.wait_tag = ""
        #: Incremented when the VP dies so queued events for it become no-ops.
        self.epoch = 0
        self.end_time: float | None = None
        self.exit_value: Any = None
        #: Free slot for the layers above (the MPI layer hangs per-rank
        #: matching queues here without another dict lookup per message).
        self.userdata: Any = None

    @property
    def alive(self) -> bool:
        return self.state in LIVE_STATES

    def snapshot(self) -> dict[str, Any]:
        """Compact state dump for diagnostics (simcheck violation reports)."""
        return {
            "rank": self.rank,
            "state": self.state.value,
            "clock": self.clock,
            "busy_time": self.busy_time,
            "end_time": self.end_time,
            "epoch": self.epoch,
            "wait_tag": str(self.wait_tag),
            "time_of_failure": self.time_of_failure,
            "failed_peers": dict(self.failed_peers),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VP rank={self.rank} t={self.clock:.6f} {self.state.value}>"
