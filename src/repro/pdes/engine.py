"""The discrete event simulation engine driving all virtual processes.

Execution model (paper §IV-A, reproduced exactly):

* The engine "always executes one simulated MPI process ... at a time".
  Every virtual process (VP) is a generator coroutine; :meth:`Engine._step`
  runs it until it yields an :class:`~repro.pdes.requests.Advance` (a
  simulator-internal clock update: modeled computation, timing function,
  file-system access, communication overhead) or a
  :class:`~repro.pdes.requests.Block` (waiting on a message or another
  simulator-internal wake-up), or until it terminates.
* "Context switches between simulated MPI processes are only performed upon
  receiving an MPI message, receiving a simulator-internal message, or
  termination" — i.e. at those yields.  The engine interleaves VPs from a
  single binary-heap event queue ordered by virtual time ("a schedule based
  on message receive time stamps").

Failure activation (paper §IV-B): each VP has a ``time_of_failure``
(infinity = never).  "A scheduled simulated MPI process failure is activated
when the targeted simulated MPI process is executing, updates its simulated
process clock, and the clock reaches or goes beyond the ... time of failure
value. ... the scheduled time is the earliest time of failure, while the
actual time of failure depends on when the simulator regains control."
:meth:`Engine._step`, :meth:`Engine._do_wake`, and
:meth:`Engine._resume_advance` each perform that control-point check.  A VP
blocked on a wait that would complete after its scheduled failure time is
killed at the scheduled time instead (its wait provably extends past it).

Abort activation (paper §IV-D) is symmetric: blocked VPs are released and
terminated at the time of abort; computing VPs abort at the next point the
simulator regains control with their clock at-or-past the time of abort, so
the simulation exit time can exceed the abort time.
"""

from __future__ import annotations

import gc
import math
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush, nsmallest
from typing import Any, Callable, Generator

from repro.pdes.context import VirtualProcess, VpState
from repro.pdes.requests import Advance, Block
from repro.util.errors import ConfigurationError, DeadlockError, SimulationError, XsimError
from repro.util.simlog import SimLog
from repro.util.stats import TimingStats


@dataclass
class SimulationResult:
    """Outcome of one :meth:`Engine.run`.

    ``exit_time`` is the maximum VP end time — the value xSim "optionally
    writes out ... to a file" so that a restarted simulation can continue
    virtual time (paper §IV-E).
    """

    start_time: float
    exit_time: float
    aborted: bool
    abort_time: float | None
    abort_rank: int | None
    failures: list[tuple[int, float]]
    states: dict[int, VpState]
    end_times: dict[int, float]
    busy_times: dict[int, float]
    exit_values: dict[int, Any]
    event_count: int
    log: SimLog
    timing: TimingStats = field(repr=False, default_factory=TimingStats)

    @property
    def completed(self) -> bool:
        """True when every VP terminated normally (no failure, no abort)."""
        return all(s is VpState.DONE for s in self.states.values())

    def timing_report(self) -> str:
        """The min/max/avg VP timing line xSim prints at shutdown."""
        t = self.timing
        return (
            f"simulated MPI process timing: min={t.minimum:.6f}s "
            f"max={t.maximum:.6f}s avg={t.average:.6f}s ({t.count} processes)"
        )


class Engine:
    """Sequential conservative discrete event simulator for virtual processes.

    Parameters
    ----------
    start_time:
        Initial virtual clock of every VP.  The checkpoint/restart driver
        passes the persisted exit time of the previous (aborted) run here so
        virtual time is continuous across failure/restart cycles.
    log:
        Structured simulator log; a fresh one is created when omitted.
    coalesce_advances:
        When True (default), an Advance whose resume time precedes every
        queued event is taken inline instead of going through the heap.
        The resume is still a full control point (clock update, failure
        and abort checks) and still counts as an event, so results and
        ``event_count`` are identical to the un-coalesced path; the knob
        exists so property tests can compare both paths.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        log: SimLog | None = None,
        coalesce_advances: bool = True,
    ):
        if not math.isfinite(start_time) or start_time < 0.0:
            raise ConfigurationError(f"start_time must be finite and >= 0, got {start_time!r}")
        self.start_time = float(start_time)
        self.now = float(start_time)
        self.log = log if log is not None else SimLog()
        self.coalesce_advances = coalesce_advances
        self.vps: list[VirtualProcess] = []
        self.failures: list[tuple[int, float]] = []
        self.aborting = False
        self.abort_time: float | None = None
        self.abort_rank: int | None = None
        self.event_count = 0
        #: Queued events dropped at dispatch because their VP died first.
        self.stale_skipped = 0
        #: Advance resumes taken inline without a heap round-trip.
        self.coalesced_advances = 0
        #: Upper bound (exclusive) on inline-coalesced resume times.  The
        #: serial run leaves it at infinity; the sharded engine caps it at
        #: the current safe-window end so a VP cannot silently advance past
        #: the window barrier (see :mod:`repro.pdes.sharded`).
        self._window_end = math.inf
        #: Abort time of a requested-but-not-yet-applied MPI_Abort kill
        #: sweep; applied once dispatch leaves the abort instant (see
        #: :meth:`request_abort`).
        self._pending_abort: float | None = None
        #: Set to a list by :class:`repro.util.profiling.EngineProfiler` to
        #: collect ``(label, virtual_time, event_count)`` phase marks.
        self._phase_marks: list[tuple[str, float, int]] | None = None
        #: Optional :class:`repro.check.trace.EventTrace` recording every
        #: dispatched event (attach before :meth:`run`).
        self.event_trace = None
        #: Optional :class:`repro.check.sanitizer.Sanitizer` consulted at
        #: every dispatch (attach before :meth:`run`).  ``None`` (the
        #: default) costs one attribute test per event.
        self.check = None
        #: Optional :class:`repro.obs.Observer` collecting resilience
        #: instants (inject/abort) from the engine.  ``None`` (the
        #: default) costs one attribute test per emission site.
        self.obs = None
        #: Called with ``(vp, time)`` after a VP is killed by failure
        #: injection; the MPI layer uses this to delete queued messages,
        #: broadcast the simulator-internal notification, and release
        #: blocked communication partners.
        self.failure_listeners: list[Callable[[VirtualProcess, float], None]] = []
        #: Policy consulted when a VP returns from its main function;
        #: returning ``"failure"`` converts the exit into a process failure
        #: (paper: "returning from main() or calling exit() without having
        #: called MPI_Finalize()" is a failure-injection condition).
        self.exit_policy: Callable[[VirtualProcess], str] | None = None
        # Heap entries are (time, seq, guard_vp, guard_epoch, fn, args).
        # guard_vp is None for unguarded events; otherwise the event is
        # dropped at dispatch when guard_vp.epoch no longer matches
        # guard_epoch (the VP died or finished), so dead-VP callbacks never
        # pay the dispatch + callback-side staleness check.
        self._heap: list[
            tuple[float, int, VirtualProcess | None, int, Callable[..., None], tuple]
        ] = []
        self._seq = 0
        self._live = 0
        self._ran = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator[Any, Any, Any]) -> VirtualProcess:
        """Register a VP coroutine; its rank is its spawn order."""
        if self._ran:
            raise SimulationError("cannot spawn after run()")
        vp = VirtualProcess(rank=len(self.vps), gen=gen, start_time=self.start_time)
        self.vps.append(vp)
        self._live += 1
        self._schedule_vp(self.start_time, vp, self._start_vp, vp)
        return vp

    def _start_vp(self, vp: VirtualProcess) -> None:
        if vp.state is VpState.READY:
            # Control point before first instruction: a failure scheduled at
            # (or before) the start time kills the VP before it runs.
            if vp.clock >= vp.time_of_failure:
                self._kill_failure(vp, max(vp.clock, 0.0))
                return
            if vp.clock >= vp.time_of_abort:
                self._kill_abort(vp, vp.clock)
                return
            self._step(vp)

    # ------------------------------------------------------------------
    # event queue
    # ------------------------------------------------------------------
    def schedule(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at virtual ``time`` (must be >= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past ({time} < {self.now})")
        self._seq += 1
        heappush(self._heap, (time, self._seq, None, 0, fn, args))

    def _schedule_vp(
        self, time: float, vp: VirtualProcess, fn: Callable[..., None], *args: Any
    ) -> None:
        """Like :meth:`schedule`, but the event is lazily deleted (skipped
        before dispatch) if ``vp``'s epoch changes — i.e. the VP dies,
        aborts, or finishes before the event fires."""
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past ({time} < {self.now})")
        self._seq += 1
        heappush(self._heap, (time, self._seq, vp, vp.epoch, fn, args))

    def post_event(self, time: float, fn: Callable[[Any], None], arg: Any) -> None:
        """Schedule ``fn(arg)`` at ``time`` — the unguarded single-payload
        fast path (per-message deliveries).  Callers validate ``time``
        against their own clock; no past-check is repeated here.  Exists
        as a method (rather than the callers pushing heap tuples inline)
        so alternative event cores can intercept every scheduling path.
        """
        self._seq += 1
        heappush(self._heap, (time, self._seq, None, 0, fn, (arg,)))

    def queue_size(self) -> int:
        """Number of queued (possibly stale) events."""
        return len(self._heap)

    def heap_head(self, n: int = 20) -> list[dict[str, Any]]:
        """The ``n`` earliest queued events as diagnostic records (the
        sanitizer's dump snapshot) — core-representation independent."""
        out = []
        for time, seq, gvp, _, fn, _args in nsmallest(n, self._heap):
            out.append(
                {
                    "time": time,
                    "seq": seq,
                    "rank": None if gvp is None else gvp.rank,
                    "fn": fn.__name__,
                }
            )
        return out

    def mark_phase(self, label: str) -> None:
        """Record a named phase boundary for profiling.

        No-op unless a :class:`repro.util.profiling.EngineProfiler` has
        attached a mark list, so applications can mark phases
        unconditionally at negligible cost.
        """
        marks = self._phase_marks
        if marks is not None:
            marks.append((label, self.now, self.event_count))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Process events until every VP terminated; return the outcome."""
        if self._ran:
            raise SimulationError("Engine.run() may only be called once")
        self._ran = True
        heap = self._heap
        pop = heappop
        # The event loop allocates only short-lived, acyclic objects (heap
        # tuples, messages, requests) that reference counting reclaims on
        # its own; cyclic-GC passes over the live heap are pure overhead
        # (~10% of run time at 512 VPs), so collection is deferred to the
        # end of the run.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        trace = self.event_trace
        check = self.check
        try:
            # Run to quiescence: the queue is drained completely rather than
            # stopping at the last VP termination.  Post-termination events
            # are harmless (guarded events are stale-skipped, arrivals to
            # dead VPs are dropped) and draining gives the serial run the
            # same event accounting as a sharded run, where no worker can
            # observe the global live-VP count.
            while heap:
                time, seq, gvp, gepoch, fn, args = pop(heap)
                if self._pending_abort is not None and time > self._pending_abort:
                    self._apply_abort_sweep()
                if gvp is not None and gvp.epoch != gepoch:
                    self.stale_skipped += 1  # lazily deleted dead-VP event
                    continue
                if trace is not None:
                    trace.record_dispatch(time, seq, gvp, fn, args)
                if check is not None:
                    check.on_dispatch(time, seq, gvp)
                self.now = time
                self.event_count += 1
                fn(*args)
        finally:
            if gc_was_enabled:
                gc.enable()
        if self._pending_abort is not None:  # abort at the last instant
            self._apply_abort_sweep()
        if self._live > 0:
            blocked = [
                (vp.rank, str(vp.wait_tag), vp.state.value) for vp in self.vps if vp.alive
            ]
            raise DeadlockError(blocked)
        if check is not None:
            check.on_run_end()
        return self._result()

    # ------------------------------------------------------------------
    # windowed dispatch interface (used by repro.pdes.sharded)
    # ------------------------------------------------------------------
    # A shard worker does not call run(); it drives the engine through
    # bounded dispatch windows under the coordinator's safe-window
    # protocol: begin_windowed_run() once, then any interleaving of
    # next_event_time() / run_window(end) / run_exact(t), and finally
    # finish_windowed_run().  The dispatch body is identical to run()'s
    # (trace, sanitizer, event accounting), only the loop bound differs.

    def begin_windowed_run(self) -> None:
        """Enter windowed dispatch mode (one-shot, like :meth:`run`)."""
        if self._ran:
            raise SimulationError("Engine.run() may only be called once")
        self._ran = True
        self._gc_was_enabled = gc.isenabled()
        if self._gc_was_enabled:
            gc.disable()

    def next_event_time(self) -> float:
        """Earliest non-stale queued event time; ``inf`` when drained.

        Stale (dead-VP) heads are pruned here so the reported time is a
        true lower bound on the shard's next dispatch.
        """
        heap = self._heap
        while heap:
            if heap[0][2] is not None and heap[0][2].epoch != heap[0][3]:
                heappop(heap)
                self.stale_skipped += 1
                continue
            return heap[0][0]
        return math.inf

    def _dispatch_bounded(self, bound: float, inclusive: bool) -> None:
        heap = self._heap
        pop = heappop
        trace = self.event_trace
        check = self.check
        try:
            # Non-inclusive windows re-read ``_window_end`` every iteration:
            # a sharded world *tightens* it mid-dispatch when an event emits
            # a cross-shard envelope (another shard may react to the message
            # and send something back as early as its receive time plus the
            # lookahead — events beyond that are no longer safe).
            while heap and (
                heap[0][0] <= bound if inclusive else heap[0][0] < self._window_end
            ):
                time, seq, gvp, gepoch, fn, args = pop(heap)
                if self._pending_abort is not None and time > self._pending_abort:
                    self._apply_abort_sweep()
                if gvp is not None and gvp.epoch != gepoch:
                    self.stale_skipped += 1
                    continue
                if trace is not None:
                    trace.record_dispatch(time, seq, gvp, fn, args)
                if check is not None:
                    check.on_dispatch(time, seq, gvp)
                self.now = time
                self.event_count += 1
                fn(*args)
            # A bound at-or-past the abort instant proves no same-instant
            # event remains (queued or arriving from another shard), so the
            # deferred sweep applies before control returns to the worker.
            effective = bound if inclusive else self._window_end
            if self._pending_abort is not None and (
                effective >= self._pending_abort if inclusive else effective > self._pending_abort
            ):
                self._apply_abort_sweep()
        finally:
            self._window_end = math.inf

    def run_window(self, end: float) -> None:
        """Dispatch every queued event with time strictly before ``end``.

        ``end`` must be a safe-window bound: no event at a time < ``end``
        may still be produced by another shard.  Inline advance coalescing
        is capped at ``end`` so a VP cannot run past the barrier.
        """
        self._window_end = end
        self._dispatch_bounded(end, inclusive=False)

    def run_exact(self, time: float) -> None:
        """Dispatch every queued event at exactly ``time`` (lockstep mode).

        Events pushed *at* ``time`` during dispatch (e.g. a message match
        waking its receiver with zero completion delay) drain in the same
        call; resumes later than ``time`` stay queued.
        """
        self._window_end = time
        self._dispatch_bounded(time, inclusive=True)

    def finish_windowed_run(self) -> None:
        """Leave windowed dispatch mode; re-enables garbage collection."""
        if getattr(self, "_gc_was_enabled", False):
            gc.enable()

    def deactivate_remote(self, owned: frozenset[int]) -> None:
        """Shard-worker setup: neutralize every VP whose rank is not owned.

        A non-owned VP becomes a passive placeholder: its epoch bump
        invalidates all queued guarded events (start, failure-due, wakes),
        its coroutine is closed, and its state is pinned to BLOCKED so the
        message-delivery and matching paths still see it as *alive* — the
        owning shard decides its fate and broadcasts it as a directive.
        The heap is rebuilt dropping the now-stale guarded entries and any
        unguarded injected-delay events addressed to non-owned ranks (an
        unguarded event would otherwise fire — and be counted — in every
        shard).
        """
        for vp in self.vps:
            if vp.rank in owned:
                continue
            vp.epoch += 1
            vp.state = VpState.BLOCKED
            vp.wait_tag = "remote-shard"
            self._live -= 1
            gen = vp.gen
            if gen is not None:
                gen.close()
                vp.gen = None
        delay_due = self._delay_due
        self._heap = [
            e
            for e in self._heap
            if (
                e[2].epoch == e[3]
                if e[2] is not None
                else not (e[4] == delay_due and e[5][0] not in owned)
            )
        ]
        heapify(self._heap)

    def _result(self) -> SimulationResult:
        timing = TimingStats()
        end_times: dict[int, float] = {}
        for vp in self.vps:
            end = vp.end_time if vp.end_time is not None else vp.clock
            end_times[vp.rank] = end
            timing.add(end)
        exit_time = max(end_times.values()) if end_times else self.start_time
        return SimulationResult(
            start_time=self.start_time,
            exit_time=exit_time,
            aborted=self.aborting,
            abort_time=self.abort_time,
            abort_rank=self.abort_rank,
            failures=list(self.failures),
            states={vp.rank: vp.state for vp in self.vps},
            end_times=end_times,
            busy_times={vp.rank: vp.busy_time for vp in self.vps},
            exit_values={vp.rank: vp.exit_value for vp in self.vps},
            event_count=self.event_count,
            log=self.log,
            timing=timing,
        )

    # ------------------------------------------------------------------
    # stepping virtual processes
    # ------------------------------------------------------------------
    def _step(self, vp: VirtualProcess, value: Any = None, exc: BaseException | None = None) -> None:
        """Run ``vp`` until it yields Advance/Block or terminates."""
        if vp.pending_delay > 0.0:
            # Externally injected downtime (proactive migration et al.):
            # consumed before the VP executes again, like a forced Advance.
            delay, vp.pending_delay = vp.pending_delay, 0.0
            vp.state = VpState.ADVANCING
            self._schedule_vp(
                vp.clock + delay, vp, self._resume_delayed, vp, vp.epoch, vp.clock + delay, value, exc
            )
            return
        vp.state = VpState.RUNNING
        gen = vp.gen
        send = gen.send
        heap = self._heap
        coalesce = self.coalesce_advances
        window_end = self._window_end
        while True:
            try:
                if exc is not None:
                    err, exc = exc, None
                    item = gen.throw(err)
                else:
                    item = send(value)
            except StopIteration as stop:
                self._finish(vp, stop.value)
                return
            except XsimError:
                raise  # simulator/host errors crash the simulation
            except Exception as err:
                # An exception escaping the application is a (virtual)
                # process crash: the VP fails at its current clock, like a
                # real MPI process dying on an unhandled error.
                self._kill_failure(
                    vp, vp.clock, reason=f"uncaught {type(err).__name__}: {err}"
                )
                return
            value = None
            # The simulator has regained control: failure/abort control point.
            if vp.clock >= vp.time_of_failure:
                self._kill_failure(vp, vp.clock)
                return
            if vp.clock >= vp.time_of_abort:
                self._kill_abort(vp, vp.clock)
                return
            kind = type(item)
            if kind is Advance:
                dt = item.dt
                if dt < 0.0:
                    self._crash(vp, f"negative Advance({dt})")
                if dt == 0.0:
                    continue  # zero-cost control point; keep running
                if item.busy:
                    vp.busy_time += dt
                new_clock = vp.clock + dt
                if coalesce and new_clock < window_end and (not heap or heap[0][0] > new_clock):
                    # No other event can fire strictly before this VP's
                    # resume (strict > keeps equal-time FIFO order intact),
                    # so take the control point inline: same clock update,
                    # failure/abort checks, and event accounting as
                    # _resume_advance, minus the heap round-trip.
                    if self.event_trace is not None:
                        self.event_trace.record_coalesced(new_clock, vp.rank)
                    if self.check is not None:
                        self.check.on_dispatch(new_clock, -1, vp)
                    self.now = new_clock
                    self.event_count += 1
                    self.coalesced_advances += 1
                    vp.clock = new_clock
                    if self._pending_abort is not None and new_clock > self._pending_abort:
                        self._apply_abort_sweep()  # leaving the abort instant
                    if new_clock >= vp.time_of_failure:
                        self._kill_failure(vp, new_clock)
                        return
                    if new_clock >= vp.time_of_abort:
                        self._kill_abort(vp, new_clock)
                        return
                    continue
                vp.state = VpState.ADVANCING
                # Inline of _schedule_vp; the past-check is unnecessary
                # here because new_clock = vp.clock + dt with dt > 0 and
                # vp.clock >= self.now inside a step.
                self._seq += 1
                heappush(
                    heap,
                    (new_clock, self._seq, vp, vp.epoch, self._resume_advance, (vp, vp.epoch, new_clock)),
                )
                return
            if kind is Block:
                vp.state = VpState.BLOCKED
                vp.wait_token += 1
                vp.wait_tag = item.tag
                return
            self._crash(vp, f"yielded unknown request {item!r}")

    def _crash(self, vp: VirtualProcess, why: str) -> None:
        raise SimulationError(f"VP rank {vp.rank}: {why}")

    def _resume_delayed(
        self,
        vp: VirtualProcess,
        epoch: int,
        new_clock: float,
        value: Any,
        exc: BaseException | None,
    ) -> None:
        if vp.epoch != epoch or vp.state is not VpState.ADVANCING:
            return
        vp.clock = new_clock
        if vp.clock >= vp.time_of_failure:
            self._kill_failure(vp, vp.clock)
            return
        if vp.clock >= vp.time_of_abort:
            self._kill_abort(vp, vp.clock)
            return
        self._step(vp, value, exc)

    def inject_delay(self, rank: int, time: float, duration: float, reason: str = "delay") -> None:
        """Pause ``rank`` for ``duration`` at its first execution control
        point at-or-after ``time`` (same activation semantics as failure
        injection).  Used for externally imposed downtime such as a
        proactive live migration's stop-and-copy phase."""
        if duration < 0:
            raise ConfigurationError(f"delay duration must be >= 0, got {duration}")
        if time < self.start_time:
            raise ConfigurationError(
                f"delay time {time} precedes simulation start {self.start_time}"
            )
        self.schedule(time, self._delay_due, rank, duration, reason)

    def _delay_due(self, rank: int, duration: float, reason: str) -> None:
        vp = self.vps[rank]
        if not vp.alive:
            return
        vp.pending_delay += duration
        self.log.log(self.now, "delay", f"{reason} (+{duration:.6f}s)", rank=rank)

    def _resume_advance(self, vp: VirtualProcess, epoch: int, new_clock: float) -> None:
        if vp.epoch != epoch or vp.state is not VpState.ADVANCING:
            return  # VP died while advancing
        vp.clock = new_clock
        if vp.clock >= vp.time_of_failure:
            self._kill_failure(vp, vp.clock)
            return
        if vp.clock >= vp.time_of_abort:
            self._kill_abort(vp, vp.clock)
            return
        self._step(vp)

    # ------------------------------------------------------------------
    # waking blocked VPs
    # ------------------------------------------------------------------
    def wake(
        self,
        vp: VirtualProcess,
        time: float,
        value: Any = None,
        exc: BaseException | None = None,
    ) -> None:
        """Schedule ``vp`` (currently blocked) to resume at ``time``.

        ``value`` is delivered as the result of the VP's ``yield Block``;
        ``exc`` is raised at that yield instead when given.  Stale wakes
        (the VP died, or was already woken and blocked again) are dropped.
        """
        if vp.state is not VpState.BLOCKED:
            raise SimulationError(f"wake() on non-blocked VP rank {vp.rank} ({vp.state})")
        self._schedule_vp(time, vp, self._do_wake, vp, vp.epoch, vp.wait_token, time, value, exc)

    def _do_wake(
        self,
        vp: VirtualProcess,
        epoch: int,
        token: int,
        time: float,
        value: Any,
        exc: BaseException | None,
    ) -> None:
        if vp.epoch != epoch or vp.state is not VpState.BLOCKED or vp.wait_token != token:
            return
        if time > vp.clock:
            vp.clock = time
        if vp.clock >= vp.time_of_failure:
            self._kill_failure(vp, vp.clock)
            return
        if vp.clock >= vp.time_of_abort:
            self._kill_abort(vp, vp.clock)
            return
        self._step(vp, value, exc)

    # ------------------------------------------------------------------
    # termination paths
    # ------------------------------------------------------------------
    def _finish(self, vp: VirtualProcess, value: Any) -> None:
        verdict = self.exit_policy(vp) if self.exit_policy is not None else "done"
        if verdict == "failure":
            self._kill_failure(vp, vp.clock, reason="exit without MPI_Finalize")
            return
        vp.state = VpState.DONE
        vp.end_time = vp.clock
        vp.exit_value = value
        vp.epoch += 1
        self._live -= 1

    def _retire(self, vp: VirtualProcess) -> None:
        """Close the coroutine and invalidate queued events for ``vp``."""
        vp.epoch += 1
        self._live -= 1
        gen = vp.gen
        if gen is not None:
            try:
                gen.close()
            except RuntimeError as err:  # generator refused to die
                raise SimulationError(f"VP rank {vp.rank} swallowed its termination") from err

    def _kill_failure(self, vp: VirtualProcess, time: float, reason: str = "injected failure") -> None:
        """End ``vp`` as a simulated MPI process failure at virtual ``time``."""
        self._retire(vp)
        vp.state = VpState.FAILED
        vp.clock = max(vp.clock, time)
        vp.end_time = vp.clock
        self.failures.append((vp.rank, vp.end_time))
        # "An informational message is printed out ... to let the user know
        # of the time and location (rank) of the failure."
        self.log.log(vp.end_time, "failure", f"MPI process failure ({reason})", rank=vp.rank)
        if self.obs is not None:
            self.obs.instant(
                vp.end_time, "inject", rank=vp.rank, track="resilience",
                args={"reason": reason},
            )
        for listener in self.failure_listeners:
            listener(vp, vp.end_time)

    def _kill_abort(self, vp: VirtualProcess, time: float) -> None:
        self._retire(vp)
        vp.state = VpState.ABORTED
        vp.clock = max(vp.clock, time)
        vp.end_time = vp.clock

    # ------------------------------------------------------------------
    # resilience control surface (used by repro.core)
    # ------------------------------------------------------------------
    def schedule_failure(self, rank: int, time: float) -> None:
        """Arm an MPI process failure for ``rank`` at earliest ``time``.

        Mirrors xSim's simulator-internal trigger function: the scheduled
        time is the *earliest* time of failure; the actual failure occurs at
        the next simulator control point at-or-after it.  A VP blocked past
        ``time`` is failed at exactly ``time``.
        """
        if time < self.start_time:
            raise ConfigurationError(
                f"failure time {time} precedes simulation start {self.start_time}"
            )
        vp = self.vps[rank]
        vp.time_of_failure = min(vp.time_of_failure, time)
        self._schedule_vp(time, vp, self._failure_due, vp, vp.epoch, time)

    def fail_now(self, rank: int, reason: str = "application-triggered failure") -> None:
        """Immediately fail ``rank`` at its current clock (simulator-internal
        trigger with *time = now*, e.g. condition-based injection by the
        application itself)."""
        vp = self.vps[rank]
        if vp.alive:
            self._kill_failure(vp, vp.clock, reason=reason)

    def _failure_due(self, vp: VirtualProcess, epoch: int, time: float) -> None:
        if vp.epoch != epoch or not vp.alive:
            return
        if vp.state is VpState.BLOCKED or vp.state is VpState.READY:
            # The wait (or the not-yet-started VP) provably extends past the
            # scheduled failure time, so the failure occurs at exactly it.
            self._kill_failure(vp, time)
        # Otherwise the VP is mid-advance (or running): the control-point
        # check in _resume_advance/_step fires at its next clock update.

    def request_abort(self, time: float, initiator: int) -> None:
        """Simulated ``MPI_Abort`` (paper §IV-D).

        The first abort wins; the simulator-internal broadcast releases all
        blocked VPs at (their clock capped to) the abort time, while
        computing VPs abort once their clock passes it, so the simulation
        exit time may exceed ``time``.

        The broadcast takes effect at the *end of the current simulation
        instant*: every event already due at exactly ``time`` still
        dispatches normally, then the kill sweep runs before the clock
        advances past ``time``.  This makes the outcome a function of the
        event *times* alone rather than of heap insertion order among
        same-instant events — the property the sharded engine
        (:mod:`repro.pdes.sharded`) relies on to reproduce aborts
        bit-identically, since shards do not share a global sequence
        counter.  (Armed failures sit at the other edge of an instant:
        their events are scheduled before the run and therefore dispatch
        before any same-time event.)
        """
        if self.aborting:
            return
        self.aborting = True
        self.abort_time = time
        self.abort_rank = initiator
        self.log.log(time, "abort", "MPI_Abort invoked", rank=initiator)
        if self.obs is not None:
            self.obs.instant(time, "abort", rank=initiator, track="resilience")
        self._pending_abort = time

    def _apply_abort_sweep(self) -> None:
        """The deferred ``MPI_Abort`` broadcast (see :meth:`request_abort`)."""
        time = self._pending_abort
        self._pending_abort = None
        for vp in self.vps:
            if not vp.alive:
                continue
            vp.time_of_abort = min(vp.time_of_abort, time)
            if vp.state is VpState.BLOCKED or vp.state is VpState.READY:
                self._kill_abort(vp, max(vp.clock, time))
            # RUNNING/ADVANCING VPs abort at their next control point.
