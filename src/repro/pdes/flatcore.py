"""Flat-array event core: slab-allocated pool + compact-key heap dispatch.

The baseline :class:`~repro.pdes.engine.Engine` stores every queued event
as a 6-tuple ``(time, seq, guard_vp, guard_epoch, fn, args)`` — two fresh
tuples per event, a bound method, and a rich comparison over six fields on
every sift.  This module rebuilds the same event queue as a **flat event
pool**:

* parallel slab-grown arrays ``kind / guard_vp / guard_epoch / a / b / c``
  hold all event state, indexed by an integer *slot*;
* the binary heap contains only the compact sort key ``(time, seq, slot)``
  — the slot is ballast, never compared (``seq`` is unique), so every
  sift compares a float and an int and nothing else;
* a LIFO free-list recycles slots, so steady-state dispatch performs
  **zero per-event pool allocation** (the arrays stop growing once the
  simulation reaches its peak event population);
* the uninstrumented run loop drains **batches** of same-timestamp events
  without re-checking the abort horizon or re-entering the outer loop.

Dispatch is kind-specialized: instead of storing ``fn``/``args`` and
paying a generic call, the loop switches on the small-int ``kind`` and
inlines the bodies of the per-event callbacks (`_resume_advance`,
`_do_wake`, `_failure_due`, `_resume_delayed`) the baseline engine would
have invoked.  Generic callbacks (message arrivals, scheduled functions)
still dispatch through stored callables.

**Observational identity.**  The flat core is digest-identical to the
heap core: same events in the same ``(time, seq)`` order, same control
points, same ``event_count``/``stale_skipped``/``coalesced_advances``,
same trace entries and sanitizer callbacks.  Instrumented runs (event
trace or sanitizer attached) take a per-event loop that *materializes*
the exact ``(fn, args)`` pair the heap engine would have stored, so trace
kinds (function names) and dispatch hooks are bit-identical; the
``flat-parity`` simcheck (:mod:`repro.check.differential`) holds the two
cores against each other on every workload family.

Kind table (payload slots ``a``/``b``/``c``; ``-`` means unused and
guaranteed ``None`` — the free-list invariant lets allocation sites skip
re-clearing them):

====================  =======  ==========  =========  =========
kind                  guarded  a           b          c
====================  =======  ==========  =========  =========
``K_GCALL``           yes      fn          args       --
``K_ADVANCE``         yes      --          --         --
``K_WAKE``            yes      wait_token  value      exc
``K_FAILURE``         yes      --          --         --
``K_RESUME_DELAYED``  yes      value       exc        --
``K_CALL1``           no       fn          arg        --
``K_CALL``            no       fn          args       --
====================  =======  ==========  =========  =========

``K_ADVANCE``/``K_FAILURE``/``K_RESUME_DELAYED`` need no stored time:
the event's heap time *is* the resume clock / scheduled failure time.
"""

from __future__ import annotations

import gc
import math
from heapq import heapify, heappop, heappush, nsmallest
from typing import Any, Callable

from repro.pdes.context import VirtualProcess, VpState
from repro.pdes.engine import Engine
from repro.pdes.requests import Advance, Block
from repro.util.errors import ConfigurationError, DeadlockError, SimulationError, XsimError

K_GCALL = 0
K_ADVANCE = 1
K_WAKE = 2
K_FAILURE = 3
K_RESUME_DELAYED = 4
K_CALL1 = 5
K_CALL = 6

#: Slots added per pool growth.  One slab covers most runs below ~1k
#: ranks; larger runs grow a handful of times and then never again.
_SLAB = 2048


class _FlatCore:
    """Mixin replacing the tuple heap of an :class:`Engine` subclass with
    the flat event pool.  Composed as ``class FlatEngine(_FlatCore,
    Engine)`` — every scheduling/dispatch method is overridden here; the
    resilience surface (kill/abort/retire, result assembly) is inherited
    unchanged, which is what keeps the two cores digest-identical.
    """

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        # (time, seq, slot) — replaces the baseline 6-tuple heap.
        self._heap: list[tuple[float, int, int]] = []
        self._ek: list[int] = []
        self._eg: list[VirtualProcess | None] = []
        self._ege: list[int] = []
        self._ea: list[Any] = []
        self._eb: list[Any] = []
        self._ec: list[Any] = []
        self._free: list[int] = []
        self._pool_cap = 0
        # -- pool/heap gauges (read by repro.util.profiling) -----------
        self.pool_allocs = 0
        self.pool_reuses = 0
        self.slab_grows = 0
        self.pool_peak = 0
        self.batch_max = 0

    # ------------------------------------------------------------------
    # pool management
    # ------------------------------------------------------------------
    def _grow(self) -> int:
        """Extend every parallel array by one slab; return a fresh slot."""
        base = self._pool_cap
        self._ek.extend([0] * _SLAB)
        self._eg.extend([None] * _SLAB)
        self._ege.extend([0] * _SLAB)
        self._ea.extend([None] * _SLAB)
        self._eb.extend([None] * _SLAB)
        self._ec.extend([None] * _SLAB)
        self._pool_cap = base + _SLAB
        self.slab_grows += 1
        # LIFO free list, lowest slots handed out first.
        self._free.extend(range(base + _SLAB - 1, base, -1))
        return base

    def _new_slot(self) -> int:
        """Allocate a slot (free-list first, slab growth when exhausted)."""
        self.pool_allocs += 1
        free = self._free
        if free:
            self.pool_reuses += 1
            slot = free.pop()
        else:
            slot = self._grow()
        used = self._pool_cap - len(free)
        if used > self.pool_peak:
            self.pool_peak = used
        return slot

    def _release(self, slot: int) -> None:
        """Return a slot to the free list, dropping payload references."""
        self._eg[slot] = self._ea[slot] = self._eb[slot] = self._ec[slot] = None
        self._free.append(slot)

    # ------------------------------------------------------------------
    # scheduling surface (every entry point that fed the tuple heap)
    # ------------------------------------------------------------------
    def schedule(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past ({time} < {self.now})")
        slot = self._new_slot()
        self._ek[slot] = K_CALL
        self._ea[slot] = fn
        self._eb[slot] = args
        self._seq += 1
        heappush(self._heap, (time, self._seq, slot))

    def _schedule_vp(
        self, time: float, vp: VirtualProcess, fn: Callable[..., None], *args: Any
    ) -> None:
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past ({time} < {self.now})")
        slot = self._new_slot()
        self._ek[slot] = K_GCALL
        self._eg[slot] = vp
        self._ege[slot] = vp.epoch
        self._ea[slot] = fn
        self._eb[slot] = args
        self._seq += 1
        heappush(self._heap, (time, self._seq, slot))

    def post_event(self, time: float, fn: Callable[[Any], None], arg: Any) -> None:
        # Unguarded single-payload fast path (message deliveries); the
        # caller has already validated ``time`` against the clock.  The
        # slot allocation is inlined — one call per simulated message.
        self.pool_allocs += 1
        free = self._free
        if free:
            self.pool_reuses += 1
            slot = free.pop()
        else:
            slot = self._grow()
        used = self._pool_cap - len(self._free)
        if used > self.pool_peak:
            self.pool_peak = used
        self._ek[slot] = K_CALL1
        self._ea[slot] = fn
        self._eb[slot] = arg
        self._seq += 1
        heappush(self._heap, (time, self._seq, slot))

    def wake(
        self,
        vp: VirtualProcess,
        time: float,
        value: Any = None,
        exc: BaseException | None = None,
    ) -> None:
        if vp.state is not VpState.BLOCKED:
            raise SimulationError(f"wake() on non-blocked VP rank {vp.rank} ({vp.state})")
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past ({time} < {self.now})")
        slot = self._new_slot()
        self._ek[slot] = K_WAKE
        self._eg[slot] = vp
        self._ege[slot] = vp.epoch
        self._ea[slot] = vp.wait_token
        self._eb[slot] = value
        self._ec[slot] = exc
        self._seq += 1
        heappush(self._heap, (time, self._seq, slot))

    def schedule_failure(self, rank: int, time: float) -> None:
        if time < self.start_time:
            raise ConfigurationError(
                f"failure time {time} precedes simulation start {self.start_time}"
            )
        vp = self.vps[rank]
        vp.time_of_failure = min(vp.time_of_failure, time)
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past ({time} < {self.now})")
        slot = self._new_slot()
        self._ek[slot] = K_FAILURE
        self._eg[slot] = vp
        self._ege[slot] = vp.epoch
        self._seq += 1
        heappush(self._heap, (time, self._seq, slot))

    # ------------------------------------------------------------------
    # heap introspection (sanitizer diagnostics, parity with Engine)
    # ------------------------------------------------------------------
    def heap_head(self, n: int = 20) -> list[dict[str, Any]]:
        out = []
        for time, seq, slot in nsmallest(n, self._heap):
            g = self._eg[slot]
            fn, _args = self._materialize(time, slot)
            out.append(
                {
                    "time": time,
                    "seq": seq,
                    "rank": None if g is None else g.rank,
                    "fn": fn.__name__,
                }
            )
        return out

    def _materialize(self, t: float, slot: int) -> tuple[Callable[..., None], tuple]:
        """The exact ``(fn, args)`` pair the heap engine would have stored
        for this event — instrumented dispatch and diagnostics run through
        it so trace entries and dump snapshots are bit-identical."""
        k = self._ek[slot]
        g = self._eg[slot]
        a = self._ea[slot]
        b = self._eb[slot]
        if k == K_ADVANCE:
            return self._resume_advance, (g, self._ege[slot], t)
        if k == K_CALL1:
            return a, (b,)
        if k == K_WAKE:
            return self._do_wake, (g, self._ege[slot], a, t, b, self._ec[slot])
        if k == K_FAILURE:
            return self._failure_due, (g, self._ege[slot], t)
        if k == K_RESUME_DELAYED:
            return self._resume_delayed, (g, self._ege[slot], t, a, b)
        return a, b  # K_CALL / K_GCALL

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self):
        if self._ran:
            raise SimulationError("Engine.run() may only be called once")
        self._ran = True
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self.event_trace is not None or self.check is not None:
                self._drain_instrumented()
            else:
                self._drain_fast()
        finally:
            if gc_was_enabled:
                gc.enable()
        if self._pending_abort is not None:  # abort at the last instant
            self._apply_abort_sweep()
        if self._live > 0:
            blocked = [
                (vp.rank, str(vp.wait_tag), vp.state.value) for vp in self.vps if vp.alive
            ]
            raise DeadlockError(blocked)
        if self.check is not None:
            self.check.on_run_end()
        return self._result()

    def _drain_fast(self) -> None:
        """Uninstrumented run-to-quiescence: kind-specialized dispatch with
        same-timestamp batch draining.

        Event-for-event equivalent to the baseline loop.  The deferred
        abort sweep is only re-checked at the first event of each batch:
        within one simulated instant ``t`` no sweep can newly become due —
        ``request_abort`` is first-wins and is always invoked with the
        aborting VP's clock, which is ``>= t`` mid-dispatch, so ``t >
        pending_abort`` cannot turn true between two same-``t`` events.
        """
        heap = self._heap
        pop = heappop
        ek = self._ek
        eg = self._eg
        ege = self._ege
        ea = self._ea
        eb = self._eb
        ec = self._ec
        free_append = self._free.append
        step = self._step
        ADVANCING = VpState.ADVANCING
        BLOCKED = VpState.BLOCKED
        READY = VpState.READY
        batch_max = self.batch_max
        while heap:
            t, _seq, slot = pop(heap)
            if self._pending_abort is not None and t > self._pending_abort:
                self._apply_abort_sweep()
            batch = 0
            while True:
                batch += 1
                g = eg[slot]
                if g is not None and g.epoch != ege[slot]:
                    eg[slot] = ea[slot] = eb[slot] = ec[slot] = None
                    free_append(slot)
                    self.stale_skipped += 1  # lazily deleted dead-VP event
                else:
                    k = ek[slot]
                    self.now = t
                    self.event_count += 1
                    if k == K_ADVANCE:
                        eg[slot] = None
                        free_append(slot)
                        if g.state is ADVANCING:
                            g.clock = t
                            if t >= g.time_of_failure:
                                self._kill_failure(g, t)
                            elif t >= g.time_of_abort:
                                self._kill_abort(g, t)
                            else:
                                step(g)
                    elif k == K_CALL1:
                        a = ea[slot]
                        b = eb[slot]
                        ea[slot] = eb[slot] = None
                        free_append(slot)
                        a(b)
                    elif k == K_WAKE:
                        token = ea[slot]
                        b = eb[slot]
                        c = ec[slot]
                        eg[slot] = ea[slot] = eb[slot] = ec[slot] = None
                        free_append(slot)
                        if g.state is BLOCKED and g.wait_token == token:
                            if t > g.clock:
                                g.clock = t
                            if g.clock >= g.time_of_failure:
                                self._kill_failure(g, g.clock)
                            elif g.clock >= g.time_of_abort:
                                self._kill_abort(g, g.clock)
                            else:
                                step(g, b, c)
                    elif k == K_FAILURE:
                        eg[slot] = None
                        free_append(slot)
                        # The wait (or not-yet-started VP) provably extends
                        # past the scheduled failure time.
                        if g.state is BLOCKED or g.state is READY:
                            self._kill_failure(g, t)
                    elif k == K_RESUME_DELAYED:
                        value = ea[slot]
                        exc = eb[slot]
                        eg[slot] = ea[slot] = eb[slot] = None
                        free_append(slot)
                        if g.state is ADVANCING:
                            g.clock = t
                            if t >= g.time_of_failure:
                                self._kill_failure(g, t)
                            elif t >= g.time_of_abort:
                                self._kill_abort(g, t)
                            else:
                                step(g, value, exc)
                    else:  # K_CALL / K_GCALL: generic stored callable
                        a = ea[slot]
                        b = eb[slot]
                        eg[slot] = ea[slot] = eb[slot] = None
                        free_append(slot)
                        a(*b)
                if heap and heap[0][0] == t:
                    _t, _seq, slot = pop(heap)
                    continue
                break
            if batch > batch_max:
                batch_max = batch
        self.batch_max = batch_max

    def _drain_instrumented(self) -> None:
        """Run-to-quiescence with an event trace and/or sanitizer attached:
        per-event dispatch through the materialized ``(fn, args)`` so hook
        ordering and trace content match the heap engine exactly."""
        heap = self._heap
        pop = heappop
        trace = self.event_trace
        check = self.check
        while heap:
            t, seq, slot = pop(heap)
            if self._pending_abort is not None and t > self._pending_abort:
                self._apply_abort_sweep()
            g = self._eg[slot]
            if g is not None and g.epoch != self._ege[slot]:
                self._release(slot)
                self.stale_skipped += 1
                continue
            fn, args = self._materialize(t, slot)
            self._release(slot)
            if trace is not None:
                trace.record_dispatch(t, seq, g, fn, args)
            if check is not None:
                check.on_dispatch(t, seq, g)
            self.now = t
            self.event_count += 1
            fn(*args)

    # ------------------------------------------------------------------
    # windowed dispatch interface (sharded workers)
    # ------------------------------------------------------------------
    def next_event_time(self) -> float:
        heap = self._heap
        eg = self._eg
        ege = self._ege
        while heap:
            slot = heap[0][2]
            g = eg[slot]
            if g is not None and g.epoch != ege[slot]:
                heappop(heap)
                self._release(slot)
                self.stale_skipped += 1
                continue
            return heap[0][0]
        return math.inf

    def _dispatch_bounded(self, bound: float, inclusive: bool) -> None:
        heap = self._heap
        pop = heappop
        trace = self.event_trace
        check = self.check
        try:
            # Mirrors Engine._dispatch_bounded: non-inclusive windows
            # re-read ``_window_end`` every iteration (the sharded world
            # tightens it mid-dispatch after emitting an envelope).
            while heap and (
                heap[0][0] <= bound if inclusive else heap[0][0] < self._window_end
            ):
                t, seq, slot = pop(heap)
                if self._pending_abort is not None and t > self._pending_abort:
                    self._apply_abort_sweep()
                g = self._eg[slot]
                if g is not None and g.epoch != self._ege[slot]:
                    self._release(slot)
                    self.stale_skipped += 1
                    continue
                fn, args = self._materialize(t, slot)
                self._release(slot)
                if trace is not None:
                    trace.record_dispatch(t, seq, g, fn, args)
                if check is not None:
                    check.on_dispatch(t, seq, g)
                self.now = t
                self.event_count += 1
                fn(*args)
            effective = bound if inclusive else self._window_end
            if self._pending_abort is not None and (
                effective >= self._pending_abort
                if inclusive
                else effective > self._pending_abort
            ):
                self._apply_abort_sweep()
        finally:
            self._window_end = math.inf

    def deactivate_remote(self, owned: frozenset[int]) -> None:
        for vp in self.vps:
            if vp.rank in owned:
                continue
            vp.epoch += 1
            vp.state = VpState.BLOCKED
            vp.wait_tag = "remote-shard"
            self._live -= 1
            gen = vp.gen
            if gen is not None:
                gen.close()
                vp.gen = None
        ek = self._ek
        eg = self._eg
        ege = self._ege
        ea = self._ea
        eb = self._eb
        delay_due = self._delay_due
        keep: list[tuple[float, int, int]] = []
        for entry in self._heap:
            slot = entry[2]
            g = eg[slot]
            if g is not None:
                live = g.epoch == ege[slot]
            else:
                # Unguarded injected-delay events addressed to non-owned
                # ranks would otherwise fire (and be counted) in every
                # shard; everything else unguarded stays.
                live = not (
                    ek[slot] == K_CALL and ea[slot] == delay_due and eb[slot][0] not in owned
                )
            if live:
                keep.append(entry)
            else:
                self._release(slot)
        self._heap = keep
        heapify(keep)

    # ------------------------------------------------------------------
    # stepping virtual processes
    # ------------------------------------------------------------------
    def _step(
        self, vp: VirtualProcess, value: Any = None, exc: BaseException | None = None
    ) -> None:
        """Identical to :meth:`Engine._step` except the two heap pushes
        (delayed resume, Advance resume) allocate pool slots instead of
        tuples."""
        if vp.pending_delay > 0.0:
            delay, vp.pending_delay = vp.pending_delay, 0.0
            vp.state = VpState.ADVANCING
            slot = self._new_slot()
            self._ek[slot] = K_RESUME_DELAYED
            # (cold path — the inline allocation below is for Advance only)
            self._eg[slot] = vp
            self._ege[slot] = vp.epoch
            self._ea[slot] = value
            self._eb[slot] = exc
            self._seq += 1
            heappush(self._heap, (vp.clock + delay, self._seq, slot))
            return
        vp.state = VpState.RUNNING
        gen = vp.gen
        send = gen.send
        heap = self._heap
        ek = self._ek
        eg = self._eg
        ege = self._ege
        free = self._free
        coalesce = self.coalesce_advances
        window_end = self._window_end
        while True:
            try:
                if exc is not None:
                    err, exc = exc, None
                    item = gen.throw(err)
                else:
                    item = send(value)
            except StopIteration as stop:
                self._finish(vp, stop.value)
                return
            except XsimError:
                raise  # simulator/host errors crash the simulation
            except Exception as err:
                self._kill_failure(
                    vp, vp.clock, reason=f"uncaught {type(err).__name__}: {err}"
                )
                return
            value = None
            # The simulator has regained control: failure/abort control point.
            if vp.clock >= vp.time_of_failure:
                self._kill_failure(vp, vp.clock)
                return
            if vp.clock >= vp.time_of_abort:
                self._kill_abort(vp, vp.clock)
                return
            kind = type(item)
            if kind is Advance:
                dt = item.dt
                if dt < 0.0:
                    self._crash(vp, f"negative Advance({dt})")
                if dt == 0.0:
                    continue  # zero-cost control point; keep running
                if item.busy:
                    vp.busy_time += dt
                new_clock = vp.clock + dt
                if coalesce and new_clock < window_end and (not heap or heap[0][0] > new_clock):
                    # Inline control point — see Engine._step for why this
                    # preserves results and event accounting exactly.
                    if self.event_trace is not None:
                        self.event_trace.record_coalesced(new_clock, vp.rank)
                    if self.check is not None:
                        self.check.on_dispatch(new_clock, -1, vp)
                    self.now = new_clock
                    self.event_count += 1
                    self.coalesced_advances += 1
                    vp.clock = new_clock
                    if self._pending_abort is not None and new_clock > self._pending_abort:
                        self._apply_abort_sweep()  # leaving the abort instant
                    if new_clock >= vp.time_of_failure:
                        self._kill_failure(vp, new_clock)
                        return
                    if new_clock >= vp.time_of_abort:
                        self._kill_abort(vp, new_clock)
                        return
                    continue
                vp.state = VpState.ADVANCING
                # Inline _new_slot: one allocation per executed Advance
                # makes this the pool's hottest call site.
                self.pool_allocs += 1
                if free:
                    self.pool_reuses += 1
                    slot = free.pop()
                    used = self._pool_cap - len(free)
                    if used > self.pool_peak:
                        self.pool_peak = used
                else:
                    slot = self._grow()
                    free = self._free
                    used = self._pool_cap - len(free)
                    if used > self.pool_peak:
                        self.pool_peak = used
                ek[slot] = K_ADVANCE
                eg[slot] = vp
                ege[slot] = vp.epoch
                self._seq += 1
                heappush(heap, (new_clock, self._seq, slot))
                return
            if kind is Block:
                vp.state = VpState.BLOCKED
                vp.wait_token += 1
                vp.wait_tag = item.tag
                return
            self._crash(vp, f"yielded unknown request {item!r}")


class FlatEngine(_FlatCore, Engine):
    """Serial engine running on the flat event pool."""


def make_windowed_flat_engine_class():
    """The windowed (shard-worker) flat engine class.

    Built lazily so importing :mod:`repro.pdes.flatcore` does not drag in
    the sharded machinery (and vice versa — sharded imports nothing from
    here, keeping the import graph acyclic).
    """
    from repro.pdes.sharded import WindowedEngine

    class FlatWindowedEngine(_FlatCore, WindowedEngine):
        """Windowed engine variant running on the flat event pool."""

    return FlatWindowedEngine


_flat_windowed_cls = None


def flat_engine_class(windowed: bool):
    """The flat engine class for serial (``windowed=False``) or sharded
    (``windowed=True``) execution; the windowed class is built once."""
    if not windowed:
        return FlatEngine
    global _flat_windowed_cls
    if _flat_windowed_cls is None:
        _flat_windowed_cls = make_windowed_flat_engine_class()
    return _flat_windowed_cls
