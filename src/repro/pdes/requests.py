"""Engine primitives yielded by virtual-process coroutines.

A virtual process interacts with the simulator only by ``yield``-ing one of
these request objects (usually from inside the simulated MPI layer via
``yield from``).  Each yield is a point where "the simulator regains
control" in the paper's terminology — i.e. a failure/abort activation
point.

Only two primitives exist, mirroring the two ways an xSim VP gives up the
processor:

* :class:`Advance` — a simulator-internal clock update (timing function,
  modeled computation, file-system access, communication overhead).  The VP
  resumes once its virtual clock has advanced by ``dt``.
* :class:`Block` — park until some other component wakes the VP (message
  arrival, collective completion, rendezvous hand-shake, failure
  notification...).  The waker supplies the VP's new clock value and either
  a resume value or an exception to raise at the yield point.
"""

from __future__ import annotations


class Advance:
    """Advance the yielding VP's virtual clock by ``dt`` seconds.

    ``busy`` marks whether the interval occupies the simulated node's CPU
    (computation, per-message software overheads) or is a wait (I/O,
    detection timeouts).  The engine accumulates per-VP busy time for the
    power model's energy accounting.
    """

    __slots__ = ("dt", "busy")

    def __init__(self, dt: float, busy: bool = True):
        self.dt = dt
        self.busy = busy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Advance({self.dt!r}, busy={self.busy!r})"


class Block:
    """Park the yielding VP until it is woken.

    ``tag`` describes what is being waited on for deadlock reports and
    traces (e.g. ``"recv src=3 tag=7"``).  It may be any object whose
    ``str()`` yields that description — passing the pending request itself
    defers the string formatting to the (rare) moment a report needs it.
    """

    __slots__ = ("tag",)

    def __init__(self, tag: object = "blocked"):
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block({self.tag!r})"
