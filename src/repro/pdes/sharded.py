"""Sharded conservative-parallel PDES execution.

The real xSim is itself a parallel discrete event simulator: it scales by
distributing virtual processes over MPI and synchronizing conservatively.
This module gives :class:`~repro.core.simulator.XSim` the same property on
one multicore host.  Ranks are partitioned into *contiguous* shards, each
owned by one worker process that runs a full replica of the simulation with
the non-owned VPs deactivated.  Workers advance in *safe windows* — bounded
dispatch intervals whose width is the minimum cross-shard message latency
(the lookahead), so no in-flight remote message can ever land inside the
window that produced it.

Protocol
--------
A coordinator (the parent process) drives every worker through one of two
modes:

* **NORMAL** windows, used while the simulation is failure-free.  Let
  ``m_k`` be shard *k*'s next local event time, adjusted for envelopes
  queued toward it, and ``L[j][k]`` the per-shard-pair lookahead matrix
  (:func:`derive_lookahead_matrix`: the minimum wire latency between the
  two shards' rank blocks, closed under min-plus so relayed reactions are
  covered).  Shard *k* dispatches every event strictly before
  ``min(h_min, min_{j != k}(m_j + L[j][k]))`` where ``h_min`` is the
  earliest armed failure time: a message shard *j* might still send is
  posted at ``t >= m_j`` and reaches *k* no earlier than ``t + L[j][k]``,
  i.e. at or after *k*'s window end, so exchanging envelopes only at
  window barriers is safe.  (The pre-matrix scheme bounded every shard by
  the single *global* minimum latency, which collapses window widths to
  the machine-wide worst case even between shards that are many hops
  apart.)
* **LOCKSTEP**, entered permanently once ``m`` reaches ``h_min``.  Shards
  with the minimum timestamp run exactly that timestamp one shard at a
  time; failure kills and aborts they produce are relayed to every other
  shard as *directives* before any other shard executes the same
  timestamp.  This reproduces the serial engine's behavior around
  failures — detection wakes, failed-peer lists, ``MPI_Abort`` shutdown —
  because those effects are applied in the same virtual-time order.

Envelopes
---------
Cross-shard traffic uses two picklable tuple forms:

* ``("a", arrival, ctx, src, dst, tag, nbytes, payload, seq, protocol,
  req_id)`` — a message delivery, pushed onto the destination shard's heap
  exactly like a local ``_arrive`` event.  ``seq`` is a
  ``(post_time, src, per-source counter)`` tuple: unlike the serial global
  integer sequence it can be generated shard-locally, while preserving
  per-source ordering (non-overtaking) and deterministic buffer order.
* ``("r", src, req_id, t_send_done)`` — rendezvous completion flowing back
  to the sender's shard: the receiver matched the RTS and computed the
  clear-to-send + serialization finish time.

Failure injections, abort broadcasts, and the detection timeouts they
trigger ride the same coordinator path (as directives): resilience is
simulator-internal state that every shard must observe in the same
virtual-time order as the envelopes, or failed-lists and ``MPI_ANY_SOURCE``
release semantics would diverge from the serial oracle.

Parity contract
---------------
A sharded run must be observably identical to the serial run:
``result_digest`` equal, and the per-rank event trace projection
(:meth:`repro.check.trace.EventTrace.rank_projection`) equal.  Anything the
protocol cannot mirror raises :class:`~repro.util.errors.ShardedParityError`
instead of diverging: unscheduled failures inside a NORMAL window (e.g.
``fail_now`` or exit-without-finalize), simulator-internal sync points
spanning shards (ULFM shrink/agree, analytic collectives), communicator
handles crossing shards, and cross-shard revocation.

Transports
----------
``fork`` (default where available): workers are forked from the launched
parent simulation, so construction cost is paid once and copy-on-write
shares the launch state; envelopes travel over ``multiprocessing`` pipes.
``shm``: forked workers exchanging envelopes through shared-memory ring
buffers with a fixed packed encoding (:mod:`repro.pdes.shmring`) — the
pipe carries only small control headers, so the per-envelope pickle and
syscall costs of the fork transport disappear.
``inline``: every shard is an independently constructed replica driven in
one process — no parallelism, but bit-exact and debuggable, and the
mechanism the property tests use.

All three transports produce bit-identical digests; a worker process that
dies mid-protocol raises :class:`~repro.util.errors.ShardWorkerDied`
(liveness polling) instead of blocking the coordinator forever.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.checkpoint.store import CheckpointStore
from repro.mpi.communicator import Communicator


def _extract_stores(args: tuple) -> tuple[CheckpointStore, ...]:
    """Every checkpoint namespace riding in the app args: plain
    :class:`CheckpointStore` instances, plus the component namespaces of
    composite stores (e.g. the multi-level tier store) advertised via a
    ``component_stores()`` method.  Each shard's file-state deltas are
    merged back per namespace after a windowed run."""
    stores: list[CheckpointStore] = []
    for a in args:
        if isinstance(a, CheckpointStore):
            stores.append(a)
        else:
            components = getattr(a, "component_stores", None)
            if callable(components):
                stores.extend(s for s in components() if isinstance(s, CheckpointStore))
    return tuple(stores)
from repro.mpi.constants import ERR_REVOKED
from repro.mpi.messages import EAGER, RTS, Msg, Request
from repro.models.network.model import NetworkModel, NetworkTier
from repro.models.network.topology import (
    CrossbarTopology,
    FatTreeTopology,
    StarTopology,
    _GridTopology,
)
from repro.mpi.world import MpiWorld
from repro.pdes.context import VirtualProcess, VpState
from repro.pdes.engine import Engine, SimulationResult
from repro.pdes.shmring import RingPeerDead, ShmRing, pack_envelope, unpack_envelope
from repro.util.errors import (
    ConfigurationError,
    DeadlockError,
    ShardWorkerDied,
    ShardedParityError,
    SimulationError,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.simulator import XSim

__all__ = [
    "ShardStats",
    "ShardedMpiWorld",
    "WindowedEngine",
    "derive_lookahead",
    "derive_lookahead_matrix",
    "partition_ranks",
    "partition_ranks_topology",
    "run_sharded",
]


# ----------------------------------------------------------------------
# partitioning and lookahead
# ----------------------------------------------------------------------
def partition_ranks(nranks: int, nshards: int) -> list[range]:
    """Split ``range(nranks)`` into at most ``nshards`` contiguous,
    balanced shards (sizes differ by at most one).

    Contiguity is load-bearing: the lookahead derivation below relies on
    every cross-shard rank pair straddling a shard boundary, so the
    boundary pair's network tier bounds the pair's tier from below.
    """
    if nshards < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {nshards}")
    if nranks < 1:
        raise ConfigurationError(f"cannot shard a job of {nranks} ranks")
    nshards = min(nshards, nranks)
    base, extra = divmod(nranks, nshards)
    parts: list[range] = []
    start = 0
    for k in range(nshards):
        size = base + (1 if k < extra else 0)
        parts.append(range(start, start + size))
        start += size
    return parts


def derive_lookahead(network: NetworkModel, parts: list[range]) -> float:
    """The provably safe conservative lookahead for a contiguous partition.

    For a boundary between ranks ``b-1`` and ``b``: any cross-shard pair
    ``(i, j)`` with ``i < b <= j`` that shares a node (or chip) forces
    ``b-1`` and ``b`` to share it too (block rank placement + contiguity).
    Contrapositively, the boundary pair's tier bounds how *close* any pair
    crossing that boundary can be, so the minimum wire latency over the
    admissible tiers is a lower bound on every cross-shard latency:

    * boundary on different nodes  -> every crossing pair is inter-node:
      latency >= system tier latency (>= one hop);
    * boundary on one node, different chips -> crossing pairs are at
      closest on-node;
    * boundary on one chip -> no constraint, take the minimum tier.
    """
    sys_lat = network.system.latency
    node_lat = network.on_node.latency
    chip_lat = network.on_chip.latency
    lookahead = math.inf
    for part in parts[1:]:
        b = part[0]
        tier = network.tier(b - 1, b)
        if tier is NetworkTier.SYSTEM:
            bound = sys_lat
        elif tier is NetworkTier.ON_NODE:
            bound = min(node_lat, sys_lat)
        else:
            bound = min(chip_lat, node_lat, sys_lat)
        lookahead = min(lookahead, bound)
    if math.isinf(lookahead):
        raise ConfigurationError("lookahead is only defined for >= 2 shards")
    if lookahead <= 0.0:
        raise ConfigurationError(
            "sharded execution requires a positive minimum cross-shard wire "
            f"latency; this network derives a lookahead of {lookahead!r}"
        )
    return lookahead


def _arc_of(lo: int, hi: int, stride: int, dim: int) -> tuple[int, int] | None:
    """The wrapped coordinate arc one axis of a contiguous node range spans.

    For row-major ids, ``(i // stride) % dim`` increases weakly (mod wrap)
    over ``[lo, hi]``, so the touched coordinates form a wrapped inclusive
    arc ``(c0, c1)`` — or the full axis (``None``) once the unwrapped
    interval covers ``dim`` steps.
    """
    if hi // stride - lo // stride + 1 >= dim:
        return None
    return ((lo // stride) % dim, (hi // stride) % dim)


def _arc_distance(
    a: tuple[int, int] | None, b: tuple[int, int] | None, dim: int, wrap: bool
) -> int:
    """Minimum per-axis distance between two wrapped coordinate arcs."""
    if a is None or b is None:
        return 0
    a0, a1 = a
    b0, b1 = b
    # Arcs on a circle intersect iff an endpoint of one lies in the other.
    if (b0 - a0) % dim <= (a1 - a0) % dim or (a0 - b0) % dim <= (b1 - b0) % dim:
        return 0
    # Disjoint arcs: the closest points are endpoints.
    best = dim
    for u in (a0, a1):
        for v in (b0, b1):
            d = abs(u - v)
            if wrap:
                d = min(d, dim - d)
            best = min(best, d)
    return best


def _min_cross_hops(topology, nodes_a: tuple[int, int], nodes_b: tuple[int, int]) -> int:
    """A safe lower bound on hops between two contiguous node-id ranges.

    ``nodes_a``/``nodes_b`` are inclusive ``(lo, hi)`` ranges from the
    block rank placement.  Grids get the per-axis arc distance sum (exact
    for dimension-order routing between arcs), fat trees the boundary pair
    (contiguous leaf blocks minimize the common-ancestor climb at their
    facing edge), star/crossbar any pair (all pairs are equidistant).
    Unknown topologies fall back to 1 hop — any lower bound is safe, a
    loose one merely costs window width.
    """
    if isinstance(topology, _GridTopology):
        total = 0
        for stride, dim in zip(topology._strides, topology.dims):
            total += _arc_distance(
                _arc_of(nodes_a[0], nodes_a[1], stride, dim),
                _arc_of(nodes_b[0], nodes_b[1], stride, dim),
                dim,
                topology.wrap,
            )
        return max(1, total)
    if isinstance(topology, FatTreeTopology):
        if nodes_a[0] > nodes_b[0]:
            nodes_a, nodes_b = nodes_b, nodes_a
        return max(1, topology.hops(nodes_a[1], nodes_b[0]))
    if isinstance(topology, (StarTopology, CrossbarTopology)):
        return max(1, topology.hops(nodes_a[1], nodes_b[0]))
    return 1


def derive_lookahead_matrix(
    network: NetworkModel, parts: list[range]
) -> list[list[float]]:
    """Per-shard-pair safe lookahead: ``L[j][k]`` lower-bounds the wire
    latency of every message from shard ``j`` to shard ``k``.

    Built in two steps:

    1. *Pairwise bound.*  Block placement is monotone in the rank index,
       so the tier of the closest pair between blocks ``j < k`` is the
       tier of ``(parts[j][-1], parts[k][0])`` — the same boundary-pair
       argument :func:`derive_lookahead` makes per boundary.  For pairs
       whose closest tier is the system network, the bound is
       ``system latency x min-hops`` between the two shards' node ranges
       (:func:`_min_cross_hops`), not just one hop: distant shards get
       proportionally wider windows.
    2. *Min-plus closure* (Floyd-Warshall).  A shard can react to an
       envelope *indirectly* — ``j`` wakes ``i``, ``i`` sends to ``k`` —
       so the matrix must satisfy the triangle inequality
       ``L[j][k] <= L[j][i] + L[i][k]``; closing it only ever lowers
       entries, and every closed entry still dominates the global
       :func:`derive_lookahead` bound (each summand does).

    The diagonal is ``inf`` (a shard never bounds itself).
    """
    n = len(parts)
    if n < 2:
        raise ConfigurationError("lookahead is only defined for >= 2 shards")
    sys_lat = network.system.latency
    node_lat = network.on_node.latency
    chip_lat = network.on_chip.latency
    topology = network.topology
    la = [[math.inf] * n for _ in range(n)]
    for j in range(n):
        for k in range(j + 1, n):
            a_hi, b_lo = parts[j][-1], parts[k][0]
            tier = network.tier(a_hi, b_lo)
            if tier is NetworkTier.SYSTEM:
                hops = _min_cross_hops(
                    topology,
                    (network.node_of(parts[j][0]), network.node_of(a_hi)),
                    (network.node_of(b_lo), network.node_of(parts[k][-1])),
                )
                bound = sys_lat * max(1, hops)
            elif tier is NetworkTier.ON_NODE:
                bound = min(node_lat, sys_lat)
            else:
                bound = min(chip_lat, node_lat, sys_lat)
            la[j][k] = la[k][j] = bound
    for mid in range(n):
        row_m = la[mid]
        for i in range(n):
            if i == mid:
                continue
            via = la[i][mid]
            if math.isinf(via):
                continue
            row_i = la[i]
            for j in range(n):
                if j == i or j == mid:
                    continue
                alt = via + row_m[j]
                if alt < row_i[j]:
                    row_i[j] = alt
    floor = min(la[j][k] for j in range(n) for k in range(n) if j != k)
    if floor <= 0.0:
        raise ConfigurationError(
            "sharded execution requires a positive minimum cross-shard wire "
            f"latency; this network derives a lookahead of {floor!r}"
        )
    return la


# ----------------------------------------------------------------------
# topology-aware partitioning
# ----------------------------------------------------------------------
#: Cost charged to a candidate boundary that splits the ranks of one
#: compute node across shards (every such split turns loopback traffic
#: into network traffic and voids the node-boundary link count).
_INTRA_NODE_CUT = 1 << 30


def _boundary_cut_costs(network: NetworkModel, nranks: int) -> list[int] | None:
    """Cross-shard link count for every candidate rank boundary.

    ``costs[b]`` is the number of direct topology links joining nodes on
    either side of a cut between ranks ``b-1`` and ``b`` (valid for
    ``1 <= b < nranks``).  Computed with a difference array over
    ``topology.neighbors``: a link ``{u, v}`` with ``u < v`` is cut by
    exactly the node boundaries in ``(u, v]`` — which counts wrap links
    correctly (a torus ring's wrap edge is cut by *every* interior
    boundary, matching contiguous-block reality).  Returns ``None`` when
    the topology carries no placement signal (all-pairs graphs like
    star/crossbar, where every balanced cut is equivalent) or would be
    quadratic to scan.
    """
    topology = network.topology
    rpn = network.ranks_per_node
    nnodes = (nranks + rpn - 1) // rpn
    if nnodes < 2:
        return None
    degree = len(topology.neighbors(0))
    if degree >= nnodes - 1 or nnodes * degree > 4_000_000:
        return None
    diff = [0] * (nnodes + 1)
    for u in range(nnodes):
        for v in topology.neighbors(u):
            if v <= u or v >= nnodes:
                continue  # counted from the lower endpoint; unused nodes hold no ranks
            diff[u + 1] += 1
            diff[v + 1] -= 1
    node_cuts = [0] * (nnodes + 1)
    acc = 0
    for b in range(1, nnodes):
        acc += diff[b]
        node_cuts[b] = acc
    costs = [0] * nranks
    for b in range(1, nranks):
        costs[b] = node_cuts[b // rpn] if b % rpn == 0 else _INTRA_NODE_CUT
    return costs


def partition_ranks_topology(
    nranks: int, nshards: int, network: NetworkModel, slack: float = 0.125
) -> list[range]:
    """Contiguous partition whose cuts minimize cross-shard wire count.

    Starts from the balanced :func:`partition_ranks` split and slides each
    boundary independently within ``+- floor(base_size * slack)`` ranks to
    the position cutting the fewest topology links (ties broken toward
    balance, then the lower index — so a featureless topology degenerates
    to the equal split exactly).  The slide windows are disjoint
    (``slack < 0.5``), which preserves ordering and the contiguity
    invariant the lookahead derivation relies on, and bounds the imbalance
    at ``1 + 2*slack``.
    """
    parts = partition_ranks(nranks, nshards)
    if len(parts) < 2:
        return parts
    costs = _boundary_cut_costs(network, nranks)
    if costs is None:
        return parts
    width = int((nranks // len(parts)) * slack)
    if width <= 0:
        return parts
    edges = [0]
    for part in parts[1:]:
        b0 = part[0]
        lo = max(edges[-1] + 1, b0 - width)
        hi = min(nranks - 1, b0 + width)
        edges.append(
            min(range(lo, hi + 1), key=lambda b: (costs[b], abs(b - b0), b))
        )
    edges.append(nranks)
    return [range(a, b) for a, b in zip(edges, edges[1:])]


class _RemoteSendRef:
    """Stand-in for a rendezvous send request living in another shard.

    Stored in ``Msg.send_req`` of a cross-shard RTS; ``_rendezvous``
    recognizes it and answers with an ``("r", ...)`` envelope instead of
    completing the sender's request directly.
    """

    __slots__ = ("req_id",)

    def __init__(self, req_id: int):
        self.req_id = req_id


# ----------------------------------------------------------------------
# run statistics (consumed by EngineProfiler / bench)
# ----------------------------------------------------------------------
@dataclass
class ShardStats:
    """Coordination statistics of one sharded run."""

    nshards: int
    lookahead: float
    transport: str
    #: NORMAL safe windows executed (one barrier each).
    windows: int = 0
    #: LOCKSTEP rounds (per-timestamp exact steps + directive deliveries).
    lockstep_rounds: int = 0
    #: Wall time the coordinator spent beyond the slowest worker per round —
    #: the protocol/IPC overhead the windows add on top of useful work.
    barrier_seconds: float = 0.0
    #: Sum over rounds of the *slowest participating worker's* wall time —
    #: the inherent serial fraction of the run.  With ``nshards`` real cores
    #: the whole run cannot finish faster than this plus barrier overhead,
    #: so ``worker_busy_seconds / critical_path_seconds`` is the measured
    #: parallelism of the partition independent of how many host cores the
    #: benchmark machine happens to have.
    critical_path_seconds: float = 0.0
    #: Sum of every worker's wall time across all rounds (the total useful
    #: work; on a single-core host this approximates the serial run time).
    worker_busy_seconds: float = 0.0
    #: Events dispatched per shard (filled at merge).
    shard_events: list[int] = field(default_factory=list)
    #: Messages that crossed a shard boundary, summed over shards.
    cross_shard_messages: int = 0
    #: Largest entry of the per-pair lookahead matrix (``lookahead`` holds
    #: the smallest — the old global bound every pair dominates).
    lookahead_max: float = 0.0
    #: Transport the caller asked for (``None`` = auto-select).
    requested_transport: str | None = None
    #: True when an unavailable fork start method forced the requested
    #: fork/shm transport down to inline (surfaced via SimLog/obs too).
    transport_fallback: bool = False
    #: Shard sizes of the (possibly topology-slid) partition.
    partition: list[int] = field(default_factory=list)

    @property
    def imbalance(self) -> float:
        """Events-per-shard imbalance, ``max/mean`` (1.0 = perfect)."""
        if not self.shard_events or sum(self.shard_events) == 0:
            return 0.0
        mean = sum(self.shard_events) / len(self.shard_events)
        return max(self.shard_events) / mean

    @property
    def parallelism(self) -> float:
        """Measured parallelism: total worker work / critical path.

        This is the wall-clock speedup the partition would achieve with one
        real core per shard and zero coordination cost; it is meaningful
        even when the benchmark host timeshares all workers on fewer cores
        (each round's per-worker wall times are still measured).
        """
        if self.critical_path_seconds <= 0.0:
            return 1.0
        return self.worker_busy_seconds / self.critical_path_seconds


@dataclass
class ShardReport:
    """Everything one worker ships back after quiescence."""

    shard_id: int
    #: rank -> (state value, clock, end_time, busy_time, exit_value, wait_tag)
    ranks: dict[int, tuple]
    failures: list[tuple[int, float]]
    aborted: bool
    abort_time: float | None
    abort_rank: int | None
    event_count: int
    stale_skipped: int
    coalesced_advances: int
    match_scan_calls: int
    match_scan_length: int
    messages_sent: int
    bytes_sent: int
    cross_shard_msgs: int
    log_entries: list
    trace_entries: list | None
    #: Observer events collected by this worker's shard-local
    #: :class:`~repro.obs.Observer` (``None`` when observability is off).
    obs_entries: list | None
    #: (owned checkpoint files, writes delta, deletes delta) — fork only.
    store_delta: tuple | None


# ----------------------------------------------------------------------
# worker-side engine / world
# ----------------------------------------------------------------------
class WindowedEngine(Engine):
    """Engine variant driven through bounded windows by a shard worker.

    Unconfigured instances (``shard_id is None``) behave exactly like the
    serial :class:`Engine`; the coordinator-side template never dispatches
    events, and replicas act serial until :meth:`configure_shard`.
    """

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.shard_id: int | None = None
        self.owned: frozenset[int] = frozenset()
        #: True once the coordinator switched this run to per-timestamp
        #: lockstep (the only mode in which failures/aborts may occur).
        self.lockstep = False

    def configure_shard(self, shard_id: int, owned: frozenset[int]) -> None:
        self.shard_id = shard_id
        self.owned = frozenset(owned)
        self.deactivate_remote(self.owned)

    # -- resilience surface overrides ---------------------------------
    def request_abort(self, time: float, initiator: int) -> None:
        if self.shard_id is None:
            super().request_abort(time, initiator)
            return
        if not self.lockstep:
            raise ShardedParityError(
                f"MPI_Abort from rank {initiator} at {time} inside a "
                "conservative window; aborts can only follow armed failures "
                "under --shards > 1"
            )
        if self.aborting:
            return
        self.aborting = True
        self.abort_time = time
        self.abort_rank = initiator
        # Logged only in the initiating shard so the merged log carries the
        # line exactly once, like the serial run.
        self.log.log(time, "abort", "MPI_Abort invoked", rank=initiator)
        if self.obs is not None:
            self.obs.instant(time, "abort", rank=initiator, track="resilience")
        self._pending_abort = time

    def apply_remote_abort(self, time: float, initiator: int) -> None:
        """Abort broadcast relayed from another shard (directive path).

        Arms the same deferred end-of-instant sweep a local
        ``request_abort`` does.  The directive arrives before this shard
        executes the abort instant, and the sweep only applies once its
        dispatch leaves that instant — so every shard's ranks observe the
        broadcast at the same point in virtual time as the serial run,
        regardless of which shard initiated it.
        """
        if self.aborting:
            return
        self.aborting = True
        self.abort_time = time
        self.abort_rank = initiator
        self._pending_abort = time

    def _apply_abort_sweep(self) -> None:
        # Serial sweep iterates every VP; here remote placeholders are
        # skipped — their owning shard applies the same broadcast.
        time = self._pending_abort
        self._pending_abort = None
        for rank in sorted(self.owned):
            vp = self.vps[rank]
            if not vp.alive:
                continue
            vp.time_of_abort = min(vp.time_of_abort, time)
            if vp.state is VpState.BLOCKED or vp.state is VpState.READY:
                self._kill_abort(vp, max(vp.clock, time))

    def fail_now(self, rank: int, reason: str = "application-triggered failure") -> None:
        if self.shard_id is not None:
            if rank not in self.owned:
                raise ShardedParityError(
                    f"fail_now({rank}) targets a rank owned by another shard"
                )
            if not self.lockstep:
                raise ShardedParityError(
                    f"fail_now({rank}) inside a conservative window; only "
                    "failures armed before the run are supported with "
                    "--shards > 1"
                )
        super().fail_now(rank, reason)


class ShardedMpiWorld(MpiWorld):
    """MPI layer that diverts cross-shard traffic into envelopes.

    Unconfigured instances behave exactly like :class:`MpiWorld`.
    """

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.shard_id: int | None = None
        self.owned: frozenset[int] = frozenset()
        #: Conservative lookahead floor (min cross-shard wire latency);
        #: bounds how soon another shard can react to an emitted envelope.
        self.lookahead = 0.0
        #: Per-destination-shard lookahead (this shard's row of the closed
        #: matrix) and the rank -> shard map backing it; ``None`` falls
        #: back to the scalar floor for every destination.
        self._la_row: tuple[float, ...] | None = None
        self._owner: tuple[int, ...] | None = None
        #: Envelopes produced since the last barrier (drained per round).
        self.outbox: list[tuple] = []
        #: Per-source message counters backing the tuple sequence numbers.
        self._src_counters: dict[int, int] = {}
        #: Outstanding cross-shard rendezvous sends by local request id.
        self._rdv_out: dict[int, Request] = {}
        self._rdv_id = 0
        self.cross_shard_msgs = 0

    def configure_shard(
        self,
        shard_id: int,
        owned: frozenset[int],
        lookahead: float = 0.0,
        la_row: tuple[float, ...] | None = None,
        owner: tuple[int, ...] | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.owned = frozenset(owned)
        self.lookahead = lookahead
        self._la_row = la_row
        self._owner = owner

    def _tighten_window(self, t_effective: float, dst: int) -> None:
        """Cap the running window after revealing ``t_effective`` to a peer.

        Once an envelope leaves this shard, its destination's shard can
        react at the envelope's effective time (arrival for a delivery,
        completion time for a rendezvous ack) and send something back that
        reaches us that shard's lookahead-row entry later (closure covers
        reactions relayed through third shards) — so events at or beyond
        that are only safe to dispatch in a *later* window, after the
        coordinator has routed the reply.  Tightening only ever lowers the
        bound; lockstep exact steps are unaffected (their inclusive bound
        is the step time itself).
        """
        engine = self.engine
        if self._la_row is not None and self._owner is not None:
            cap = t_effective + self._la_row[self._owner[dst]]
        else:
            cap = t_effective + self.lookahead
        if cap < engine._window_end:
            engine._window_end = cap

    # -- sending -------------------------------------------------------
    def post_send(
        self,
        vp: VirtualProcess,
        comm: Communicator,
        ctx: int,
        dst: int,
        tag: int,
        payload: Any,
        nbytes: int,
    ) -> Request:
        if self.shard_id is None:
            return super().post_send(vp, comm, ctx, dst, tag, payload, nbytes)
        clock = vp.clock
        req = Request(Request.SEND, vp, comm, ctx, vp.rank, dst, tag, nbytes, clock)
        if comm.revoked:
            req.fail(clock, ERR_REVOKED)
            return req
        failed_at = vp.failed_peers.get(dst)
        if failed_at is not None and self._failure_visible(vp, dst, failed_at):
            self._fail_from_list(req, dst)
            return req
        network = self.network
        self._msg_seq += 1
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if isinstance(payload, np.ndarray):
            payload = payload.copy()  # eager/rendezvous buffering semantics
        # Shard-local sequence: (post time, source, per-source counter)
        # orders identically to the serial global counter wherever ordering
        # is observable (per-source non-overtaking; buffer insertion).
        counter = self._src_counters.get(vp.rank, 0) + 1
        self._src_counters[vp.rank] = counter
        seq = (clock, vp.rank, counter)
        engine = self.engine
        eager = nbytes <= network.eager_threshold
        # Link degradation mirrors the serial cost computation exactly
        # (factors >= 1, so the undegraded lookahead stays a lower bound).
        link_f = (
            self.faults.link_factor(vp.rank, dst, clock)
            if self.faults.active_links
            else 1.0
        )
        if eager:
            arrival = clock + link_f * network.transfer_time(nbytes, vp.rank, dst)
            req.complete(clock)
        else:
            arrival = clock + link_f * network.wire_latency(vp.rank, dst)
            if failed_at is not None:
                # Posted before the notification became visible: behaves
                # as pre-posted, paying the detection timeout (mirrors the
                # serial :meth:`MpiWorld.post_send`).
                self._release_failed(req, dst, failed_at)
            else:
                self.states[vp.rank].rdv_sends.append(req)
        if dst in self.owned:
            msg = Msg(
                ctx, vp.rank, dst, tag, nbytes, payload, seq,
                EAGER if eager else RTS, send_req=None if eager else req,
            )
            if arrival < engine.now:
                raise SimulationError(
                    f"cannot schedule into the past ({arrival} < {engine.now})"
                )
            engine.post_event(arrival, self._arrive, msg)
        else:
            if isinstance(payload, Communicator):
                raise ShardedParityError(
                    "a communicator handle cannot cross shard boundaries "
                    "(MPI_Comm_dup/split build shared per-rank tables); run "
                    "communicator-creating applications with --shards 1"
                )
            self.cross_shard_msgs += 1
            req_id = None
            if not eager:
                self._rdv_id += 1
                req_id = self._rdv_id
                self._rdv_out[req_id] = req
            self.outbox.append(
                (
                    "a", arrival, ctx, vp.rank, dst, tag, nbytes, payload, seq,
                    EAGER if eager else RTS, req_id,
                )
            )
            self._tighten_window(arrival, dst)
        return req

    # -- rendezvous across the boundary --------------------------------
    def _rendezvous(self, req: Request, rts: Msg, t_match: float) -> None:
        ref = rts.send_req
        if self.shard_id is not None and isinstance(ref, _RemoteSendRef):
            src, dst = rts.src, rts.dst
            link_f = (
                self.faults.link_factor(src, dst, t_match)
                if self.faults.active_links
                else 1.0
            )
            t_cts = t_match + link_f * self.network.wire_latency(dst, src)
            t_send_done = t_cts + link_f * self.network.serialization_time(
                rts.nbytes, src, dst
            )
            t_recv_done = t_cts + link_f * self.network.transfer_time(
                rts.nbytes, src, dst
            )
            # The sender's completion travels back as an envelope; it is
            # window-safe because t_send_done >= t_match + lookahead.
            self.outbox.append(("r", src, ref.req_id, t_send_done))
            self._tighten_window(t_send_done, src)
            req.complete(t_recv_done, result=rts)
            if req.waiting:
                self.engine.wake(req.vp, t_recv_done)
            return
        super()._rendezvous(req, rts, t_match)

    # -- envelope application (barrier side) ----------------------------
    def apply_arrival(self, env: tuple) -> None:
        """Queue a cross-shard message delivery on the local heap."""
        _, arrival, ctx, src, dst, tag, nbytes, payload, seq, protocol, req_id = env
        send_ref = _RemoteSendRef(req_id) if protocol == RTS else None
        msg = Msg(ctx, src, dst, tag, nbytes, payload, seq, protocol, send_req=send_ref)
        engine = self.engine
        if arrival < engine.now:
            raise ShardedParityError(
                f"causality violation: envelope arriving at {arrival} behind "
                f"shard clock {engine.now}"
            )
        engine.post_event(arrival, self._arrive, msg)

    def apply_rdv_done(self, req_id: int, t_send_done: float) -> None:
        """Complete a cross-shard rendezvous send (receiver matched it)."""
        req = self._rdv_out.pop(req_id, None)
        if req is None or req.done:
            return  # released by a failure notification in the meantime
        state = self.states[req.src]
        if req in state.rdv_sends:
            state.rdv_sends.remove(req)
        req.complete(t_send_done)
        if req.waiting:
            self.engine.wake(req.vp, t_send_done)

    def apply_remote_failure(self, rank: int, t_kill: float) -> None:
        """Failure of a rank owned by another shard (directive path).

        Flips the local placeholder to FAILED (no log line, no entry in
        ``engine.failures`` — the owner reports both) and runs the same
        ``_on_failure`` notification the serial engine triggers: clears the
        dead rank's queues, extends every local failed-peers list, prunes
        in-flight rendezvous, and schedules detection-timeout releases.
        """
        if rank in self.owned:
            raise SimulationError(f"remote-failure directive for owned rank {rank}")
        vp = self.engine.vps[rank]
        if not vp.alive:
            return
        vp.epoch += 1
        vp.state = VpState.FAILED
        vp.clock = max(vp.clock, t_kill)
        vp.end_time = vp.clock
        vp.time_of_failure = min(vp.time_of_failure, t_kill)
        self._on_failure(vp, t_kill)

    # -- unsupported-across-shards guards -------------------------------
    def sync_arrive(self, vp, comm, kind, seq, value=None, cost_fn=None):
        if self.shard_id is not None and any(r not in self.owned for r in comm.group):
            raise ShardedParityError(
                f"simulator-internal sync point ({kind}) on {comm.name} spans "
                "shard boundaries; MPI_Comm_shrink/MPI_Comm_agree and "
                "analytic collectives require --shards 1"
            )
        return super().sync_arrive(vp, comm, kind, seq, value=value, cost_fn=cost_fn)

    def revoke(self, comm: Communicator, t: float, initiator: int) -> None:
        if self.shard_id is not None and any(r not in self.owned for r in comm.group):
            raise ShardedParityError(
                f"revocation of {comm.name} spans shard boundaries; ULFM "
                "revoke/shrink workloads require --shards 1"
            )
        super().revoke(comm, t, initiator)

    def _obs_owns(self, rank: int) -> bool:
        # Failure broadcasts replay in every shard; only the owner of a
        # rank emits its observer events, so the merged stream matches
        # the serial run's exactly.
        return self.shard_id is None or rank in self.owned


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
class ShardWorker:
    """Drives one shard's engine under the coordinator protocol."""

    def __init__(
        self,
        sim: "XSim",
        shard_id: int,
        owned: range,
        lookahead: float = 0.0,
        la_row: tuple[float, ...] | None = None,
        owner: tuple[int, ...] | None = None,
    ):
        self.sim = sim
        self.engine: WindowedEngine = sim.engine  # type: ignore[assignment]
        self.world: ShardedMpiWorld = sim.world  # type: ignore[assignment]
        self.shard_id = shard_id
        self.lookahead = lookahead
        self.la_row = la_row
        self.owner = owner
        self.owned = frozenset(owned)
        self.owned_sorted = sorted(owned)
        self._fail_base = 0
        self._abort_reported = False
        self._stores: tuple[CheckpointStore, ...] = ()
        self._store_bases: tuple[tuple[int, int], ...] = ()
        self._obs = None

    def setup(self, stores: tuple[CheckpointStore, ...] = ()) -> float:
        engine = self.engine
        # Workers record log entries only; the coordinator echoes the
        # merged, time-ordered stream once.
        engine.log.stream = None
        # A fresh shard-local bus (None when observability is off): the
        # inline shard-0 worker shares its sim (and hence observer) with
        # the coordinator, so recording into the parent directly would
        # duplicate events at merge time.  Events ship back via
        # ShardReport.
        from repro.run.instruments import make_shard_observer

        self._obs = make_shard_observer(getattr(self.sim, "observer", None))
        if self._obs is not None:
            engine.obs = self._obs
            self.world.obs = self._obs
        self.world.configure_shard(
            self.shard_id, self.owned, self.lookahead, self.la_row, self.owner
        )
        engine.configure_shard(self.shard_id, self.owned)
        engine.begin_windowed_run()
        self._stores = tuple(stores)
        self._store_bases = tuple((s.writes, s.deletes) for s in self._stores)
        return engine.next_event_time()

    def apply(self, envelopes: list[tuple], directives: tuple | list) -> None:
        # Deterministic application order: rendezvous completions first
        # (their matches happened before any same-round failure), then
        # directives (failures/aborts precede later arrivals in serial
        # dispatch order), then deliveries sorted by (arrival, seq).
        rdv = sorted((e for e in envelopes if e[0] == "r"), key=lambda e: (e[3], e[2]))
        arrivals = sorted((e for e in envelopes if e[0] == "a"), key=lambda e: (e[1], e[8]))
        for env in rdv:
            self.world.apply_rdv_done(env[2], env[3])
        for directive in directives:
            self._apply_directive(directive)
        for env in arrivals:
            self.world.apply_arrival(env)

    def _apply_directive(self, directive: tuple) -> None:
        kind = directive[0]
        if kind == "lockstep":
            self.engine.lockstep = True
        elif kind == "fail":
            self.world.apply_remote_failure(directive[1], directive[2])
        elif kind == "abort":
            self._abort_reported = True
            self.engine.apply_remote_abort(directive[1], directive[2])
        else:
            raise SimulationError(f"unknown shard directive {directive!r}")

    def run_window(self, end: float) -> tuple:
        t0 = perf_counter()
        self.engine.run_window(end)
        if self._obs is not None:
            self._obs.host_span(
                t0, perf_counter(), "window", track=f"shard {self.shard_id}",
                args={"end": end},
            )
        return self._reply(t0)

    def run_exact(self, time: float) -> tuple:
        t0 = perf_counter()
        self.engine.run_exact(time)
        if self._obs is not None:
            self._obs.host_span(
                t0, perf_counter(), "lockstep", track=f"shard {self.shard_id}",
                args={"time": time},
            )
        return self._reply(t0)

    def _reply(self, t0: float) -> tuple:
        engine = self.engine
        out, self.world.outbox = self.world.outbox, []
        fails = list(engine.failures[self._fail_base :])
        self._fail_base = len(engine.failures)
        abort = None
        if engine.aborting and not self._abort_reported:
            self._abort_reported = True
            abort = (engine.abort_time, engine.abort_rank)
        return (engine.next_event_time(), out, fails, abort, perf_counter() - t0)

    def finish(self) -> ShardReport:
        engine = self.engine
        if engine._pending_abort is not None:
            # No event past the abort instant ever ran in this shard; the
            # deferred sweep still owes the blocked-rank kills.
            engine._apply_abort_sweep()
        engine.finish_windowed_run()
        ranks: dict[int, tuple] = {}
        for rank in self.owned_sorted:
            vp = engine.vps[rank]
            ranks[rank] = (
                vp.state.value,
                vp.clock,
                vp.end_time,
                vp.busy_time,
                vp.exit_value,
                str(vp.wait_tag),
            )
        store_delta = None
        if self._stores:
            store_delta = tuple(
                (
                    {key: f for key, f in s._files.items() if key[1] in self.owned},
                    s.writes - base[0],
                    s.deletes - base[1],
                )
                for s, base in zip(self._stores, self._store_bases)
            )
        world = self.world
        trace = engine.event_trace
        return ShardReport(
            shard_id=self.shard_id,
            ranks=ranks,
            failures=list(engine.failures),
            aborted=engine.aborting,
            abort_time=engine.abort_time,
            abort_rank=engine.abort_rank,
            event_count=engine.event_count,
            stale_skipped=engine.stale_skipped,
            coalesced_advances=engine.coalesced_advances,
            match_scan_calls=world.match_scan_calls,
            match_scan_length=world.match_scan_length,
            messages_sent=world.messages_sent,
            bytes_sent=world.bytes_sent,
            cross_shard_msgs=world.cross_shard_msgs,
            log_entries=list(engine.log.entries),
            trace_entries=list(trace.entries) if trace is not None else None,
            obs_entries=list(self._obs.events) if self._obs is not None else None,
            store_delta=store_delta,
        )


def _handle_op(worker: ShardWorker, msg: tuple) -> Any:
    op = msg[0]
    if op == "window":
        worker.apply(msg[2], ())
        return worker.run_window(msg[1])
    if op == "exact":
        return worker.run_exact(msg[1])
    if op == "apply":
        worker.apply(msg[1], msg[2])
        return worker.engine.next_event_time()
    if op == "finish":
        return worker.finish()
    raise SimulationError(f"unknown shard op {op!r}")


def _forked_worker_main(
    conn, worker: ShardWorker, stores: tuple[CheckpointStore, ...]
) -> None:
    """Child-process loop of the fork transport."""
    status = 0
    try:
        try:
            conn.send(("ok", worker.setup(stores=stores)))
            while True:
                msg = conn.recv()
                if msg[0] == "close":
                    break
                conn.send(("ok", _handle_op(worker, msg)))
        except EOFError:
            pass
        except BaseException as err:
            status = 1
            try:
                conn.send(("error", f"{type(err).__name__}: {err}"))
            except Exception:
                pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
        # Skip the parent's interpreter teardown (atexit hooks, pytest
        # machinery) inherited by the fork.
        os._exit(status)


def _shm_worker_main(
    conn,
    worker: ShardWorker,
    stores: tuple[CheckpointStore, ...],
    ring_in: ShmRing,
    ring_out: ShmRing,
) -> None:
    """Child-process loop of the shm transport.

    The pipe carries only control headers (op, window end, record counts,
    fail/abort summaries); envelopes stream through the rings in the packed
    encoding.  Headers always precede ring traffic in both directions, so
    neither side ever blocks on a ring the other has not started draining.
    """
    status = 0
    parent = mp.parent_process()
    alive = parent.is_alive if parent is not None else None
    try:
        try:
            conn.send(("ok", worker.setup(stores=stores)))
            while True:
                msg = conn.recv()
                op = msg[0]
                if op == "close":
                    break
                if op == "window":
                    envs = [
                        unpack_envelope(ring_in.read(alive=alive))
                        for _ in range(msg[2])
                    ]
                    worker.apply(envs, ())
                    m_next, out, fails, abort, wall = worker.run_window(msg[1])
                elif op == "exact":
                    m_next, out, fails, abort, wall = worker.run_exact(msg[1])
                elif op == "apply":
                    envs = [
                        unpack_envelope(ring_in.read(alive=alive))
                        for _ in range(msg[1])
                    ]
                    worker.apply(envs, msg[2])
                    conn.send(("ok", worker.engine.next_event_time()))
                    continue
                elif op == "finish":
                    conn.send(("ok", worker.finish()))
                    continue
                else:
                    raise SimulationError(f"unknown shard op {op!r}")
                conn.send(("ok", (m_next, len(out), fails, abort, wall)))
                for env in out:
                    ring_out.write(pack_envelope(env), alive=alive)
        except EOFError:
            pass
        except BaseException as err:
            status = 1
            try:
                conn.send(("error", f"{type(err).__name__}: {err}"))
            except Exception:
                pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
        os._exit(status)


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
class _InlineConn:
    """Worker driven directly in the coordinator process."""

    def __init__(self, worker: ShardWorker, stores: tuple[CheckpointStore, ...]):
        self.worker = worker
        self.initial_min = worker.setup(stores=stores)
        self._pending: tuple | None = None

    def send(self, msg: tuple) -> None:
        self._pending = msg

    def recv_payload(self) -> Any:
        msg, self._pending = self._pending, None
        if msg is None:
            raise SimulationError("inline shard recv without a pending op")
        return _handle_op(self.worker, msg)


class _ProcConn:
    """Shared liveness machinery of the process-backed transports.

    Replies are awaited with bounded ``conn.poll`` + ``proc.is_alive``
    checks: a worker that dies mid-window raises
    :class:`~repro.util.errors.ShardWorkerDied` (naming the shard and its
    last completed protocol round) instead of blocking the coordinator on
    ``Conn.recv`` forever.
    """

    #: Seconds between liveness checks while waiting on the pipe.
    poll_interval = 0.05

    def __init__(self, conn, proc, shard_id: int):
        self.conn = conn
        self.proc = proc
        self.shard_id = shard_id
        self.initial_min = math.inf
        #: Protocol rounds (setup/window/lockstep/apply replies) completed.
        self.completed_rounds = 0

    def _alive(self) -> bool:
        return self.proc.is_alive()

    def _worker_died(self):
        raise ShardWorkerDied(self.shard_id, self.completed_rounds)

    def _send(self, msg: tuple) -> None:
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError):
            self._worker_died()

    def _recv(self) -> tuple:
        conn = self.conn
        while True:
            try:
                if conn.poll(self.poll_interval):
                    return conn.recv()
            except (EOFError, OSError):
                self._worker_died()
            if not self.proc.is_alive():
                # Drain a reply the worker may have written just before
                # exiting (e.g. its final error report).
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                self._worker_died()

    def _checked_reply(self) -> Any:
        reply = self._recv()
        if reply[0] == "error":
            raise SimulationError(f"shard {self.shard_id} worker failed: {reply[1]}")
        return reply[1]


class _ForkConn(_ProcConn):
    """Pipe to a forked worker process (envelopes pickled in-band)."""

    def send(self, msg: tuple) -> None:
        self._send(msg)

    def recv_payload(self) -> Any:
        payload = self._checked_reply()
        self.completed_rounds += 1
        return payload


class _ShmConn(_ProcConn):
    """Pipe for control + shared-memory rings for envelope payloads.

    Both directions announce the record count on the pipe first, then
    stream packed envelopes through the ring — the announced side is
    already draining by the time the ring could fill, so streaming cannot
    deadlock even for batches larger than the ring.
    """

    def __init__(self, conn, proc, shard_id: int, ring_out: ShmRing, ring_in: ShmRing):
        super().__init__(conn, proc, shard_id)
        self.ring_out = ring_out
        self.ring_in = ring_in
        self._last_op: str | None = None

    def _stream(self, envelopes: list[tuple]) -> None:
        try:
            for env in envelopes:
                self.ring_out.write(pack_envelope(env), alive=self._alive)
        except RingPeerDead:
            self._worker_died()

    def send(self, msg: tuple) -> None:
        op = msg[0]
        self._last_op = op
        if op == "window":
            self._send(("window", msg[1], len(msg[2])))
            self._stream(msg[2])
        elif op == "apply":
            self._send(("apply", len(msg[1]), msg[2]))
            self._stream(msg[1])
        else:
            self._send(msg)

    def recv_payload(self) -> Any:
        payload = self._checked_reply()
        if self._last_op in ("window", "exact"):
            m_next, n_out, fails, abort, wall = payload
            try:
                out = [
                    unpack_envelope(self.ring_in.read(alive=self._alive))
                    for _ in range(n_out)
                ]
            except RingPeerDead:
                self._worker_died()
            payload = (m_next, out, fails, abort, wall)
        self.completed_rounds += 1
        return payload


def _build_replica(sim: "XSim", app, args: tuple, nranks: int) -> "XSim":
    """Construct and launch an identical simulation for one inline shard.

    Determinism of construction + launch means the replica's event heap,
    sequence numbers, and armed failures match the parent's exactly.
    """
    from repro.core.simulator import XSim

    replica = XSim(
        sim.system,
        seed=sim.seed,
        start_time=sim.engine.start_time,
        log_stream=None,
        record_trace=False,
        check=sim.checker is not None,
        record_events=sim.event_trace is not None,
        coalesce_advances=sim.engine.coalesce_advances,
        shards=sim.shards,
        shard_transport="inline",
        observe=sim.observer,
        engine=sim.engine_name,
    )
    replica.world.launch(app, nranks, args)
    for rank, time in sim._armed_failures:
        replica.engine.schedule_failure(rank, time)
    for fault in sim._armed_perturbations:
        replica.world.faults.arm(fault)
    return replica


#: Per-direction shared-memory ring capacity of the shm transport.  Rings
#: stream, so this bounds memory, not batch or envelope size.
_SHM_RING_BYTES = 1 << 20


def _make_transport(
    transport: str,
    sim: "XSim",
    app,
    args: tuple,
    nranks: int,
    parts: list[range],
    stores: tuple[CheckpointStore, ...],
    lookahead: float,
    matrix: list[list[float]],
    owner: list[int],
):
    """Returns ``(conns, cleanup)``; every conn has ``initial_min`` set."""
    owner_t = tuple(owner)

    def make_worker(shard_sim: "XSim", k: int, part: range) -> ShardWorker:
        return ShardWorker(
            shard_sim, k, part, lookahead, la_row=tuple(matrix[k]), owner=owner_t
        )

    if transport == "inline":
        conns: list = []
        for k, part in enumerate(parts):
            shard_sim = sim if k == 0 else _build_replica(sim, app, args, nranks)
            # Inline replicas share the parent's store objects via the
            # app args, so file state needs no merging (no stores).
            conns.append(_InlineConn(make_worker(shard_sim, k, part), ()))
        return conns, lambda: None

    ctx = mp.get_context("fork")
    conns = []
    procs = []
    rings: list[ShmRing] = []
    for k, part in enumerate(parts):
        parent_conn, child_conn = ctx.Pipe()
        worker = make_worker(sim, k, part)
        if transport == "shm":
            # Created before the fork so the child inherits the mappings.
            c2w, w2c = ShmRing(_SHM_RING_BYTES), ShmRing(_SHM_RING_BYTES)
            rings += [c2w, w2c]
            proc = ctx.Process(
                target=_shm_worker_main,
                args=(child_conn, worker, stores, c2w, w2c),
                daemon=True,
            )
        else:
            proc = ctx.Process(
                target=_forked_worker_main,
                args=(child_conn, worker, stores),
                daemon=True,
            )
        proc.start()  # forks the fully launched, not-yet-run simulation
        child_conn.close()
        if transport == "shm":
            conns.append(_ShmConn(parent_conn, proc, k, ring_out=c2w, ring_in=w2c))
        else:
            conns.append(_ForkConn(parent_conn, proc, k))
        procs.append(proc)
    # The parent engine is consumed by the forked workers; mark it run so a
    # stray Engine.run() cannot double-execute the launch state.  (Set only
    # after forking — children must still pass begin_windowed_run's guard.)
    sim.engine._ran = True
    for conn in conns:
        conn.initial_min = conn.recv_payload()

    def cleanup() -> None:
        for conn in conns:
            try:
                conn.conn.send(("close",))
            except Exception:
                pass
            try:
                conn.conn.close()
            except Exception:
                pass
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
        for ring in rings:  # after the children are gone: unlink the segments
            ring.destroy()

    return conns, cleanup


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class _Coordinator:
    """Runs the safe-window / lockstep protocol over a set of workers."""

    def __init__(
        self,
        conns: list,
        owner: list[int],
        la: list[list[float]],
        h_min: float,
        armed: list[tuple[int, float]],
        stats: ShardStats,
        obs=None,
    ):
        self.conns = conns
        self.n = len(conns)
        self.owner = owner
        #: Closed per-shard-pair lookahead matrix (inf diagonal).
        self.la = la
        self.h_min = h_min
        self.armed = armed
        self.stats = stats
        #: Parent-side :class:`~repro.obs.Observer` receiving host-domain
        #: per-round events (workers have their own shard-local buses).
        self.obs = obs
        self.mins = [c.initial_min for c in conns]
        self.pending: list[list[tuple]] = [[] for _ in conns]
        self.directives: list[list[tuple]] = [[] for _ in conns]

    @staticmethod
    def _env_time(env: tuple) -> float:
        return env[1] if env[0] == "a" else env[3]

    def _route(self, out: list[tuple]) -> None:
        for env in out:
            dest_rank = env[4] if env[0] == "a" else env[1]
            self.pending[self.owner[dest_rank]].append(env)

    def drive(self) -> list[ShardReport]:
        lockstep = False
        while True:
            eff = [
                min(
                    self.mins[k],
                    min((self._env_time(e) for e in self.pending[k]), default=math.inf),
                )
                for k in range(self.n)
            ]
            m = min(eff)
            if m == math.inf and not any(self.directives):
                break
            if not lockstep and m < self.h_min:
                self._window_round(eff)
                continue
            if not lockstep:
                lockstep = True
                for k in range(self.n):
                    self.directives[k].append(("lockstep",))
            if any(self.pending) or any(self.directives):
                self._apply_round()
                continue
            self._exact_step(m, eff)
        for conn in self.conns:
            conn.send(("finish",))
        return [conn.recv_payload() for conn in self.conns]

    def _window_round(self, eff: list[float]) -> None:
        # Per-shard conservative bound: shard k can safely dispatch every
        # event strictly before  min over the OTHER shards j of their next
        # possible dispatch time plus the pair lookahead L[j][k] — any
        # message shard j might still send (directly or relayed; the
        # matrix is min-plus closed) arrives no earlier than that.
        # (Bounding everyone by the single global minimum latency instead
        # collapses every window to the machine-wide worst case: each send
        # of a barrier root would need its own round even toward shards
        # many hops away.)  Shards with nothing to do before their bound
        # skip the round entirely; their pending envelopes stay queued
        # here and keep counting toward ``eff`` until they participate.
        targets = []
        for k in range(self.n):
            row = self.la[k]
            end = self.h_min
            for j in range(self.n):
                if j == k:
                    continue
                bound = eff[j] + row[j]
                if bound < end:
                    end = bound
            if eff[k] < end:
                targets.append((k, end))
        t0 = perf_counter()
        for k, end in targets:
            self.conns[k].send(("window", end, self.pending[k]))
            self.pending[k] = []
        walls = []
        for k, _end in targets:
            m_next, out, fails, abort, wall = self.conns[k].recv_payload()
            if fails or abort:
                raise ShardedParityError(
                    f"shard {k} produced an unscheduled failure/abort inside a "
                    f"conservative window (failures={fails}, abort={abort}); "
                    "only failures armed before the run are supported with "
                    "--shards > 1"
                )
            self.mins[k] = m_next
            walls.append(wall)
            self._route(out)
        self.stats.windows += 1
        self.stats.critical_path_seconds += max(walls)
        self.stats.worker_busy_seconds += sum(walls)
        self.stats.barrier_seconds += max(0.0, (perf_counter() - t0) - max(walls))
        if self.obs is not None:
            self.obs.host_span(
                t0, perf_counter(), "window-round", track="coordinator",
                args={
                    "round": self.stats.windows,
                    "workers": len(targets),
                    "max_wall": max(walls),
                },
            )

    def _apply_round(self) -> None:
        t0 = perf_counter()
        for k, conn in enumerate(self.conns):
            conn.send(("apply", self.pending[k], self.directives[k]))
            self.pending[k] = []
            self.directives[k] = []
        for k, conn in enumerate(self.conns):
            self.mins[k] = conn.recv_payload()
        self.stats.lockstep_rounds += 1
        if self.obs is not None:
            self.obs.host_span(
                t0, perf_counter(), "apply-round", track="coordinator",
                args={"round": self.stats.lockstep_rounds},
            )

    def _t1_priority(self, k: int, t1: float) -> int:
        # The serial engine dispatches an armed failure before same-time
        # post-launch events (its event was scheduled earlier, so its
        # sequence number is lower).  Running the failing rank's shard
        # first — relaying the kill before other shards execute the same
        # timestamp — mirrors that order.
        for index, (rank, time) in enumerate(self.armed):
            if time == t1 and self.owner[rank] == k:
                return index
        return len(self.armed)

    def _exact_step(self, t1: float, eff: list[float]) -> None:
        candidates = [k for k in range(self.n) if eff[k] == t1]
        candidates.sort(key=lambda k: (self._t1_priority(k, t1), k))
        k = candidates[0]
        conn = self.conns[k]
        conn.send(("exact", t1))
        m_next, out, fails, abort, wall = conn.recv_payload()
        self.stats.critical_path_seconds += wall  # exact steps are serial
        self.stats.worker_busy_seconds += wall
        self.mins[k] = m_next
        self._route(out)
        for rank, t_kill in fails:
            for j in range(self.n):
                if j != k:
                    self.directives[j].append(("fail", rank, t_kill))
        if abort is not None:
            for j in range(self.n):
                if j != k:
                    self.directives[j].append(("abort", abort[0], abort[1]))
        self.stats.lockstep_rounds += 1
        if self.obs is not None:
            self.obs.host_span(
                perf_counter() - wall, perf_counter(), "lockstep-round",
                track="coordinator", args={"shard": k, "time": t1},
            )


# ----------------------------------------------------------------------
# entry point + merge
# ----------------------------------------------------------------------
def run_sharded(sim: "XSim", app, args: tuple, nranks: int) -> SimulationResult:
    """Execute an already-launched simulation across shards; returns a
    result observably identical to ``sim.engine.run()``."""
    engine = sim.engine
    world = sim.world
    nshards = min(sim.shards, nranks)
    if nshards < 2:
        return engine.run()
    if world.collective_algorithm == "analytic":
        raise ConfigurationError(
            "analytic collectives complete through global simulator-internal "
            "sync points and cannot be sharded; use 'linear'/'tree' "
            "collectives or --shards 1"
        )
    if world.trace is not None:
        raise ConfigurationError(
            "record_trace (CommTrace) is not supported with --shards > 1; "
            "use record_events (EventTrace) for sharded replay diffing"
        )
    if sim._soft_errors is not None:
        raise ConfigurationError(
            "soft-error injection is not supported with --shards > 1"
        )
    parts = partition_ranks_topology(nranks, nshards, world.network)
    nshards = len(parts)
    owner = [0] * nranks
    for k, part in enumerate(parts):
        for rank in part:
            owner[rank] = k
    matrix = derive_lookahead_matrix(world.network, parts)
    pairs = [matrix[j][k] for j in range(nshards) for k in range(nshards) if j != k]
    lookahead = min(pairs)
    if sim.shard_lookahead is not None:
        if not 0.0 < sim.shard_lookahead <= lookahead:
            raise ConfigurationError(
                f"lookahead override {sim.shard_lookahead!r} outside "
                f"(0, {lookahead!r}] (the derived safe bound)"
            )
        # The override collapses the matrix to a uniform (global) bound —
        # the pre-matrix window scheme, kept for narrowed-window property
        # testing and old-vs-new window-count comparisons.
        lookahead = sim.shard_lookahead
        matrix = [
            [lookahead if j != k else math.inf for j in range(nshards)]
            for k in range(nshards)
        ]
    armed = list(sim._armed_failures)
    h_min = min((t for _, t in armed), default=math.inf)
    stores = _extract_stores(args)
    orig_stream = engine.log.stream

    requested = sim.shard_transport
    transport = requested
    if transport is None:
        transport = "fork" if "fork" in mp.get_all_start_methods() else "inline"
    elif transport not in ("fork", "inline", "shm"):
        raise ConfigurationError(f"unknown shard transport {transport!r}")
    fallback = False
    if transport in ("fork", "shm") and "fork" not in mp.get_all_start_methods():
        fallback = True
        message = (
            f"{transport!r} shard transport needs the fork start method "
            "(unavailable on this host); falling back to the inline "
            "single-process transport"
        )
        transport = "inline"
        # Surfaced once through every channel the run exposes: a Python
        # warning for API callers, a SimLog line (merged into the run's
        # log via the shard-0 report), and a host-domain obs instant.
        # Never in the digest — SimulationResult carries none of these.
        warnings.warn(message, RuntimeWarning, stacklevel=2)
        engine.log.log(engine.now, "shards", message)
        if sim.observer is not None:
            sim.observer.host_instant(
                perf_counter(), "shard-transport-fallback", track="coordinator",
                args={"requested": requested, "actual": transport},
            )

    stats = ShardStats(
        nshards=nshards,
        lookahead=lookahead,
        transport=transport,
        lookahead_max=max(pairs) if sim.shard_lookahead is None else lookahead,
        requested_transport=requested,
        transport_fallback=fallback,
        partition=[len(part) for part in parts],
    )
    if sim.observer is not None:
        sim.observer.host_instant(
            perf_counter(), "shard-plan", track="coordinator",
            args={
                "nshards": nshards,
                "transport": transport,
                "lookahead_min": stats.lookahead,
                "lookahead_max": stats.lookahead_max,
            },
        )
    conns, cleanup = _make_transport(
        transport, sim, app, args, nranks, parts, stores, lookahead, matrix, owner
    )
    try:
        coordinator = _Coordinator(
            conns, owner, matrix, h_min, armed, stats, obs=sim.observer
        )
        reports = coordinator.drive()
    finally:
        cleanup()

    _merge_reports(sim, reports, parts, stores, transport, orig_stream, stats)
    blocked = [
        (vp.rank, str(vp.wait_tag), vp.state.value) for vp in engine.vps if vp.alive
    ]
    if blocked:
        raise DeadlockError(blocked)
    engine.shard_stats = stats
    sim.shard_stats = stats
    return engine._result()


def _merge_reports(
    sim: "XSim",
    reports: list[ShardReport],
    parts: list[range],
    stores: tuple[CheckpointStore, ...],
    transport: str,
    orig_stream,
    stats: ShardStats,
) -> None:
    """Fold the shard reports back into the parent engine/world so the
    standard ``Engine._result()`` (and any profiler attached to the parent)
    observes exactly what a serial run would have left behind."""
    engine = sim.engine
    world = sim.world
    for report in reports:
        for rank, (state_value, clock, end, busy, exit_value, tag) in report.ranks.items():
            vp = engine.vps[rank]
            vp.state = VpState(state_value)
            vp.clock = clock
            vp.end_time = end
            vp.busy_time = busy
            vp.exit_value = exit_value
            vp.wait_tag = tag
    # Each failure is recorded only by its owner, so concatenation has no
    # duplicates; (time, rank) order matches serial chronological order.
    engine.failures = sorted(
        (f for report in reports for f in report.failures), key=lambda f: (f[1], f[0])
    )
    aborts = {
        (report.abort_time, report.abort_rank) for report in reports if report.aborted
    }
    if len(aborts) > 1:
        raise ShardedParityError(f"shards disagree on the abort outcome: {sorted(aborts)}")
    if aborts:
        engine.aborting = True
        engine.abort_time, engine.abort_rank = aborts.pop()
    engine.event_count = sum(r.event_count for r in reports)
    engine.stale_skipped = sum(r.stale_skipped for r in reports)
    engine.coalesced_advances = sum(r.coalesced_advances for r in reports)
    world.match_scan_calls = sum(r.match_scan_calls for r in reports)
    world.match_scan_length = sum(r.match_scan_length for r in reports)
    world.messages_sent = sum(r.messages_sent for r in reports)
    world.bytes_sent = sum(r.bytes_sent for r in reports)
    stats.shard_events = [r.event_count for r in reports]
    stats.cross_shard_messages = sum(r.cross_shard_msgs for r in reports)
    if engine.vps:
        engine.now = max(
            vp.end_time if vp.end_time is not None else vp.clock for vp in engine.vps
        )
    # Merged log: stable time sort of the per-shard streams (shard order
    # breaks exact ties, matching the serial rank-order dispatch at equal
    # timestamps); echoed once to the original stream.
    merged_log = sorted(
        (entry for report in reports for entry in report.log_entries),
        key=lambda entry: entry.time,
    )
    engine.log.stream = orig_stream
    engine.log.entries = merged_log
    if orig_stream is not None:
        for entry in merged_log:
            print(entry.render(), file=orig_stream)
    if sim.observer is not None:
        # Shard-local buses ship their events in the reports; export-time
        # canonical sorting makes the merge order irrelevant.  The inline
        # shard-0 worker swapped the parent's obs hooks for its own bus,
        # so point them back at the parent observer.
        sim.observer.extend(
            entry for report in reports for entry in (report.obs_entries or ())
        )
        engine.obs = sim.observer
        world.obs = sim.observer
    if sim.event_trace is not None:
        merged_trace = sorted(
            (
                entry
                for report in reports
                for entry in (report.trace_entries or ())
            ),
            key=lambda entry: entry[0],
        )
        sim.event_trace.entries = merged_trace
    if stores and transport in ("fork", "shm"):
        # Owned-rank checkpoint files replace the parent's pre-fork view;
        # counters advance by the per-shard deltas — per component
        # namespace (a multi-level store ships one delta per tier).
        for report, part in zip(reports, parts):
            owned = set(part)
            for store, (files, writes_delta, deletes_delta) in zip(
                stores, report.store_delta
            ):
                for key in [k for k in store._files if k[1] in owned]:
                    del store._files[key]
                store._files.update(files)
                store.writes += writes_delta
                store.deletes += deletes_delta
