"""Shared-memory rings and packed envelopes for the ``shm`` shard transport.

The fork transport moves every cross-shard envelope through a
``multiprocessing.Pipe``: one pickle per batch, one ``write(2)``/``read(2)``
round trip per message direction, all serialized through the kernel.  This
module replaces the data path with single-producer/single-consumer byte
rings over ``multiprocessing.shared_memory`` plus a fixed packed encoding
for the two envelope forms, so a window's envelopes are memcpys into a
mapped page instead of pickled syscalls.  Control traffic (ops, directives,
final :class:`~repro.pdes.sharded.ShardReport`) stays on the pipe — it is
rare and structure-rich, exactly what pickle is for.

Ring layout
-----------
``[head u64][tail u64][data bytes ...]``.  ``head`` counts bytes ever
written and ``tail`` bytes ever read (both monotonic, taken modulo the data
capacity for positions).  Exactly one process stores each counter, so a
stale read is always *conservative* (the reader sees at most what was
written, the writer at least what was consumed).  Records are u32
length-prefixed and may exceed the capacity: both sides stream chunks as
space frees, which cannot deadlock because the coordinator/worker protocol
always announces the record count on the pipe *before* either side touches
a ring (see ``_ShmConn`` in :mod:`repro.pdes.sharded`).

Envelope encoding
-----------------
``b"r" + <qqd>`` — rendezvous completion ``(src, req_id, t_send_done)``.
``b"a" + <d5qdqqBq> + payload`` — message delivery: arrival time, ctx, src,
dst, tag, nbytes, the ``(post_time, src, counter)`` sequence tuple,
protocol code (0 eager / 1 RTS) and rendezvous request id (-1 for none),
followed by a tagged payload block.  Payload tags cover the types
applications actually send (None/bool/int/float/bytes/str and
C-contiguous numpy arrays, encoded as ``dtype.str`` + shape + raw bytes);
anything else falls back to pickle.  Every encoding round-trips exactly —
bit-identical digests against the serial engine are the contract.
"""

from __future__ import annotations

import pickle
import struct
import time
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from repro.mpi.messages import EAGER, RTS
from repro.util.errors import ConfigurationError, SimulationError

__all__ = [
    "RingPeerDead",
    "ShmRing",
    "pack_envelope",
    "unpack_envelope",
]


class RingPeerDead(SimulationError):
    """The process on the other end of a ring stopped making progress."""


_CTRL = struct.Struct("<Q")
_LEN = struct.Struct("<I")
#: Bytes reserved for the head/tail counters at the start of the segment.
HEADER_BYTES = 16
#: Spin iterations before the wait loop starts sleeping.
_SPINS = 200
_SLEEP_S = 100e-6


class ShmRing:
    """Single-producer/single-consumer byte ring over shared memory.

    Created by the coordinator before forking; the worker inherits the
    mapping, so no name-based attach is needed.  ``alive`` callbacks let a
    blocked side detect a dead peer instead of spinning forever.
    """

    def __init__(self, capacity: int = 1 << 20):
        if capacity < 64:
            raise ConfigurationError(f"ring capacity must be >= 64, got {capacity}")
        self.capacity = capacity
        self._shm = shared_memory.SharedMemory(create=True, size=HEADER_BYTES + capacity)
        buf = self._shm.buf
        _CTRL.pack_into(buf, 0, 0)
        _CTRL.pack_into(buf, 8, 0)

    # -- counters (one writer each; stale reads are conservative) -------
    def _head(self) -> int:
        return _CTRL.unpack_from(self._shm.buf, 0)[0]

    def _tail(self) -> int:
        return _CTRL.unpack_from(self._shm.buf, 8)[0]

    def _wait(self, spins: int, alive: Callable[[], bool] | None) -> int:
        if spins >= _SPINS:
            if alive is not None and not alive():
                raise RingPeerDead("ring peer process died")
            time.sleep(_SLEEP_S)
        return spins + 1

    # -- producer -------------------------------------------------------
    def write(self, payload: bytes, alive: Callable[[], bool] | None = None) -> None:
        """Append one length-prefixed record, streaming chunks as the
        consumer frees space (records may exceed the ring capacity)."""
        data = _LEN.pack(len(payload)) + payload
        cap = self.capacity
        buf = self._shm.buf
        head = self._head()
        off = 0
        spins = 0
        while off < len(data):
            free = cap - (head - self._tail())
            if free == 0:
                spins = self._wait(spins, alive)
                continue
            spins = 0
            pos = head % cap
            n = min(len(data) - off, free, cap - pos)
            buf[HEADER_BYTES + pos : HEADER_BYTES + pos + n] = data[off : off + n]
            head += n
            _CTRL.pack_into(buf, 0, head)
            off += n

    # -- consumer -------------------------------------------------------
    def read(self, alive: Callable[[], bool] | None = None) -> bytes:
        """Pop one record (blocks until its bytes arrive)."""
        (length,) = _LEN.unpack(self._read_exact(_LEN.size, alive))
        return bytes(self._read_exact(length, alive))

    def _read_exact(self, n: int, alive: Callable[[], bool] | None) -> bytearray:
        out = bytearray(n)
        cap = self.capacity
        buf = self._shm.buf
        tail = self._tail()
        got = 0
        spins = 0
        while got < n:
            avail = self._head() - tail
            if avail == 0:
                spins = self._wait(spins, alive)
                continue
            spins = 0
            pos = tail % cap
            take = min(n - got, avail, cap - pos)
            out[got : got + take] = buf[HEADER_BYTES + pos : HEADER_BYTES + pos + take]
            tail += take
            _CTRL.pack_into(buf, 8, tail)
            got += take
        return out

    # -- lifecycle ------------------------------------------------------
    def destroy(self) -> None:
        """Close the mapping and unlink the segment (creator side)."""
        try:
            self._shm.close()
        except Exception:
            pass
        try:
            self._shm.unlink()
        except Exception:
            pass


# ----------------------------------------------------------------------
# envelope codec
# ----------------------------------------------------------------------
#: arrival f8 | ctx, src, dst, tag, nbytes q | seq(post f8, src q, ctr q) |
#: protocol u8 | req_id q (-1 = None)
_A_HEAD = struct.Struct("<dqqqqqdqqBq")
_R_BODY = struct.Struct("<qqd")

_P_NONE, _P_FALSE, _P_TRUE, _P_INT, _P_FLOAT = 0, 1, 2, 3, 4
_P_BYTES, _P_STR, _P_ARRAY, _P_PICKLE = 5, 6, 7, 8
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def _pack_payload(obj: Any) -> bytes:
    t = type(obj)
    if obj is None:
        return bytes((_P_NONE,))
    if t is bool:
        return bytes((_P_TRUE if obj else _P_FALSE,))
    if t is int and _I64_MIN <= obj <= _I64_MAX:
        return bytes((_P_INT,)) + struct.pack("<q", obj)
    if t is float:
        return bytes((_P_FLOAT,)) + struct.pack("<d", obj)
    if t is bytes:
        return bytes((_P_BYTES,)) + obj
    if t is str:
        return bytes((_P_STR,)) + obj.encode("utf-8")
    if t is np.ndarray and not obj.dtype.hasobject:
        # ascontiguousarray would promote 0-d to 1-d, breaking the exact
        # round trip; 0-d arrays are always contiguous already.
        a = obj if obj.flags.c_contiguous else np.ascontiguousarray(obj)
        ds = a.dtype.str.encode("ascii")
        hdr = struct.pack("<BB", len(ds), a.ndim) + ds
        hdr += struct.pack(f"<{a.ndim}q", *a.shape)
        return bytes((_P_ARRAY,)) + hdr + a.tobytes()
    return bytes((_P_PICKLE,)) + pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _unpack_payload(mv: memoryview) -> Any:
    tag = mv[0]
    body = mv[1:]
    if tag == _P_NONE:
        return None
    if tag == _P_FALSE:
        return False
    if tag == _P_TRUE:
        return True
    if tag == _P_INT:
        return struct.unpack_from("<q", body)[0]
    if tag == _P_FLOAT:
        return struct.unpack_from("<d", body)[0]
    if tag == _P_BYTES:
        return bytes(body)
    if tag == _P_STR:
        return bytes(body).decode("utf-8")
    if tag == _P_ARRAY:
        nds, ndim = struct.unpack_from("<BB", body, 0)
        dtype = np.dtype(bytes(body[2 : 2 + nds]).decode("ascii"))
        shape = struct.unpack_from(f"<{ndim}q", body, 2 + nds)
        off = 2 + nds + 8 * ndim
        count = 1
        for d in shape:
            count *= d
        arr = np.frombuffer(body, dtype=dtype, count=count, offset=off)
        # .copy() gives a writable C-order array, matching the serial
        # path's payload.copy() buffering semantics.
        return arr.reshape(shape).copy()
    if tag == _P_PICKLE:
        return pickle.loads(bytes(body))
    raise SimulationError(f"unknown payload tag {tag}")


def pack_envelope(env: tuple) -> bytes:
    """Fixed binary form of one cross-shard envelope tuple."""
    if env[0] == "r":
        return b"r" + _R_BODY.pack(env[1], env[2], env[3])
    (_, arrival, ctx, src, dst, tag, nbytes, payload, seq, protocol, req_id) = env
    head = _A_HEAD.pack(
        arrival, ctx, src, dst, tag, nbytes, seq[0], seq[1], seq[2],
        0 if protocol == EAGER else 1, -1 if req_id is None else req_id,
    )
    return b"a" + head + _pack_payload(payload)


def unpack_envelope(data: bytes) -> tuple:
    """Inverse of :func:`pack_envelope`; exact round trip."""
    kind = data[:1]
    if kind == b"r":
        src, req_id, t_send_done = _R_BODY.unpack_from(data, 1)
        return ("r", src, req_id, t_send_done)
    if kind != b"a":
        raise SimulationError(f"unknown envelope kind {kind!r}")
    (arrival, ctx, src, dst, tag, nbytes, s_time, s_src, s_ctr, proto, req_id) = (
        _A_HEAD.unpack_from(data, 1)
    )
    payload = _unpack_payload(memoryview(data)[1 + _A_HEAD.size :])
    return (
        "a", arrival, ctx, src, dst, tag, nbytes, payload,
        (s_time, s_src, s_ctr), EAGER if proto == 0 else RTS,
        None if req_id == -1 else req_id,
    )
