"""Pluggable resilience strategies (see :mod:`repro.resilience.strategy`).

Importing the package registers the built-in strategies: ``ckpt``
(single-level checkpoint/restart), ``ckpt-multilevel`` (local +
partner-copy + PFS tiers), ``replication`` (factor-R warm failover with
SDC hash compare), and ``none`` (restart from scratch).
"""

from repro.resilience import ckpt as _ckpt  # noqa: F401  (registers)
from repro.resilience import multilevel as _multilevel  # noqa: F401
from repro.resilience import replication as _replication  # noqa: F401
from repro.resilience.strategy import (
    STRATEGIES,
    ResilienceStrategy,
    make_strategy,
    register,
    strategy_names,
)

__all__ = [
    "STRATEGIES",
    "ResilienceStrategy",
    "make_strategy",
    "register",
    "strategy_names",
]
