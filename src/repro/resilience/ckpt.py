"""Baseline strategies: single-level checkpoint/restart, and none.

``ckpt`` is the paper's Table II discipline verbatim — one
:class:`~repro.core.checkpoint.store.CheckpointStore` modelling the
parallel file system, persisted across restart segments, with the
pre-restart "shell script" cleanup of incomplete sets.  ``none`` keeps no
checkpoints at all: every abort restarts the application from scratch
(the E2 ceiling every other strategy is measured against).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.sanitizer import verify_store_cleaned
from repro.core.checkpoint.store import CheckpointStore
from repro.resilience.strategy import ResilienceStrategy, register

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs import Observer


@register
class SingleLevelCheckpoint(ResilienceStrategy):
    """Application-level checkpoint/restart against one PFS store."""

    name = "ckpt"

    def begin_run(self) -> None:
        self.store = CheckpointStore()

    def segment_store(self) -> CheckpointStore:
        return self.store

    def result_store(self) -> CheckpointStore:
        return self.store

    def on_abort(
        self, result, nranks: int, check: bool = False,
        observer: "Observer | None" = None,
    ) -> None:
        # "Incomplete checkpoints (missing checkpoint files due to a
        # failure during checkpointing) are deleted using a shell script."
        self.store.cleanup_incomplete(nranks)
        if check:
            # Audit the surviving namespace independently of is_valid:
            # every remaining set must hold exactly ranks 0..nranks-1,
            # all COMPLETE — a regression to subset-match semantics
            # (leftover wide/corrupt sets) is caught here.
            verify_store_cleaned(self.store, nranks)

    def facts(self):
        return {"strategy": self.name}


@register
class NoResilience(ResilienceStrategy):
    """No checkpoints: every failure costs a full restart from zero."""

    name = "none"

    def facts(self):
        return {"strategy": self.name}
