"""Multi-level checkpointing: in-memory/local, partner-copy, and PFS tiers.

Models the SCR/FTI-style tiered discipline (Kohl et al.,
arXiv:1708.08286): the application checkpoints at a fine cadence into
cheap *node-local* storage, every ``partner_every``-th local checkpoint is
also shipped to a ring partner (rank ``r``'s copy lives on rank
``(r+1) % n``), and every ``k``-th checkpoint additionally goes to the
parallel file system with the full single-level discipline.  Recovery
scans tiers newest-first and, per rank, loads the *cheapest surviving*
copy — a failed rank's node memory is gone, but its partner copy usually
survives at local-cadence granularity, so the rollback distance shrinks
from the global interval to the local one.

Tier cost model (documented in INTERNALS):

* **local** — memory-speed serialization at :data:`LOCAL_BANDWIDTH`
  bytes/s, paid as compute time (no network, no PFS contention);
* **partner** — a real ring ``isend``/``irecv`` of the checkpoint bytes
  (tag :data:`PARTNER_TAG`), so the interconnect model prices it;
  recovery fetches are modelled at :data:`PARTNER_FETCH_BANDWIDTH` plus
  :data:`PARTNER_FETCH_LATENCY`;
* **global** — ``file_write``/``file_read`` against the PFS model with
  all ranks as concurrent clients, exactly like single-level ``ckpt``.

Survivability on abort (:meth:`MultilevelCheckpoint.on_abort`): the
failed ranks' local files are dropped (node memory), partner copies whose
*holder* failed are dropped, mid-write PARTIAL files in either tier are
dropped, and the global tier gets the standard incomplete-set cleanup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.check.sanitizer import verify_store_cleaned
from repro.core.checkpoint.store import CheckpointStore
from repro.resilience.strategy import ResilienceStrategy, register

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.mpi.api import MpiApi
    from repro.obs import Observer

Gen = Generator[Any, Any, Any]

#: Node-local (in-memory) checkpoint serialization speed, bytes/s.
LOCAL_BANDWIDTH = 5e9
#: Modelled partner-tier recovery fetch: latency (s) + bytes/s.
PARTNER_FETCH_LATENCY = 1e-6
PARTNER_FETCH_BANDWIDTH = 8e9
#: Reserved tag of the partner-copy ring exchange (beyond app tags,
#: below the redundancy hash side channel).
PARTNER_TAG = 2**17

#: Tier names, cheapest recovery first.
TIERS = ("local", "partner", "global")


class MultilevelStore:
    """Three checkpoint namespaces, one per tier, shared across segments.

    Rides through the app args like a plain
    :class:`~repro.core.checkpoint.store.CheckpointStore`;
    :meth:`component_stores` exposes the tier namespaces to the sharded
    engine's file-state merge, and :meth:`make_protocol` tells
    :func:`~repro.core.checkpoint.protocol.resolve_protocol` to drive the
    tiered discipline instead of the single-level one.
    """

    def __init__(self, k: int, partner_every: int):
        self.k = k
        self.partner_every = partner_every
        self.local = CheckpointStore()
        self.partner = CheckpointStore()
        self.global_ = CheckpointStore()

    def component_stores(self) -> tuple[CheckpointStore, ...]:
        return (self.local, self.partner, self.global_)

    def make_protocol(self, api: "MpiApi") -> "MultilevelProtocol":
        return MultilevelProtocol(api, self)

    def tier_of(self, name: str) -> CheckpointStore:
        return {"local": self.local, "partner": self.partner, "global": self.global_}[name]


class MultilevelProtocol:
    """Per-rank driver of the tiered checkpoint discipline.

    Duck-types :class:`~repro.core.checkpoint.protocol.CheckpointProtocol`
    for the methods applications use (``checkpoint``, ``restore_latest``,
    ``previous_id``).
    """

    def __init__(self, api: "MpiApi", store: MultilevelStore):
        self.api = api
        self.ml = store
        #: Checkpoint calls this segment (global cadence = every k-th).
        self.calls = 0
        #: Id of the most recent checkpoint this rank completed.
        self.previous_id: int | None = None
        self._prev = {"local": None, "partner": None, "global": None}

    # ------------------------------------------------------------------
    def _emit(self, name: str, args: dict) -> None:
        world = self.api.world
        obs = world.obs
        if obs is not None and world._obs_owns(self.api.rank):
            obs.instant(
                self.api.wtime(), name, rank=self.api.rank,
                track="resilience", args=args,
            )

    def _prune(self, tier: str, ckpt_id: int) -> Gen:
        prev = self._prev[tier]
        if prev is not None and prev != ckpt_id:
            if self.ml.tier_of(tier).delete(prev, self.api.rank) and tier == "global":
                yield from self.api.file_delete()
        self._prev[tier] = ckpt_id

    # ------------------------------------------------------------------
    def checkpoint(self, ckpt_id: int, data: Any, nbytes: int) -> Gen:
        """One tiered checkpoint: local always, partner/global on cadence."""
        api = self.api
        ml = self.ml
        self.calls += 1
        # Tier 1: node-local, memory-speed.  A failure mid-serialization
        # leaves the file PARTIAL, like any other tier.
        ml.local.begin_write(ckpt_id, api.rank, data, nbytes)
        yield from api.compute(nbytes / LOCAL_BANDWIDTH)
        ml.local.commit_write(ckpt_id, api.rank)
        self._emit("tier-write", {"tier": "local", "id": ckpt_id})
        # Tier 2: ship this checkpoint to the ring partner (real traffic —
        # the interconnect model prices it).  The copy of rank r is *held*
        # by rank (r+1) % n, but recorded under r's key so the sharded
        # file-state merge attributes it to the writing rank.
        to_partner = (
            ml.partner_every > 0
            and self.calls % ml.partner_every == 0
            and api.size > 1
        )
        if to_partner:
            right = (api.rank + 1) % api.size
            left = (api.rank - 1) % api.size
            rreq = api.irecv(left, tag=PARTNER_TAG)
            sreq = yield from api.isend(right, payload=None, nbytes=nbytes, tag=PARTNER_TAG)
            yield from api.wait(sreq)
            yield from api.wait(rreq)
            ml.partner.begin_write(ckpt_id, api.rank, data, nbytes)
            ml.partner.commit_write(ckpt_id, api.rank)
            self._emit("partner-copy", {"id": ckpt_id, "holder": right})
            yield from self._prune("partner", ckpt_id)
        # Tier 3: every k-th call goes to the PFS with the single-level
        # discipline (write, then the barrier below covers the prune).
        to_global = self.calls % ml.k == 0
        if to_global:
            ml.global_.begin_write(ckpt_id, api.rank, data, nbytes)
            yield from api.file_write(nbytes, concurrent_clients=api.size)
            ml.global_.commit_write(ckpt_id, api.rank)
            self._emit("tier-write", {"tier": "global", "id": ckpt_id})
        # "After writing out a checkpoint, a global barrier synchronizes
        # all processes, such that the previous checkpoint can be deleted
        # safely" — one barrier covers every tier written this call.
        yield from api.barrier()
        yield from self._prune("local", ckpt_id)
        if to_global:
            yield from self._prune("global", ckpt_id)
        self.previous_id = ckpt_id

    # ------------------------------------------------------------------
    def _tier_for(self, cid: int, rank: int) -> str | None:
        """Cheapest tier holding a COMPLETE copy of ``(cid, rank)``."""
        from repro.core.checkpoint.store import FileState

        for tier in TIERS:
            if self.ml.tier_of(tier).state_of(cid, rank) is FileState.COMPLETE:
                return tier
        return None

    def restore_latest(self) -> Gen:
        """Load the newest checkpoint recoverable across *all* ranks,
        each rank from its cheapest surviving tier.

        Returns ``(ckpt_id, data)`` or ``(None, None)`` on a cold start.
        """
        api = self.api
        n = api.size
        ids = sorted(
            {cid for tier in TIERS for cid in self.ml.tier_of(tier).checkpoint_ids()},
            reverse=True,
        )
        for cid in ids:
            tiers = [self._tier_for(cid, q) for q in range(n)]
            if any(t is None for t in tiers):
                continue
            tier = tiers[api.rank]
            f = self.ml.tier_of(tier).read(cid, api.rank)
            if tier == "local":
                yield from api.compute(f.nbytes / LOCAL_BANDWIDTH)
            elif tier == "partner":
                yield from api.compute(
                    PARTNER_FETCH_LATENCY + f.nbytes / PARTNER_FETCH_BANDWIDTH
                )
            else:
                yield from api.file_read(f.nbytes, concurrent_clients=n)
            self._emit("tier-recovery", {"tier": tier, "id": cid})
            for t in TIERS:
                self._prev[t] = cid if self.ml.tier_of(t).exists(cid, api.rank) else None
            self.previous_id = cid
            return cid, f.data
        return None, None


@register
class MultilevelCheckpoint(ResilienceStrategy):
    """Tiered checkpoint/restart: local + partner-copy + PFS."""

    name = "ckpt-multilevel"
    PARAM_KEYS = ("k", "partner_every")

    def _validate(self) -> None:
        #: Local checkpoints per global (PFS) checkpoint.
        self.k = self._int_param("k", 4, minimum=1)
        #: Partner-copy cadence in local checkpoints (0 disables the tier).
        self.partner_every = self._int_param("partner_every", 1, minimum=0)
        self.dropped_files = 0

    def app_interval(self, interval: int) -> int:
        # The nominal scenario interval is the *global* cadence; the app
        # checkpoints k times as often into the local tier.
        return max(1, interval // self.k)

    def begin_run(self) -> None:
        self.store = MultilevelStore(self.k, self.partner_every)

    def segment_store(self) -> MultilevelStore:
        return self.store

    def result_store(self) -> CheckpointStore:
        # The PFS-namespace view, like single-level ckpt reports.
        return self.store.global_

    def on_abort(
        self, result, nranks: int, check: bool = False,
        observer: "Observer | None" = None,
    ) -> None:
        ml = self.store
        failed = sorted({rank for rank, _ in result.failures})
        dropped = 0
        for rank in failed:
            # The failed rank's node memory is gone...
            for cid in ml.local.checkpoint_ids():
                dropped += ml.local.delete(cid, rank)
            # ...and so is every partner copy it *held* (rank r's copy
            # lives on (r+1) % n, so holder f held (f-1) % n's copy).
            held_of = (rank - 1) % nranks
            for cid in ml.partner.checkpoint_ids():
                dropped += ml.partner.delete(cid, held_of)
        # Mid-write PARTIAL files in the memory tiers are worthless.
        for store in (ml.local, ml.partner):
            for cid in store.checkpoint_ids():
                for rank in store.corrupted_files(cid):
                    dropped += store.delete(cid, rank)
        self.dropped_files += dropped
        # PFS tier: the standard pre-restart shell-script cleanup.
        ml.global_.cleanup_incomplete(nranks)
        if check:
            verify_store_cleaned(ml.global_, nranks)
        if observer is not None:
            observer.instant(
                result.exit_time, "tier-cleanup", track="resilience",
                args={"failed": len(failed), "dropped": dropped},
            )

    def facts(self):
        return {
            "strategy": self.name,
            "k": self.k,
            "partner_every": self.partner_every,
            "dropped_files": self.dropped_files,
        }
