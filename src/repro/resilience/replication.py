"""Rank replication with warm failover and SDC hash compare.

Runs the logical job on ``factor`` replicas per rank through the redMPI
facade (:mod:`repro.core.redundancy`): every point-to-point message is
mirrored between same-index replicas with a crc32 hash side channel, so
silent data corruption is *detected* by comparison, and fail-stop faults
are *masked* as long as one replica of each logical rank survives
(TeaMPI-style warm failover, arXiv:2005.12091).

Failover model: a fail-stop drawn against a replica that still has a live
sibling is **absorbed** — the replica set continues at full width (the
spare is warm) and the surviving replicas of that logical rank pay a
synchronization window, modelled as a :class:`~repro.core.faults.schedule.
StragglerFault` (``slowdown`` x for ``pause`` seconds).  Only when the
*last* replica of a logical rank is hit does the failure go through for
real, aborting the job — and with no checkpoints, the restart begins from
scratch.  Absorbed failures therefore cost zero restart segments.

The per-run :class:`~repro.core.redundancy.RedundancyMonitor` is created
once in :meth:`begin_run` and carried across restart segments, so SDC
detections are never lost to a restart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.faults.schedule import StragglerFault
from repro.core.redundancy import RedundancyMonitor, redundant
from repro.resilience.strategy import ResilienceStrategy, register

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.simulator import XSim
    from repro.obs import Observer


@register
class Replication(ResilienceStrategy):
    """redMPI-style modular redundancy with warm failover."""

    name = "replication"
    PARAM_KEYS = ("factor", "pause", "slowdown")

    def _validate(self) -> None:
        #: Replicas per logical rank.
        self.factor = self._int_param("factor", 2, minimum=2)
        #: Failover synchronization window: survivors of the hit logical
        #: rank compute ``slowdown`` x slower for ``pause`` seconds.
        self.pause = self._float_param("pause", 30.0, minimum=0.0)
        self.slowdown = self._float_param("slowdown", 2.0, minimum=1.0)
        self.failovers = 0
        self.fatal = 0
        #: One monitor for the whole experiment, created at construction
        #: (the app wrapper closes over it) and carried across restart
        #: segments so SDC detections are never lost (regression-tested).
        self.monitor = RedundancyMonitor(factor=self.factor)
        self._dead: set[int] = set()

    def physical_ranks(self, logical_ranks: int) -> int:
        return logical_ranks * self.factor

    def begin_run(self) -> None:
        # Reset in place — the app wrapper holds a reference.
        self.monitor.detections.clear()
        self.monitor.messages_compared = 0
        self.failovers = 0
        self.fatal = 0
        self._dead = set()

    def wrap_app(self, app):
        return redundant(app, self.factor, self.monitor)

    def transform_failures(
        self,
        sim: "XSim",
        failstops,
        observer: "Observer | None" = None,
    ):
        # A restart relaunches every physical rank, so replica liveness
        # resets at each segment boundary.
        self._dead = set()
        n_logical = sim.system.nranks // self.factor
        out = []
        for rank, time in sorted(failstops, key=lambda f: (f[1], f[0])):
            if rank in self._dead:
                continue  # that replica is already down in the model
            logical = rank % n_logical
            replicas = {j * n_logical + logical for j in range(self.factor)}
            if len((self._dead & replicas) | {rank}) >= self.factor:
                # Last replica of this logical rank: the failure is
                # unmasked and aborts the job for real.
                self.fatal += 1
                out.append((rank, time))
                continue
            # Warm failover: absorb the failure, survivors of this
            # logical rank pay the synchronization window.
            self._dead.add(rank)
            self.failovers += 1
            survivors = sorted(replicas - self._dead)
            if self.pause > 0.0 and self.slowdown > 1.0:
                for survivor in survivors:
                    sim.inject_perturbation(
                        StragglerFault(
                            rank=survivor,
                            time=time,
                            factor=self.slowdown,
                            duration=self.pause,
                        )
                    )
            if observer is not None:
                observer.instant(
                    time, "replica-failover", rank=rank, track="resilience",
                    args={"logical": logical, "survivors": len(survivors)},
                )
        return out

    def facts(self):
        # Parent-side counters only: RedundancyMonitor tallies accrue in
        # the shard workers under the fork/shm transports and are not
        # merged back, so they stay off the (transport-independent) run
        # summary; tests read ``self.monitor`` directly on serial runs.
        return {
            "strategy": self.name,
            "factor": self.factor,
            "failovers": self.failovers,
            "fatal": self.fatal,
        }
