"""Pluggable resilience strategies: one protocol, a registry, four plans.

The paper's co-design loop compares *resilience plans* — how a job
prepares for and recovers from fail-stop faults — under one performance
model.  A :class:`ResilienceStrategy` packages everything one plan needs
to thread through the stack:

* **geometry** — how many physical ranks a logical job needs
  (:meth:`physical_ranks`) and the checkpoint cadence the application
  should run at (:meth:`app_interval`);
* **arming** — wrapping the application (:meth:`wrap_app`, e.g. the
  redMPI replication facade) and supplying the per-run store object that
  rides through the app args (:meth:`segment_store`);
* **failure handling** — :meth:`transform_failures` sees every fail-stop
  before it is armed on the engine and may absorb it (replication's warm
  failover), and :meth:`on_abort` is the pre-restart recovery step
  (cleanup of unsurvivable checkpoint tiers);
* **accounting** — :meth:`facts` reports deterministic, parent-side
  counters (failovers, dropped tier files) for run summaries.

Strategies register by name via :func:`register`;
:func:`make_strategy` instantiates the one a
:class:`~repro.run.scenario.Scenario` names (its ``strategy`` /
``strategy_params`` fields), validating parameter spellings eagerly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.checkpoint.store import CheckpointStore
    from repro.core.restart import FailureRunResult
    from repro.core.simulator import XSim
    from repro.obs import Observer
    from repro.run.scenario import Scenario


class ResilienceStrategy:
    """One resilience plan, instantiated per run from a scenario.

    Subclasses override the hooks they need; the defaults describe the
    plain restart-from-scratch behaviour (no store, nothing to clean,
    failures pass through untouched).
    """

    #: Registry name (``Scenario.strategy`` value).
    name: str = "?"
    #: Parameter spellings the strategy accepts in ``strategy_params``.
    PARAM_KEYS: tuple[str, ...] = ()

    def __init__(self, scenario: "Scenario | None" = None):
        self.scenario = scenario
        self.params: dict[str, Any] = (
            dict(scenario.strategy_params) if scenario is not None else {}
        )
        unknown = sorted(set(self.params) - set(self.PARAM_KEYS))
        if unknown:
            expected = ", ".join(self.PARAM_KEYS) or "none"
            raise ConfigurationError(
                f"unknown parameter(s) for resilience strategy {self.name!r}: "
                f"{', '.join(unknown)} (expected: {expected})"
            )
        self._validate()

    # ------------------------------------------------------------------
    # parameter helpers
    # ------------------------------------------------------------------
    def _int_param(self, key: str, default: int, minimum: int) -> int:
        value = self.params.get(key, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise ConfigurationError(
                f"strategy {self.name!r} parameter {key!r} must be an "
                f"integer >= {minimum}, got {value!r}"
            )
        return value

    def _float_param(self, key: str, default: float, minimum: float) -> float:
        value = self.params.get(key, default)
        if isinstance(value, bool) or not isinstance(value, (int, float)) or value < minimum:
            raise ConfigurationError(
                f"strategy {self.name!r} parameter {key!r} must be a "
                f"number >= {minimum}, got {value!r}"
            )
        return float(value)

    def _validate(self) -> None:
        """Parameter validation hook (raise ConfigurationError)."""

    # ------------------------------------------------------------------
    # geometry (pure; safe to call on a throwaway instance)
    # ------------------------------------------------------------------
    def physical_ranks(self, logical_ranks: int) -> int:
        """Simulated ranks needed to host ``logical_ranks`` app ranks."""
        return logical_ranks

    def app_interval(self, interval: int) -> int:
        """Checkpoint cadence the application should run at, given the
        scenario's nominal interval (multi-level checkpointing inserts
        cheap local checkpoints between the nominal global ones)."""
        return interval

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        """Reset per-run state (stores, monitors) before segment 0."""

    def wrap_app(self, app):
        """Wrap the application coroutine (identity by default)."""
        return app

    def segment_store(self) -> Any:
        """The store object handed to ``make_args`` for each segment
        (``None`` when the strategy keeps no checkpoints)."""
        return None

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def transform_failures(
        self,
        sim: "XSim",
        failstops: list[tuple[int, float]],
        observer: "Observer | None" = None,
    ) -> list[tuple[int, float]]:
        """Inspect one segment's fail-stop injections ``(rank, time)``
        before they are armed; return the subset to actually inject.
        Called exactly once per segment (replication resets its failover
        bookkeeping here — a restart relaunches every replica)."""
        return failstops

    def on_abort(
        self,
        result,
        nranks: int,
        check: bool = False,
        observer: "Observer | None" = None,
    ) -> None:
        """Pre-restart recovery step after an aborted segment (``result``
        is the segment's :class:`~repro.pdes.engine.SimulationResult`)."""

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def result_store(self) -> "CheckpointStore | None":
        """The persistent-namespace view reported on the final result."""
        return None

    def facts(self) -> dict[str, Any]:
        """Deterministic parent-side counters for the run summary."""
        return {}


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
STRATEGIES: dict[str, type[ResilienceStrategy]] = {}


def register(cls: type[ResilienceStrategy]) -> type[ResilienceStrategy]:
    """Class decorator: register ``cls`` under ``cls.name``."""
    if cls.name in STRATEGIES:
        raise ConfigurationError(f"duplicate resilience strategy {cls.name!r}")
    STRATEGIES[cls.name] = cls
    return cls


def strategy_names() -> tuple[str, ...]:
    """Registered strategy names, sorted (CLI choices, error messages)."""
    return tuple(sorted(STRATEGIES))


def make_strategy(scenario: "Scenario") -> ResilienceStrategy:
    """Instantiate the strategy a scenario names (validates eagerly)."""
    cls = STRATEGIES.get(scenario.strategy)
    if cls is None:
        raise ConfigurationError(
            f"unknown resilience strategy {scenario.strategy!r} "
            f"(expected one of {', '.join(strategy_names())})"
        )
    return cls(scenario)
