"""The head-to-head table: every strategy's overhead and recovery cost.

A sweep whose grid includes ``strategy`` answers the co-design question
this package exists for — *which resilience mechanism is cheapest for
this machine and this failure rate?* — but the raw sweep table only
shows E2 (makespan under failures).  The study adds the two reference
runs that make the numbers comparable:

* a **fault-free twin** of each cell (same scenario, empty failure
  schedule) gives E1, the strategy's cost with no faults at all;
* the fault-free **``none`` baseline** gives the zero-protection
  makespan, so ``overhead`` isolates what the mechanism itself costs.

The twins run through :func:`~repro.run.sweep.run_cells`, so with a
cache active they are content-addressed like any other cell (a repeated
study is pure lookups), and they deduplicate: ten strategies over one
app share a single ``none`` baseline.  The rendered text contains only
simulation results — no cache or backend facts — so reruns, ``-j N``
pools, and serial-vs-sharded backends all emit byte-identical tables.
"""

from __future__ import annotations

from typing import Any

from repro.core.harness.report import format_table
from repro.run.scenario import Scenario


def _time_of(summary: dict[str, Any]) -> float:
    return float(summary.get("e2", summary["exit_time"]))


def strategy_study_rows(
    pairs: list[tuple[Scenario, dict[str, Any]]],
    axes: tuple[str, ...] = (),
    jobs: int = 1,
    cache: Any = None,
) -> tuple[list[str], list[tuple[str, ...]]]:
    """Header and rows of the head-to-head table for ``(scenario,
    summary)`` sweep pairs.  ``axes`` are the sweep's grid fields; those
    other than ``strategy`` become leading columns so every grid cell
    keeps its identity."""
    from repro.run.sweep import run_cells

    # Reference cells, deduplicated by content digest: the fault-free
    # twin of every cell plus its fault-free `none` baseline.
    twins: dict[str, Scenario] = {}
    wanted: list[tuple[str, str]] = []  # (e1 digest, baseline digest) per pair
    for scenario, _ in pairs:
        fault_free = scenario.with_(failures="", mttf=None)
        baseline = fault_free.with_(strategy="none", strategy_params=())
        digests = (fault_free.scenario_digest(), baseline.scenario_digest())
        twins.setdefault(digests[0], fault_free)
        twins.setdefault(digests[1], baseline)
        wanted.append(digests)

    order = sorted(twins)
    summaries = run_cells(
        [twins[d] for d in order], jobs=jobs, cache=cache, key_prefix="study"
    )
    e1_of = {d: _time_of(s) for d, s in zip(order, summaries)}

    extra = [a for a in axes if a != "strategy"]
    header = (
        ["strategy", "app"]
        + extra
        + ["E1", "overhead", "E2", "E2/E1", "restarts", "failures", "MTTF_a"]
    )
    rows: list[tuple[str, ...]] = []
    for (scenario, summary), (e1_digest, base_digest) in zip(pairs, wanted):
        e1, base_e1 = e1_of[e1_digest], e1_of[base_digest]
        e2 = _time_of(summary)
        mttf_a = summary.get("mttf_a")
        rows.append(
            (scenario.strategy, scenario.app)
            + tuple(str(getattr(scenario, a)) for a in extra)
            + (
                f"{e1:,.1f}s",
                f"{e1 / base_e1 - 1.0:+.1%}",
                f"{e2:,.1f}s",
                f"{e2 / e1:.2f}x",
                str(summary.get("restarts", 0)),
                str(summary["failures"]),
                "-" if mttf_a is None else f"{float(mttf_a):,.1f}s",
            )
        )
    return header, rows


def render_strategy_study(
    pairs: list[tuple[Scenario, dict[str, Any]]],
    axes: tuple[str, ...] = (),
    jobs: int = 1,
    cache: Any = None,
) -> str:
    """The formatted head-to-head table (byte-stable across reruns,
    worker pools, and backends)."""
    header, rows = strategy_study_rows(pairs, axes=axes, jobs=jobs, cache=cache)
    return format_table(header, rows)
