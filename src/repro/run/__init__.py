"""Unified scenario & runtime-backend layer.

The paper's subject is co-design *exploration*: sweeping machine
parameters, fault schedules, and checkpoint/restart policies across many
simulated runs.  This package is the one place where a run is described
and launched:

* :class:`Scenario` — a frozen, serializable spec capturing one full run
  (machine, application, failure schedule, C/R policy, seed, execution
  backend, instrumentation switches) with layered resolution::

      library defaults < scenario file (TOML) < XSIM_* environment < flags

  round-trippable through TOML and fingerprinted by
  :meth:`Scenario.scenario_digest`.
* :mod:`repro.run.backends` — the runtime-backend registry.  Every way of
  executing a scenario (serial engine, sharded conservative-parallel
  engine over the inline or fork transport) is a named
  :class:`~repro.run.backends.Backend` behind one
  ``execute(scenario) -> SimulationResult`` interface; the jobs x shards
  CPU-capping guard lives here, so the API and the CLI share it.
* :mod:`repro.run.instruments` — the instrumentation attach point: one
  hook table that wires the Sanitizer, the EventTrace recorder, and the
  Observer bus onto any backend's engine/world pair, replacing per-call
  wiring at every launcher.
* :mod:`repro.run.sweep` — cartesian scenario-matrix expansion behind
  ``xsim-run sweep``, executed as scenario-backed
  :class:`~repro.core.harness.parallel.RunSpec` campaigns.

The classic entry points remain as thin facades:
:class:`~repro.core.simulator.XSim` and
:class:`~repro.core.restart.RestartDriver` accept the same arguments as
before but resolve a scenario internally and dispatch through the
registry, so a new backend or instrument is one registry entry rather
than an edit at every launcher.
"""

from repro.run.backends import (
    BACKENDS,
    Backend,
    ScenarioOutcome,
    backend_names,
    capped_shards,
    get_backend,
    register_backend,
    run_scenario,
)
from repro.run.envvars import XSIM_ENV_VARS, EnvVar
from repro.run.instruments import (
    INSTRUMENTS,
    AttachedInstruments,
    attach_instruments,
    coerce_observer,
    instrument,
    make_shard_observer,
)
from repro.run.scenario import Scenario, load_scenario_file, parse_dims
from repro.run.sweep import expand_matrix, parse_set, run_sweep, sweep_specs

__all__ = [
    "BACKENDS",
    "AttachedInstruments",
    "Backend",
    "EnvVar",
    "INSTRUMENTS",
    "Scenario",
    "ScenarioOutcome",
    "XSIM_ENV_VARS",
    "attach_instruments",
    "backend_names",
    "capped_shards",
    "coerce_observer",
    "expand_matrix",
    "get_backend",
    "instrument",
    "load_scenario_file",
    "make_shard_observer",
    "parse_dims",
    "parse_set",
    "register_backend",
    "run_scenario",
    "run_sweep",
    "sweep_specs",
]
