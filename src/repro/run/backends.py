"""The runtime-backend registry: every way of executing a scenario.

A :class:`Backend` turns a :class:`~repro.run.scenario.Scenario` into a
running simulation behind one interface — ``execute(scenario) ->
SimulationResult`` — and is registered by name:

* ``serial`` — the single-process PDES engine;
* ``sharded-inline`` — the conservative-parallel engine with every shard
  replica driven in one process (bit-exact, debuggable, no extra cores);
* ``sharded-fork`` — one forked worker process per shard;
* ``sharded-shm`` — forked workers exchanging envelopes through
  shared-memory rings (:mod:`repro.pdes.shmring`) instead of pickled
  pipes.

The jobs x shards CPU-capping guard (:func:`capped_shards`) lives here,
so campaigns and direct API calls get the same oversubscription
protection the CLI applies; :class:`~repro.core.simulator.XSim` also
routes its ``run`` dispatch through this registry, which makes a new
execution mode one ``@register_backend`` entry instead of an edit at
every launcher.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.restart import FailureRunResult
    from repro.core.simulator import XSim
    from repro.pdes.engine import SimulationResult
    from repro.run.scenario import Scenario

#: name -> Backend instance.
BACKENDS: dict[str, "Backend"] = {}


def register_backend(backend_cls: type) -> type:
    """Class decorator: instantiate and register a backend by its name."""
    backend = backend_cls()
    if backend.name in BACKENDS:
        raise ConfigurationError(f"duplicate backend {backend.name!r}")
    BACKENDS[backend.name] = backend
    return backend_cls


def backend_names() -> tuple[str, ...]:
    """Registered backend names, registration-ordered."""
    return tuple(BACKENDS)


def get_backend(name: str) -> "Backend":
    """Look a backend up by name."""
    backend = BACKENDS.get(name)
    if backend is None:
        raise ConfigurationError(
            f"unknown backend {name!r} (registered: {', '.join(BACKENDS)})"
        )
    return backend


def capped_shards(
    shards: int, jobs: int = 1, transport: str | None = None, quiet: bool = False
) -> int:
    """Cap ``jobs * shards`` at the host's CPU count (process transports).

    Every forked/shm shard worker is a full process; running ``jobs`` pool
    workers that each fork ``shards`` engine workers silently oversubscribes
    the host and makes *everything* slower.  The inline transport stays in
    one process and is never capped.
    """
    if shards <= 1 or transport == "inline":
        return shards
    # os.cpu_count() may return None (undeterminable); treat that as one
    # core — capping hard beats silently oversubscribing an unknown host.
    ncpu = os.cpu_count() or 1
    jobs = max(1, jobs)
    if jobs * shards > ncpu:
        capped = max(1, ncpu // jobs)
        if not quiet:
            print(
                f"warning: --jobs {jobs} x --shards {shards} would oversubscribe "
                f"{ncpu} CPUs; capping shards to {capped} "
                "(use --shard-transport inline to shard without extra processes)",
                file=sys.stderr,
            )
        return capped
    return shards


class Backend:
    """One execution mode.  Subclasses set ``name`` and the shard
    ``transport`` they imply, and implement :meth:`run_engine`."""

    name: str = "?"
    #: Shard transport this backend drives (``None`` for serial).
    transport: str | None = None

    def resolve_shards(self, scenario: Scenario, quiet: bool = False) -> int:
        """The shard count this backend actually runs, after the CPU cap."""
        return capped_shards(
            scenario.shards, jobs=scenario.jobs, transport=self.transport, quiet=quiet
        )

    def make_sim(
        self,
        scenario: Scenario,
        start_time: float = 0.0,
        log_stream=None,
        observe: Any = None,
        quiet: bool = False,
    ) -> "XSim":
        """Build a configured (not yet run) simulation for the scenario."""
        from repro.core.simulator import XSim

        return XSim(
            scenario.system_config(),
            seed=scenario.seed,
            start_time=start_time,
            log_stream=log_stream,
            check=scenario.check,
            record_events=scenario.record_events,
            shards=self.resolve_shards(scenario, quiet=quiet),
            shard_transport=self.transport,
            engine=scenario.engine,
            observe=observe if observe is not None else (scenario.observe or None),
            trace_detail=scenario.trace_detail,
            scenario=scenario,
        )

    def execute(
        self, scenario: Scenario, *, log_stream=None, observe: Any = None
    ) -> "SimulationResult":
        """One single-segment run of the scenario on this backend: build
        the simulation, arm the explicit failure schedule, launch the
        strategy-armed app with a fresh store, and simulate to
        completion/abort."""
        sim = self.make_sim(scenario, log_stream=log_stream, observe=observe)
        schedule = scenario.schedule()
        if schedule:
            sim.inject_schedule(schedule)
        strategy = scenario.make_strategy()
        strategy.begin_run()
        app, make_args = scenario.make_app(strategy=strategy)
        return sim.run(app, args=make_args(strategy.segment_store()))

    def run_engine(self, sim: "XSim", app, args: tuple, nranks: int):
        """Drive an already-launched simulation to its result (the
        dispatch target of ``XSim.run``)."""
        raise NotImplementedError

    def describe(self, sim: "XSim") -> dict[str, Any]:
        """Backend block of ``XSim.describe_architecture``."""
        return {
            "name": self.name,
            "shards": sim.shards,
            "shard_transport": self.transport,
        }


@register_backend
class SerialBackend(Backend):
    """The single-process PDES engine."""

    name = "serial"
    transport = None

    def run_engine(self, sim: "XSim", app, args: tuple, nranks: int):
        if sim.observer is not None:
            t0 = perf_counter()
            result = sim.engine.run()
            sim.observer.host_span(
                t0, perf_counter(), "engine-run", track="engine",
                args={"events": sim.engine.event_count},
            )
            return result
        return sim.engine.run()


class _ShardedBackend(Backend):
    def run_engine(self, sim: "XSim", app, args: tuple, nranks: int):
        from repro.pdes.sharded import run_sharded

        return run_sharded(sim, app, args, nranks)


@register_backend
class ShardedInlineBackend(_ShardedBackend):
    """Conservative-parallel shards, all driven in one process."""

    name = "sharded-inline"
    transport = "inline"


@register_backend
class ShardedForkBackend(_ShardedBackend):
    """Conservative-parallel shards, one forked worker process each."""

    name = "sharded-fork"
    transport = "fork"


@register_backend
class ShardedShmBackend(_ShardedBackend):
    """Conservative-parallel shards over shared-memory envelope rings."""

    name = "sharded-shm"
    transport = "shm"


def backend_for(shards: int, shard_transport: str | None) -> Backend:
    """The backend a legacy ``(shards, shard_transport)`` pair selects —
    the dispatch rule every pre-registry launcher hand-coded."""
    from repro.run.scenario import Scenario

    return get_backend(
        Scenario(shards=max(1, shards), shard_transport=shard_transport).backend_name()
    )


# ----------------------------------------------------------------------
# scenario execution (single run or full restart experiment)
# ----------------------------------------------------------------------
@dataclass
class ScenarioOutcome:
    """What one scenario run produced.

    ``mode`` is ``"single"`` (one engine run; ``sim``/``result`` set) or
    ``"restart"`` (a full failure/restart experiment under
    :class:`~repro.core.restart.RestartDriver`; ``run`` set).
    """

    scenario: Scenario
    mode: str
    result: "SimulationResult | None" = None
    run: "FailureRunResult | None" = None
    sim: "XSim | None" = None
    observer: Any = None
    #: Execution facts that are *not* part of the result (and therefore
    #: never of the digest): the transport the run actually used, whether
    #: an unavailable fork start method forced a fallback, etc.
    metadata: dict = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.run.completed if self.run is not None else self.result.completed

    @property
    def last_result(self) -> "SimulationResult":
        """The (final-segment) simulation result."""
        return self.run.segments[-1].result if self.run is not None else self.result

    def digest(self) -> str:
        """Canonical result fingerprint: :func:`result_digest` of a single
        run, or the campaign digest over per-segment result digests of a
        restart experiment.  Equal across backends for equal scenarios."""
        from repro.core.harness.experiment import campaign_digest, result_digest

        if self.run is not None:
            return campaign_digest([result_digest(s.result) for s in self.run.segments])
        return result_digest(self.result)

    def summary(self) -> dict[str, Any]:
        """Primitive-only record of the outcome (campaign transport)."""
        out: dict[str, Any] = {
            "mode": self.mode,
            "backend": self.scenario.backend_name(),
            "scenario_digest": self.scenario.scenario_digest(),
            "result_digest": self.digest(),
            "completed": self.completed,
            "exit_time": self.last_result.exit_time,
            "strategy": self.scenario.strategy,
        }
        if self.run is not None:
            out.update(
                e2=self.run.e2,
                failures=self.run.f,
                restarts=self.run.restarts,
                mttf_a=self.run.mttf_a,
            )
            if self.run.strategy_facts:
                out["strategy_facts"] = dict(self.run.strategy_facts)
        else:
            out.update(failures=len(self.result.failures), restarts=0)
        return out


def _execution_metadata(stats) -> dict:
    """:attr:`ScenarioOutcome.metadata` from a run's
    :class:`~repro.pdes.sharded.ShardStats` (``{}`` for serial runs).
    Pure execution facts — deliberately excluded from the digest."""
    if stats is None:
        return {}
    return {
        "shard_transport": stats.transport,
        "requested_transport": stats.requested_transport,
        "transport_fallback": stats.transport_fallback,
        "nshards": stats.nshards,
    }


def run_scenario(
    scenario: Scenario,
    *,
    log_stream=None,
    observe: Any = None,
    force_single: bool = False,
    cache: Any = None,
) -> ScenarioOutcome:
    """Execute a scenario end to end on its resolved backend.

    A scenario with failure injection (an ``mttf`` or an explicit
    schedule) runs the full restart loop — one
    :class:`~repro.core.restart.RestartDriver` carrying this scenario
    across segments; otherwise (or with ``force_single=True``, the
    trace-record/replay path) it is one engine run via
    :meth:`Backend.execute`.

    ``cache`` selects the content-addressed result store consulted
    *before* dispatching to any backend (and written through after a
    computed run): ``None`` defers to the ``XSIM_CACHE`` /
    ``XSIM_CACHE_DIR`` environment policy, ``False`` disables caching
    for this call, and a :class:`~repro.cache.ResultCache` is used
    directly.  A hit is bit-identical to recomputation (result digest,
    summary, sim-domain exporter bytes — the ``cache-parity`` simcheck)
    and is marked in :attr:`ScenarioOutcome.metadata` as ``cache_hit``.
    Trace-recording runs (``record_events`` / ``force_single``) and
    calls with a caller-supplied observer bypass the cache, because a
    hit cannot repopulate live instrumentation objects.
    """
    from repro.cache import cacheable, resolve_cache

    store = resolve_cache(cache)
    use_cache = (
        store is not None
        and not force_single
        and observe is None
        and cacheable(scenario)
    )
    if use_cache:
        hit = store.lookup(scenario)
        if hit is not None:
            return hit
    t0 = perf_counter()
    backend = get_backend(scenario.backend_name())
    wants_driver = scenario.mttf is not None or bool(scenario.schedule())
    if wants_driver and not force_single:
        from repro.core.restart import RestartDriver

        driver = RestartDriver.from_scenario(
            scenario, log_stream=log_stream, observe=observe
        )
        run = driver.run()
        outcome = ScenarioOutcome(
            scenario=scenario, mode="restart", run=run, observer=driver.observer,
            metadata=_execution_metadata(getattr(driver, "shard_stats", None)),
        )
    else:
        sim = backend.make_sim(scenario, log_stream=log_stream, observe=observe)
        schedule = scenario.schedule()
        if schedule:
            sim.inject_schedule(schedule)
        strategy = scenario.make_strategy()
        strategy.begin_run()
        app, make_args = scenario.make_app(strategy=strategy)
        result = sim.run(app, args=make_args(strategy.segment_store()))
        outcome = ScenarioOutcome(
            scenario=scenario, mode="single", result=result, sim=sim,
            observer=sim.observer,
            metadata=_execution_metadata(getattr(sim, "shard_stats", None)),
        )
    if use_cache:
        if outcome.observer is not None:
            outcome.observer.host_instant(
                perf_counter(), "cache-miss", track="cache",
                args={"stored": True},
            )
        store.store(scenario, outcome, wall_s=perf_counter() - t0)
        note = store.pop_warning()
        if note is not None:
            # Surface the corruption/disable fallback in the run's own
            # SimLog (the recomputation the warning promised happened).
            outcome.last_result.log.log(0.0, "cache", note, level="warning")
    return outcome
