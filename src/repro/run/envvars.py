"""Registry of every ``XSIM_*`` environment variable the toolkit reads.

One table, consumed three ways:

* :meth:`Scenario.resolve <repro.run.scenario.Scenario.resolve>` applies
  the environment layer of the precedence chain (library defaults <
  scenario file < environment < flags/kwargs) from it;
* the "Environment variables" table in ``docs/INTERNALS.md`` documents it
  (a test asserts the documented set matches this registry, and that this
  registry matches the variables the source actually reads);
* ``xsim-run`` help text references the per-flag equivalents.

Adding a variable here without documenting it (or vice versa) fails the
``test_env_var_docs_match_code`` test.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnvVar:
    """One environment knob: where it reads and what it overrides."""

    name: str
    #: The Scenario field the variable sets (the precedence chain slots
    #: every variable between the scenario file and explicit flags).
    field: str
    #: Equivalent ``xsim-run`` flag.
    cli_flag: str
    description: str


#: Every environment variable the code reads, keyed by name.
XSIM_ENV_VARS: dict[str, EnvVar] = {
    v.name: v
    for v in (
        EnvVar(
            "XSIM_FAILURES",
            field="failures",
            cli_flag="--xsim-failures",
            description='failure schedule as "rank@time,rank@time" '
            "(times accept unit suffixes, e.g. 3@100s)",
        ),
        EnvVar(
            "XSIM_CHECK",
            field="check",
            cli_flag="--check",
            description="any value other than empty/0 enables the runtime "
            "invariant sanitizer on every run",
        ),
        EnvVar(
            "XSIM_SHARDS",
            field="shards",
            cli_flag="--shards",
            description="shard count for the conservative-parallel engine "
            "(1 = serial)",
        ),
        EnvVar(
            "XSIM_SHARD_TRANSPORT",
            field="shard_transport",
            cli_flag="--shard-transport",
            description='shard worker transport: "fork" (pickled pipes), '
            '"shm" (shared-memory envelope rings), or "inline" '
            "(single-process); digests are transport-independent",
        ),
        EnvVar(
            "XSIM_JOBS",
            field="jobs",
            cli_flag="--jobs",
            description="worker-process count for campaigns of independent "
            "runs (1 = serial in-process)",
        ),
        EnvVar(
            "XSIM_ENGINE",
            field="engine",
            cli_flag="--engine",
            description='event-core selection: "heap" (tuple binary heap) '
            'or "flat" (slab-pool flat core); digest-identical',
        ),
        EnvVar(
            "XSIM_STRATEGY",
            field="strategy",
            cli_flag="--strategy",
            description="resilience strategy for every run: one of the "
            "registered names (``ckpt``, ``ckpt-multilevel``, "
            "``replication``, ``none``); parameters come from the "
            "scenario file's ``[resilience] strategy`` table",
        ),
    )
}


#: Environment switches that are *not* scenario fields (they gate tooling
#: behavior, not the simulated run) — documented in the same INTERNALS
#: table and covered by the same docs-vs-code sync test.
XSIM_ENV_SWITCHES: dict[str, str] = {
    "XSIM_FULL_SCALE": (
        "any value other than empty/0 adds the paper-exact 32,768-rank "
        "measurement to ``xsim-run bench`` (tens of seconds)"
    ),
    "XSIM_CACHE": (
        "any value other than empty/0 enables the content-addressed "
        "result cache on every run and sweep (``--cache``/``--no-cache`` "
        "override per invocation); hits are bit-identical to recomputation"
    ),
    "XSIM_CACHE_DIR": (
        "directory of the result cache (``--cache-dir``; default "
        "``~/.cache/xsim``) — safe to share between parallel workers and "
        "concurrent invocations"
    ),
    "XSIM_EXPLORE_CI": (
        "``xsim-run explore`` stopping target: sample until every "
        "stratum's Wilson half-width is within this (``--ci-width``; "
        "default 0.15)"
    ),
    "XSIM_EXPLORE_BATCH": (
        "cells per ``xsim-run explore`` refinement batch "
        "(``--batch``; default 16)"
    ),
    "XSIM_EXPLORE_MAX_CELLS": (
        "``xsim-run explore`` simulation budget: hard cap on cells "
        "sampled per campaign (``--max-cells``; default 1024)"
    ),
}


def read_environment(environ=None) -> dict[str, object]:
    """The environment layer of the scenario precedence chain: a partial
    ``{field: value}`` mapping containing only the variables that are set
    (and non-empty) in ``environ`` (default ``os.environ``)."""
    import os

    from repro.util.errors import ConfigurationError

    env = os.environ if environ is None else environ
    out: dict[str, object] = {}
    raw = env.get("XSIM_FAILURES", "").strip()
    if raw:
        out["failures"] = raw
    raw = env.get("XSIM_CHECK", "").strip()
    if raw:
        out["check"] = raw != "0"
    for name, field in (("XSIM_SHARDS", "shards"), ("XSIM_JOBS", "jobs")):
        raw = env.get(name, "").strip()
        if not raw:
            continue
        try:
            value = int(raw)
        except ValueError as exc:
            raise ConfigurationError(f"{name} must be an integer, got {raw!r}") from exc
        if value < 1:
            raise ConfigurationError(f"{name} must be >= 1, got {value}")
        out[field] = value
    raw = env.get("XSIM_SHARD_TRANSPORT", "").strip()
    if raw:
        if raw not in ("fork", "inline", "shm"):
            raise ConfigurationError(
                f"XSIM_SHARD_TRANSPORT must be 'fork', 'inline' or 'shm', got {raw!r}"
            )
        out["shard_transport"] = raw
    raw = env.get("XSIM_ENGINE", "").strip()
    if raw:
        if raw not in ("heap", "flat"):
            raise ConfigurationError(
                f"XSIM_ENGINE must be 'heap' or 'flat', got {raw!r}"
            )
        out["engine"] = raw
    raw = env.get("XSIM_STRATEGY", "").strip()
    if raw:
        from repro.resilience import strategy_names

        if raw not in strategy_names():
            raise ConfigurationError(
                f"XSIM_STRATEGY must be one of {', '.join(strategy_names())}, "
                f"got {raw!r}"
            )
        out["strategy"] = raw
    return out
