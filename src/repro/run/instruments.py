"""The instrumentation attach point: one hook table for every backend.

Three cross-cutting instruments exist today — the runtime invariant
:class:`~repro.check.sanitizer.Sanitizer`, the
:class:`~repro.check.trace.EventTrace` dispatch recorder, and the
:class:`~repro.obs.Observer` telemetry bus.  Each used to be wired by hand
at every launcher (``XSim.__init__``, the sharded worker setup, the
restart driver, the campaign executor); adding a fourth meant five edit
sites.  Now every launcher calls :func:`attach_instruments` on its
engine/world pair and the table does the wiring, so a new instrument is
one :func:`instrument` registration.

An attach hook receives the host (anything with ``engine`` and ``world``
attributes, i.e. an :class:`~repro.core.simulator.XSim` or a sharded
replica) plus the instrumentation switches, wires its instrument in, and
returns the instrument object (or ``None`` when its switch is off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.errors import ConfigurationError

#: name -> attach hook.  Iteration order is registration order.
INSTRUMENTS: dict[str, Callable[..., Any]] = {}


def instrument(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register an instrumentation attach hook under ``name``."""

    def register(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in INSTRUMENTS:
            raise ConfigurationError(f"duplicate instrument {name!r}")
        INSTRUMENTS[name] = fn
        return fn

    return register


@dataclass
class AttachedInstruments:
    """What :func:`attach_instruments` wired onto one engine/world pair."""

    checker: Any = None
    event_trace: Any = None
    observer: Any = None
    #: Results of instruments beyond the three first-class ones.
    extras: dict[str, Any] = field(default_factory=dict)


def attach_instruments(
    host: Any,
    *,
    check: bool | None = None,
    record_events: bool = False,
    observe: Any = None,
    trace_detail: bool = False,
) -> AttachedInstruments:
    """Run every registered hook against ``host`` (its ``engine`` and
    ``world``), returning the attached instrument objects.

    ``check=None`` defers to the ``XSIM_CHECK`` environment variable;
    ``observe`` accepts ``True``/``False``/``None`` or an existing
    :class:`~repro.obs.Observer` (e.g. one shared across restart
    segments).
    """
    attached = AttachedInstruments()
    switches = {
        "check": check,
        "record_events": record_events,
        "observe": observe,
        "trace_detail": trace_detail,
    }
    for name, hook in INSTRUMENTS.items():
        result = hook(host, **switches)
        if name == "sanitizer":
            attached.checker = result
        elif name == "event-trace":
            attached.event_trace = result
        elif name == "observer":
            attached.observer = result
        else:
            attached.extras[name] = result
    return attached


def coerce_observer(observe: Any, detail: bool = False):
    """``None``/``False`` -> no observer; ``True`` -> a fresh
    :class:`~repro.obs.Observer`; an Observer instance -> itself."""
    if observe is None or observe is False:
        return None
    from repro.obs import Observer

    if isinstance(observe, Observer):
        return observe
    return Observer(detail=detail)


def make_shard_observer(parent_observer):
    """A fresh shard-local bus mirroring the parent's configuration.

    Shard workers must not record into the parent observer directly (the
    inline shard-0 worker shares the parent sim, so events would
    duplicate at merge time); they record locally and ship events back in
    the shard report.
    """
    if parent_observer is None:
        return None
    from repro.obs import Observer

    return Observer(detail=parent_observer.detail)


# ----------------------------------------------------------------------
# the three first-class instruments
# ----------------------------------------------------------------------
@instrument("sanitizer")
def _attach_sanitizer(host: Any, *, check: bool | None = None, **_: Any):
    from repro.check import checking_enabled
    from repro.check.sanitizer import Sanitizer

    if not (check if check is not None else checking_enabled()):
        return None
    checker = Sanitizer(host.engine, host.world)
    host.engine.check = checker
    host.world.check = checker
    return checker


@instrument("event-trace")
def _attach_event_trace(host: Any, *, record_events: bool = False, **_: Any):
    from repro.check.trace import EventTrace

    if not record_events:
        return None
    trace = EventTrace()
    host.engine.event_trace = trace
    return trace


@instrument("observer")
def _attach_observer(
    host: Any, *, observe: Any = None, trace_detail: bool = False, **_: Any
):
    observer = coerce_observer(observe, detail=trace_detail)
    if observer is None:
        return None
    host.engine.obs = observer
    host.world.obs = observer
    return observer
