"""The :class:`Scenario` spec: one declarative description of one run.

A scenario captures everything a run needs — the simulated machine, the
application and its arguments, the failure schedule, the checkpoint/restart
policy, the seed, the execution backend, and the instrumentation switches —
as a frozen, picklable, TOML-round-trippable value with a stable digest.

Layered resolution (:meth:`Scenario.resolve`)::

    library defaults  <  scenario file (TOML)  <  XSIM_* environment
                      <  CLI flags / explicit kwargs

Each layer overrides the previous one per field; the environment layer is
the :mod:`repro.run.envvars` registry.  The TOML form groups fields into
``[machine]``, ``[app]``, ``[resilience]``, ``[execution]``, and
``[instrumentation]`` tables; an optional ``[sweep]`` table (not part of
the scenario itself) declares a parameter grid for ``xsim-run sweep``
(see :mod:`repro.run.sweep`)::

    [machine]
    ranks = 64
    topology = "torus"

    [resilience]
    failures = "3@100s"

    [sweep]
    interval = [500, 250, 125]
    mttf = [6000.0, 3000.0]
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Callable

from repro.core.faults.schedule import FailureSchedule
from repro.core.harness.config import SystemConfig, validate_dims
from repro.run.envvars import read_environment
from repro.util.errors import ConfigurationError

#: TOML table -> ordered (toml key, Scenario field) pairs.  This mapping
#: *is* the file format; every Scenario field appears exactly once.
TOML_LAYOUT: dict[str, tuple[tuple[str, str], ...]] = {
    "machine": (
        ("ranks", "ranks"),
        ("topology", "topology"),
        ("dims", "dims"),
        ("latency", "latency"),
        ("bandwidth", "bandwidth"),
        ("eager_threshold", "eager_threshold"),
        ("detection_timeout", "detection_timeout"),
        ("slowdown", "slowdown"),
        ("collectives", "collectives"),
    ),
    "app": (
        ("name", "app"),
        ("iterations", "iterations"),
        ("interval", "interval"),
    ),
    "resilience": (
        ("failures", "failures"),
        ("mttf", "mttf"),
        ("max_restarts", "max_restarts"),
        ("strategy", "strategy"),
        ("strategy_params", "strategy_params"),
    ),
    "execution": (
        ("seed", "seed"),
        ("backend", "backend"),
        ("engine", "engine"),
        ("shards", "shards"),
        ("shard_transport", "shard_transport"),
        ("jobs", "jobs"),
    ),
    "instrumentation": (
        ("check", "check"),
        ("record_events", "record_events"),
        ("observe", "observe"),
        ("trace_detail", "trace_detail"),
        ("trace_out", "trace_out"),
    ),
}

APP_NAMES = ("heat3d", "cg", "stencil2d", "ring", "amr")
TOPOLOGY_NAMES = ("torus", "mesh", "fattree", "star", "crossbar")
ENGINE_NAMES = ("heap", "flat")


def parse_dims(text: str) -> tuple[int, ...]:
    """Parse the ``--dims`` grid format, e.g. ``8x8x4`` -> ``(8, 8, 4)``."""
    parts = [p.strip() for p in str(text).replace(",", "x").split("x") if p.strip()]
    if not parts:
        raise ConfigurationError(f"empty dims spec {text!r}; expected e.g. 8x8x4")
    try:
        dims = tuple(int(p) for p in parts)
    except ValueError as exc:
        raise ConfigurationError(
            f"bad dims spec {text!r}; expected positive integers like 8x8x4"
        ) from exc
    if any(d < 1 for d in dims):
        raise ConfigurationError(f"dims must be >= 1, got {dims}")
    return dims


@dataclass(frozen=True)
class Scenario:
    """One full run, declaratively.  Defaults are the library defaults
    (identical to the bare ``xsim-run app`` invocation)."""

    # -- machine -------------------------------------------------------
    ranks: int = 64
    topology: str = "torus"
    dims: tuple[int, ...] | None = None
    latency: str = "1us"
    bandwidth: str = "32GB/s"
    eager_threshold: str = "256kB"
    detection_timeout: str = "10s"
    slowdown: float = 1000.0
    collectives: str = "linear"
    # -- application ---------------------------------------------------
    app: str = "heat3d"
    iterations: int = 1000
    interval: int = 1000
    # -- resilience ----------------------------------------------------
    failures: str = ""
    mttf: float | None = None
    max_restarts: int = 1000
    #: Resilience strategy name (see :mod:`repro.resilience`): "ckpt",
    #: "ckpt-multilevel", "replication", or "none".
    strategy: str = "ckpt"
    #: Strategy parameters as a canonical sorted tuple of (key, value)
    #: pairs; accepts a dict at construction (the TOML sub-table form
    #: ``strategy = {name = "...", k = 4}``).
    strategy_params: tuple = ()
    # -- execution -----------------------------------------------------
    seed: int = 0
    backend: str | None = None
    engine: str = "heap"
    shards: int = 1
    shard_transport: str | None = None
    jobs: int = 1
    # -- instrumentation -----------------------------------------------
    check: bool | None = None
    record_events: bool = False
    observe: bool = False
    trace_detail: bool = False
    trace_out: str = ""

    def __post_init__(self) -> None:
        # Normalize representation-equivalent inputs (TOML integers,
        # list-form dims) so equality and the digest are canonical.
        object.__setattr__(self, "slowdown", float(self.slowdown))
        if self.mttf is not None:
            object.__setattr__(self, "mttf", float(self.mttf))
        if self.dims is not None:
            object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))
        for name in ("latency", "bandwidth", "eager_threshold", "detection_timeout"):
            object.__setattr__(self, name, str(getattr(self, name)))
        # A trace destination implies the observability bus; normalizing
        # here keeps flag-built and file-built scenarios digest-equal.
        if self.trace_out and not self.observe:
            object.__setattr__(self, "observe", True)
        params = self.strategy_params
        items = params.items() if isinstance(params, dict) else (tuple(p) for p in params)
        object.__setattr__(
            self,
            "strategy_params",
            tuple(sorted((str(k), v) for k, v in items)),
        )
        if self.ranks < 1:
            raise ConfigurationError(f"ranks must be >= 1, got {self.ranks}")
        if self.interval < 1:
            raise ConfigurationError(f"interval must be >= 1, got {self.interval}")
        if self.app not in APP_NAMES:
            raise ConfigurationError(
                f"unknown app {self.app!r} (choose from {', '.join(APP_NAMES)})"
            )
        if self.topology not in TOPOLOGY_NAMES:
            raise ConfigurationError(
                f"unknown topology {self.topology!r} "
                f"(choose from {', '.join(TOPOLOGY_NAMES)})"
            )
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r} "
                f"(choose from {', '.join(ENGINE_NAMES)})"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.shard_transport not in (None, "fork", "inline", "shm"):
            raise ConfigurationError(
                f"unknown shard transport {self.shard_transport!r}"
            )
        # Validates the strategy name and parameter spellings eagerly,
        # and yields the physical rank count (replication runs factor-R
        # replicas, so the simulated machine is wider than the app).
        strategy = self.make_strategy()
        if self.dims is not None:
            # paper_system places one rank per node, so nnodes == ranks.
            validate_dims(self.dims, self.topology, strategy.physical_ranks(self.ranks))
        # Parse eagerly so a bad schedule fails at build, not at launch.
        FailureSchedule.parse(self.failures)

    # ------------------------------------------------------------------
    # layered resolution
    # ------------------------------------------------------------------
    @classmethod
    def resolve(
        cls,
        file: "str | Path | None" = None,
        environ: dict[str, str] | None = None,
        use_environment: bool = True,
        **overrides: Any,
    ) -> "Scenario":
        """Build a scenario through the full precedence chain.

        ``file`` supplies the TOML layer; the environment layer reads the
        ``XSIM_*`` variables (from ``environ`` or ``os.environ``; disable
        with ``use_environment=False``); ``overrides`` is the flag/kwarg
        layer, where ``None`` values mean "not given at this layer".
        """
        layers: dict[str, Any] = {}
        if file is not None:
            layers.update(_toml_fields(Path(file).read_text()))
        if use_environment:
            layers.update(read_environment(environ))
        layers.update({k: v for k, v in overrides.items() if v is not None})
        known = {f.name for f in fields(cls)}
        unknown = set(layers) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**layers)

    def with_(self, **overrides: Any) -> "Scenario":
        """Copy with field overrides (sweep expansion uses this)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, dict[str, Any]]:
        """Nested ``{table: {key: value}}`` form (the TOML layout), with
        ``None`` fields omitted — primitives only, safe to pickle/JSON."""
        out: dict[str, dict[str, Any]] = {}
        for table, pairs in TOML_LAYOUT.items():
            body = {}
            for key, field_name in pairs:
                value = getattr(self, field_name)
                if value is None:
                    continue
                if field_name == "strategy_params":
                    if value:
                        body[key] = dict(value)
                    continue
                body[key] = list(value) if isinstance(value, tuple) else value
            out[table] = body
        return out

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; unknown tables/keys are rejected."""
        return cls(**_dict_fields(doc))

    def to_toml(self) -> str:
        """Canonical TOML rendering (every non-``None`` field, fixed
        table and key order) — ``from_toml(to_toml(s)) == s``."""
        lines: list[str] = []
        for table, body in self.to_dict().items():
            if not body:
                continue
            lines.append(f"[{table}]")
            for key, value in body.items():
                lines.append(f"{key} = {_toml_value(value)}")
            lines.append("")
        return "\n".join(lines)

    @classmethod
    def from_toml(cls, text: str) -> "Scenario":
        """Parse a scenario TOML document (``[sweep]`` table ignored)."""
        return cls(**_toml_fields(text))

    def to_toml_file(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_toml())

    @classmethod
    def from_toml_file(cls, path: "str | Path") -> "Scenario":
        return cls.from_toml(Path(path).read_text())

    def scenario_digest(self) -> str:
        """Stable sha256 fingerprint of the spec (floats via ``float.hex``
        — two scenarios digest equal iff every field is identical)."""
        h = hashlib.sha256()
        for f in sorted(fields(self), key=lambda f: f.name):
            value = getattr(self, f.name)
            if isinstance(value, float):
                rendered = value.hex()
            elif isinstance(value, tuple):
                rendered = "x".join(str(v) for v in value)
            else:
                rendered = repr(value)
            h.update(f"{f.name}={rendered}\n".encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # derived objects
    # ------------------------------------------------------------------
    def backend_name(self) -> str:
        """The registered backend this scenario runs on.

        Explicit ``backend`` wins (and must agree with ``shard_transport``
        if both are given); otherwise the name derives from ``shards`` and
        ``shard_transport`` exactly as the pre-registry launchers did.
        """
        if self.backend is not None:
            implied = {
                "sharded-fork": "fork",
                "sharded-inline": "inline",
                "sharded-shm": "shm",
            }.get(self.backend)
            if (
                self.shard_transport is not None
                and implied is not None
                and implied != self.shard_transport
            ):
                raise ConfigurationError(
                    f"backend {self.backend!r} conflicts with "
                    f"shard_transport {self.shard_transport!r}"
                )
            return self.backend
        if self.shards <= 1:
            return "serial"
        if self.shard_transport == "inline":
            return "sharded-inline"
        if self.shard_transport == "shm":
            return "sharded-shm"
        return "sharded-fork"

    def make_strategy(self):
        """Instantiate this scenario's resilience strategy (validated)."""
        from repro.resilience import make_strategy

        return make_strategy(self)

    def system_config(self) -> SystemConfig:
        """The simulated machine this scenario describes (sized for the
        strategy's *physical* rank count — replication runs factor-R
        replicas of the logical job)."""
        return SystemConfig.paper_system(
            nranks=self.make_strategy().physical_ranks(self.ranks),
            topology_kind=self.topology,
            topology_dims=self.dims,
            link_latency=self.latency,
            link_bandwidth=self.bandwidth,
            eager_threshold=self.eager_threshold,
            detection_timeout=self.detection_timeout,
            slowdown=self.slowdown,
            collective_algorithm=self.collectives,
        )

    def make_app(self, strategy=None) -> tuple[Callable, Callable]:
        """``(app, make_args)``: the application generator function and
        the per-segment argument builder (given the checkpoint store).

        ``strategy`` is the run's live strategy instance (built fresh
        when omitted): it sets the checkpoint cadence the app runs at
        (multi-level checkpoints ``k`` times as often into cheap tiers)
        and wraps the app (replication's redMPI facade).  The workload is
        always decomposed for the *logical* ``self.ranks``.
        """
        if strategy is None:
            strategy = self.make_strategy()
        interval = strategy.app_interval(self.interval)
        if self.app == "heat3d":
            from repro.apps.heat3d import HeatConfig, heat3d

            overrides: dict[str, Any] = {}
            if interval != self.interval:
                # Keep the halo-exchange cadence pinned to the nominal
                # interval so communication is comparable across strategies.
                overrides["exchange_interval"] = self.interval
            workload = HeatConfig.paper_workload(
                checkpoint_interval=interval,
                nranks=self.ranks,
                iterations=self.iterations,
                **overrides,
            )
            app, make_args = heat3d, (lambda store: (workload, store))
        elif self.app == "stencil2d":
            from repro.apps.stencil2d import Stencil2dConfig, stencil2d

            cfg = Stencil2dConfig.for_ranks(self.ranks, checkpoint_interval=interval)
            app, make_args = stencil2d, (lambda store: (cfg, store))
        elif self.app == "cg":
            from repro.apps.cg import CgConfig, cg

            cfg = CgConfig.for_ranks(
                self.ranks, max_iterations=self.iterations,
                checkpoint_interval=interval,
            )
            app, make_args = cg, (lambda store: (cfg, store))
        elif self.app == "amr":
            from repro.apps.amr import AmrConfig, amr

            cfg = AmrConfig.for_ranks(
                self.ranks, iterations=self.iterations,
                checkpoint_interval=interval,
            )
            app, make_args = amr, (lambda store: (cfg, store))
        else:
            from repro.apps.ring import RingConfig, ring

            cfg = RingConfig(rounds=self.iterations)
            app, make_args = ring, (lambda store: (cfg,))
        return strategy.wrap_app(app), make_args

    def schedule(self) -> FailureSchedule:
        """The explicit failure schedule (may be empty)."""
        return FailureSchedule.parse(self.failures)


# ----------------------------------------------------------------------
# TOML plumbing
# ----------------------------------------------------------------------
_FIELD_BY_TABLE_KEY = {
    (table, key): field_name
    for table, pairs in TOML_LAYOUT.items()
    for key, field_name in pairs
}


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, list):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    if isinstance(value, dict):
        body = ", ".join(f"{k} = {_toml_value(v)}" for k, v in value.items())
        return "{" + body + "}"
    text = str(value)
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _dict_fields(
    doc: dict[str, Any], ignore_tables: tuple[str, ...] = ()
) -> dict[str, Any]:
    """Flatten a nested ``{table: {key: value}}`` document into Scenario
    constructor kwargs, rejecting unknown tables/keys (except ``sweep``
    and any ``ignore_tables`` a caller owns, e.g. ``explore``)."""
    out: dict[str, Any] = {}
    for table, body in doc.items():
        if table == "sweep" or table in ignore_tables:
            continue
        if table not in TOML_LAYOUT:
            raise ConfigurationError(
                f"unknown scenario table [{table}] "
                f"(expected {', '.join(TOML_LAYOUT)} or sweep)"
            )
        if not isinstance(body, dict):
            raise ConfigurationError(f"scenario table [{table}] must be a table")
        for key, value in body.items():
            field_name = _FIELD_BY_TABLE_KEY.get((table, key))
            if field_name is None:
                raise ConfigurationError(f"unknown scenario key {table}.{key}")
            if field_name == "strategy" and isinstance(value, dict):
                # The sub-table form: [resilience.strategy] with a name
                # key plus strategy parameters.
                params = dict(value)
                name = params.pop("name", None)
                if not isinstance(name, str):
                    raise ConfigurationError(
                        "[resilience.strategy] needs a string 'name' key "
                        '(e.g. strategy = {name = "ckpt-multilevel", k = 4})'
                    )
                out["strategy"] = name
                out.setdefault("strategy_params", params)
                continue
            out[field_name] = value
    return out


def _parse_toml(text: str) -> dict[str, Any]:
    import tomllib

    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigurationError(f"bad scenario TOML: {exc}") from exc


def _toml_fields(text: str) -> dict[str, Any]:
    return _dict_fields(_parse_toml(text))


def load_scenario_file(
    path: "str | Path",
    environ: dict[str, str] | None = None,
    use_environment: bool = True,
    ignore_tables: tuple[str, ...] = (),
    **overrides: Any,
) -> tuple[Scenario, dict[str, list]]:
    """Load a scenario file plus its optional ``[sweep]`` grid, resolving
    the environment and override layers on top of the file layer.

    Returns ``(scenario, grid)`` where ``grid`` maps Scenario field names
    to value lists (empty when the file has no ``[sweep]`` table).
    ``ignore_tables`` names tables owned by the caller (the explorer's
    ``[explore]`` table rides in scenario files this way).
    """
    text = Path(path).read_text()
    doc = _parse_toml(text)
    grid_raw = doc.get("sweep", {})
    if not isinstance(grid_raw, dict):
        raise ConfigurationError("[sweep] must be a table of field = [values]")
    known = {f.name for f in fields(Scenario)}
    grid: dict[str, list] = {}
    for key, values in grid_raw.items():
        if key not in known:
            raise ConfigurationError(f"unknown sweep field {key!r}")
        if not isinstance(values, list) or not values:
            raise ConfigurationError(
                f"sweep field {key!r} must map to a non-empty list"
            )
        grid[key] = values
    layers = _dict_fields(doc, ignore_tables=ignore_tables)
    if use_environment:
        layers.update(read_environment(environ))
    layers.update({k: v for k, v in overrides.items() if v is not None})
    unknown = set(layers) - known
    if unknown:
        raise ConfigurationError(
            f"unknown scenario field(s): {', '.join(sorted(unknown))}"
        )
    return Scenario(**layers), grid
