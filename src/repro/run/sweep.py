"""Scenario-matrix expansion: one base scenario, a cartesian grid, a campaign.

The unit of a real resilience experiment is a *matrix* of scenarios —
checkpoint interval x system MTTF in the paper's Table II, fault schedule
x machine parameters in FINJ-style campaigns.  This module expands a base
:class:`~repro.run.scenario.Scenario` and a ``{field: [values]}`` grid
into the full cartesian list of scenarios and executes them as
scenario-backed :class:`~repro.core.harness.parallel.RunSpec` campaigns
(serial or fanned out over a worker pool — results identical either way).

Grids come from a ``[sweep]`` table in the scenario TOML or from repeated
``--set field=v1,v2`` flags on ``xsim-run sweep``.
"""

from __future__ import annotations

from dataclasses import fields
from itertools import product
from typing import Any

from repro.run.scenario import Scenario, parse_dims
from repro.util.errors import ConfigurationError


def expand_matrix(base: Scenario, grid: dict[str, list]) -> list[Scenario]:
    """Every combination of the grid applied to ``base``, in deterministic
    order: the first grid field varies slowest (dict insertion order)."""
    if not grid:
        return [base]
    names = list(grid)
    for name, values in grid.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise ConfigurationError(
                f"sweep field {name!r} must map to a non-empty list"
            )
    return [
        base.with_(**dict(zip(names, combo)))
        for combo in product(*(grid[n] for n in names))
    ]


def parse_set(text: str, base: Scenario | None = None) -> tuple[str, list]:
    """Parse one ``--set field=v1,v2,...`` grid axis, coercing values to
    the scenario field's type (``--set mttf=6000,3000`` yields floats)."""
    if "=" not in text:
        raise ConfigurationError(
            f"bad --set {text!r}; expected field=value[,value...]"
        )
    name, _, raw = text.partition("=")
    name = name.strip()
    known = {f.name for f in fields(Scenario)}
    if name not in known:
        raise ConfigurationError(
            f"unknown sweep field {name!r} (scenario fields: "
            f"{', '.join(sorted(known))})"
        )
    if name == "strategy_params":
        raise ConfigurationError(
            "strategy_params cannot be a sweep axis; sweep 'strategy' and "
            "set per-strategy parameters in the scenario file's "
            "[resilience] strategy table"
        )
    items = [v.strip() for v in raw.split(",") if v.strip()]
    if not items:
        raise ConfigurationError(f"--set {text!r} names no values")
    return name, [_coerce(name, v) for v in items]


def _field_kinds() -> dict[str, str]:
    """Scenario field name -> coercion kind, derived from the dataclass
    annotations so a new field can never silently fall through as ``str``
    (the old hand-maintained sets did exactly that, and a stray string in
    a numeric field changes the scenario digest)."""
    kinds: dict[str, str] = {}
    for f in fields(Scenario):
        ann = f.type if isinstance(f.type, str) else getattr(f.type, "__name__", "")
        if "tuple" in ann:
            kinds[f.name] = "dims"
        elif "bool" in ann:
            kinds[f.name] = "bool"
        elif "int" in ann:
            kinds[f.name] = "int"
        elif "float" in ann:
            kinds[f.name] = "float"
        else:
            kinds[f.name] = "str"
    return kinds


_FIELD_KINDS = _field_kinds()


def _coerce(name: str, value: str) -> Any:
    """Coerce one ``--set`` value to the scenario field's declared type.

    Booleans are parsed from the usual spellings (``"False"`` is False,
    not a truthy non-empty string), and integer fields accept scientific
    notation for integral values (``"1e3"`` -> 1000) since that is how
    sweep axes are often written.
    """
    kind = _FIELD_KINDS[name]
    if kind == "bool":
        lowered = value.lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ConfigurationError(f"bad boolean {value!r} for sweep field {name!r}")
    if kind == "dims":
        return parse_dims(value)
    try:
        if kind == "int":
            try:
                return int(value)
            except ValueError:
                as_float = float(value)
                if not as_float.is_integer():
                    raise ConfigurationError(
                        f"bad value {value!r} for integer sweep field {name!r}"
                    )
                return int(as_float)
        if kind == "float":
            return float(value)
    except (ValueError, OverflowError) as exc:
        raise ConfigurationError(
            f"bad value {value!r} for sweep field {name!r}"
        ) from exc
    return value


def sweep_specs(scenarios: list[Scenario], cache_dir: str | None = None) -> list:
    """Scenario-backed run specs for a campaign executor.  ``cache_dir``
    makes every worker write/read the shared result cache at that path."""
    from repro.core.harness.parallel import RunSpec

    return [
        RunSpec.from_scenario(s, key=("sweep", i), cache_dir=cache_dir)
        for i, s in enumerate(scenarios)
    ]


def run_sweep(
    base: Scenario,
    grid: dict[str, list],
    jobs: int | None = None,
    cache: Any = None,
) -> list[tuple[Scenario, dict[str, Any]]]:
    """Expand and execute the matrix; returns ``(scenario, summary)``
    pairs in grid order.  ``jobs`` defaults to the base scenario's
    ``jobs`` field; every cell is an independent deterministic run, so
    pool results are identical to serial ones.

    ``cache`` (``None`` = environment policy, ``False`` = off, or a
    :class:`~repro.cache.ResultCache`) partitions the matrix up front:
    cells already in the content-addressed store are answered by lookup
    — their summaries are identical to recomputation — and only the
    misses fan out to the campaign executor (whose workers write the
    same store, so a rerun of the sweep is pure lookups).  With a cache
    active every summary gains presentation keys ``cached`` (served
    from the store?) and ``saved_s`` (the original compute wall time a
    hit avoided); the result values themselves are unchanged.
    """
    scenarios = expand_matrix(base, grid)
    summaries = run_cells(
        scenarios,
        jobs=base.jobs if jobs is None else jobs,
        cache=cache,
        key_prefix="sweep",
    )
    return list(zip(scenarios, summaries))


def run_cells(
    scenarios: list[Scenario],
    jobs: int = 1,
    cache: Any = None,
    key_prefix: str = "cells",
) -> list[dict[str, Any]]:
    """Execute an arbitrary list of scenarios as one cache-partitioned
    campaign; returns summaries in input order.

    This is the shared execution core of :func:`run_sweep` and the
    adaptive explorer (:mod:`repro.explore`): cells already in the
    content-addressed store are answered by lookup, the misses fan out to
    a :class:`~repro.core.harness.parallel.CampaignExecutor` pool whose
    workers write the same store.  With a cache active every summary
    gains presentation keys ``cached``/``saved_s``; result values are
    identical either way.
    """
    from repro.cache import resolve_cache
    from repro.core.harness.parallel import CampaignExecutor, RunSpec

    store = resolve_cache(cache)
    summaries: list[dict[str, Any] | None] = [None] * len(scenarios)
    if store is not None:
        for i, scenario in enumerate(scenarios):
            outcome = store.lookup(scenario)
            if outcome is not None:
                summary = outcome.summary()
                summary["cached"] = True
                summary["saved_s"] = float(outcome.metadata.get("cache_wall_s") or 0.0)
                summaries[i] = summary
    todo = [i for i, s in enumerate(summaries) if s is None]
    if todo:
        executor = CampaignExecutor(max_workers=jobs)
        cache_dir = str(store.root) if store is not None else None
        # Keyed by position in the *full* list so error messages and
        # observers name the original cell.
        specs = [
            RunSpec.from_scenario(scenarios[i], key=(key_prefix, i), cache_dir=cache_dir)
            for i in todo
        ]
        for i, summary in zip(todo, executor.run(specs)):
            if store is not None:
                summary = dict(summary)
                summary["cached"] = False
                summary["saved_s"] = 0.0
            summaries[i] = summary
    return summaries  # type: ignore[return-value]


def replace_spec_key(spec, key: tuple):
    """A copy of a :class:`~repro.core.harness.parallel.RunSpec` under a
    different campaign key."""
    from dataclasses import replace

    return replace(spec, key=key)
