"""Shared utilities for the xsim-resilience toolkit.

This package holds small, dependency-free helpers used across the
simulator: unit parsing/formatting (:mod:`repro.util.units`), descriptive
statistics in the shape xSim and Finject report them
(:mod:`repro.util.stats`), deterministic named random-number streams
(:mod:`repro.util.rng`), and the toolkit exception hierarchy
(:mod:`repro.util.errors`).
"""

from repro.util.errors import (
    CheckpointError,
    ConfigurationError,
    DeadlockError,
    SimulationError,
    XsimError,
)
from repro.util.rng import RngStreams
from repro.util.stats import SummaryStats, summarize
from repro.util.units import (
    format_size,
    format_time,
    parse_size,
    parse_time,
)

__all__ = [
    "CheckpointError",
    "ConfigurationError",
    "DeadlockError",
    "RngStreams",
    "SimulationError",
    "SummaryStats",
    "XsimError",
    "format_size",
    "format_time",
    "parse_size",
    "parse_time",
    "summarize",
]
