"""Terminal-friendly ASCII charts for experiment reports.

The harness and examples render small series (E2 vs. checkpoint interval,
energy vs. design point) directly in the terminal, keeping the toolkit
dependency-free.  Two forms:

* :func:`bar_chart` — labelled horizontal bars, scaled to a width;
* :func:`sparkline` — a one-line eight-level profile of a series.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.util.errors import ConfigurationError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar_chart(
    items: Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "",
    zero_based: bool = True,
) -> str:
    """Render ``(label, value)`` pairs as horizontal bars.

    ``zero_based=False`` scales bars between the min and max instead of
    [0, max], which makes small relative differences visible.

    >>> print(bar_chart([("a", 2.0), ("b", 4.0)], width=4))
    a | ██   2
    b | ████ 4
    """
    if not items:
        raise ConfigurationError("bar_chart needs at least one item")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    values = [float(v) for _, v in items]
    if any(not math.isfinite(v) for v in values):
        raise ConfigurationError("bar_chart values must be finite")
    lo = 0.0 if zero_based else min(values)
    hi = max(values)
    span = hi - lo
    label_w = max(len(label) for label, _ in items)
    val_w = max(len(_fmt(v)) for v in values)
    lines = []
    for (label, _), v in zip(items, values):
        frac = 1.0 if span == 0 else max(0.0, (v - lo) / span)
        n = int(round(frac * width))
        if v > lo and n == 0:
            n = 1  # nonzero values always get a visible bar
        bar = "█" * n
        lines.append(f"{label.ljust(label_w)} | {bar.ljust(width)} {_fmt(v).rjust(val_w)}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line profile of a series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    vals = [float(v) for v in values]
    if not vals:
        raise ConfigurationError("sparkline needs at least one value")
    if any(not math.isfinite(v) for v in vals):
        raise ConfigurationError("sparkline values must be finite")
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span == 0:
        return _SPARK_LEVELS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1) + 0.5)
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return f"{int(v):,}"
    return f"{v:,.2f}"
