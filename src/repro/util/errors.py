"""Exception hierarchy for the xsim-resilience toolkit.

All toolkit-raised exceptions derive from :class:`XsimError` so callers can
catch simulator problems without masking ordinary Python errors.  Exceptions
that model *simulated* conditions (an MPI error delivered to an application,
a virtual process being killed by fault injection) live next to the
subsystems that raise them (:mod:`repro.mpi.errhandler`,
:mod:`repro.pdes.context`); this module only defines host-level errors.
"""

from __future__ import annotations


class XsimError(Exception):
    """Base class for all toolkit errors."""


class ConfigurationError(XsimError):
    """A simulation, model, or experiment was configured inconsistently."""


class SimulationError(XsimError):
    """The simulation engine reached an internal inconsistency."""


class DeadlockError(SimulationError):
    """Conservative-PDES deadlock: blocked processes with an empty event queue.

    Mirrors xSim's deadlock detection inside its simulator-internal
    synchronization mechanism.  The message lists the blocked virtual
    processes with the wait tag *and* the VP state reported separately, so
    a legitimately empty wait tag is shown as such rather than being
    silently replaced by the state name.
    """

    def __init__(self, blocked: list[tuple[int, str, str]]):
        self.blocked = list(blocked)
        head = ", ".join(
            f"rank {r} waiting on {tag!r} [{state}]" for r, tag, state in self.blocked[:8]
        )
        more = "" if len(self.blocked) <= 8 else f", ... ({len(self.blocked)} total)"
        super().__init__(f"simulation deadlock: {head}{more}")


class ShardedParityError(SimulationError):
    """A sharded run reached a state it cannot reproduce bit-identically.

    Raised by :mod:`repro.pdes.sharded` when a simulation does something the
    conservative-window protocol cannot mirror against the serial engine —
    e.g. an unscheduled failure inside a safe window, a simulator-internal
    sync point spanning shard boundaries, or a communicator handle crossing
    shards.  The run must fall back to ``--shards 1``; silently diverging
    from the serial oracle is never an option.
    """


class ShardWorkerDied(SimulationError):
    """A forked/shm shard worker process died mid-protocol.

    Raised by the coordinator's liveness polling instead of blocking on
    ``Conn.recv`` forever; names the shard and how many protocol rounds
    (setup/window/lockstep/apply replies) it had completed.
    """

    def __init__(self, shard_id: int, last_round: int):
        self.shard_id = shard_id
        self.last_round = last_round
        super().__init__(
            f"shard {shard_id} worker process died; last completed "
            f"protocol round: {last_round}"
        )


class CheckpointError(XsimError):
    """A checkpoint store operation failed (e.g. loading a corrupted set)."""


class InvariantViolation(SimulationError):
    """A runtime invariant check (simcheck, ``XSIM_CHECK=1``) failed.

    Carries the invariant name and a structured diagnostic ``dump`` (SimLog
    tail, VP states, heap snapshot — see
    :meth:`repro.check.sanitizer.Sanitizer.dump`) so violations can be
    written out as artifacts by CI and inspected after the fact.
    """

    def __init__(self, invariant: str, detail: str, dump: dict | None = None):
        self.invariant = invariant
        self.detail = detail
        self.dump = dump if dump is not None else {}
        super().__init__(f"invariant {invariant!r} violated: {detail}")


class CampaignTaskError(XsimError):
    """A campaign task raised inside a worker process.

    Substituted for the original exception only when that exception itself
    cannot cross the process boundary (fails to pickle); otherwise the
    original is re-raised in the parent.  Keeping a dedicated type ensures
    a task's own ``TypeError``/``AttributeError`` is never mistaken for
    pool breakage by the executor's fallback logic.
    """

    def __init__(self, kind: str, key: tuple, exc_type: str, detail: str):
        self.kind = kind
        self.key = key
        self.exc_type = exc_type
        self.detail = detail
        super().__init__(f"task {kind!r} {key!r} raised {exc_type}: {detail}")

    def __reduce__(self):
        return (CampaignTaskError, (self.kind, self.key, self.exc_type, self.detail))
