"""Exception hierarchy for the xsim-resilience toolkit.

All toolkit-raised exceptions derive from :class:`XsimError` so callers can
catch simulator problems without masking ordinary Python errors.  Exceptions
that model *simulated* conditions (an MPI error delivered to an application,
a virtual process being killed by fault injection) live next to the
subsystems that raise them (:mod:`repro.mpi.errhandler`,
:mod:`repro.pdes.context`); this module only defines host-level errors.
"""

from __future__ import annotations


class XsimError(Exception):
    """Base class for all toolkit errors."""


class ConfigurationError(XsimError):
    """A simulation, model, or experiment was configured inconsistently."""


class SimulationError(XsimError):
    """The simulation engine reached an internal inconsistency."""


class DeadlockError(SimulationError):
    """Conservative-PDES deadlock: blocked processes with an empty event queue.

    Mirrors xSim's deadlock detection inside its simulator-internal
    synchronization mechanism.  The message lists the blocked virtual
    processes with the wait tag *and* the VP state reported separately, so
    a legitimately empty wait tag is shown as such rather than being
    silently replaced by the state name.
    """

    def __init__(self, blocked: list[tuple[int, str, str]]):
        self.blocked = list(blocked)
        head = ", ".join(
            f"rank {r} waiting on {tag!r} [{state}]" for r, tag, state in self.blocked[:8]
        )
        more = "" if len(self.blocked) <= 8 else f", ... ({len(self.blocked)} total)"
        super().__init__(f"simulation deadlock: {head}{more}")


class CheckpointError(XsimError):
    """A checkpoint store operation failed (e.g. loading a corrupted set)."""
