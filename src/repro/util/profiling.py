"""Lightweight simulator performance instrumentation.

The hot-path optimization work (stale-event skipping, advance coalescing,
matching fast paths) needs observability that does not itself slow the
event loop down.  This module reads counters the engine and MPI layer
already maintain and adds exactly one optional hook: an application (or
harness) may call :meth:`~repro.pdes.engine.Engine.mark_phase` to record
named phase boundaries, which is a no-op costing one attribute read unless
an :class:`EngineProfiler` is attached.

Usage::

    sim = XSim(system)
    with EngineProfiler(sim.engine, world=sim.world) as prof:
        result = sim.run(heat3d, args=(workload, store))
    report = prof.report()
    print(report.render())

The report's ``events_per_sec`` is the end-to-end simulator throughput
(dispatched plus coalesced events over wall-clock time) — the figure
``BENCH_pdes.json`` records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.mpi.world import MpiWorld
    from repro.pdes.engine import Engine


@dataclass(frozen=True)
class PhaseStats:
    """One named span between two phase marks (or a mark and the end)."""

    label: str
    virtual_seconds: float
    events: int


@dataclass(frozen=True)
class ProfileReport:
    """Snapshot of one profiled simulation run."""

    wall_seconds: float
    event_count: int
    events_per_sec: float
    stale_skipped: int
    """Dead-VP events lazily deleted at dispatch instead of executed."""
    coalesced_advances: int
    """Advance resumes taken inline without a heap round-trip."""
    match_scan_calls: int
    """Wildcard matching scans performed by the MPI layer (the indexed
    exact-match fast paths never scan; 0 when no world was attached)."""
    match_scan_length: int
    """Total queue length walked across all wildcard matching scans."""
    phases: tuple[PhaseStats, ...]
    # -- flat-core pool/batch gauges (all zero on the heap engine) ------
    pool_allocs: int = 0
    """Event-slot allocations served by the flat core's slab pool."""
    pool_reuses: int = 0
    """Allocations served from the free list (no slab growth)."""
    pool_peak: int = 0
    """Peak simultaneously-live event slots (high-water occupancy)."""
    slab_grows: int = 0
    """Times the pool grew by one slab (steady state: 0 per run phase)."""
    batch_max: int = 0
    """Longest same-timestamp dispatch batch drained in one heap visit."""
    # -- sharded-run fields (all zero for a serial run) ----------------
    shards: int = 0
    """Worker count of the sharded engine (0: the run was serial)."""
    shard_windows: int = 0
    """Conservative safe windows executed (one coordinator round each)."""
    shard_lockstep_rounds: int = 0
    """Per-timestamp lockstep rounds (failure/abort instants)."""
    shard_barrier_seconds: float = 0.0
    """Coordinator wall time beyond the slowest worker per round — the
    window/barrier protocol overhead on top of useful work."""
    shard_critical_path_seconds: float = 0.0
    """Sum over rounds of the slowest participating worker's wall time
    (lower bound on multi-core wall clock for this partition)."""
    shard_worker_busy_seconds: float = 0.0
    """Total worker wall time across rounds (the parallelizable work)."""
    shard_imbalance: float = 0.0
    """Events-per-shard imbalance, max/mean (1.0 = perfectly balanced)."""
    shard_cross_messages: int = 0
    """Messages that crossed a shard boundary."""

    @property
    def mean_match_scan(self) -> float:
        """Mean queue length per wildcard matching scan."""
        if self.match_scan_calls == 0:
            return 0.0
        return self.match_scan_length / self.match_scan_calls

    @property
    def free_reuse_ratio(self) -> float:
        """Fraction of slot allocations served from the free list (0.0
        when no pool allocations happened — i.e. on the heap engine)."""
        if self.pool_allocs == 0:
            return 0.0
        return self.pool_reuses / self.pool_allocs

    def as_record(self) -> dict[str, Any]:
        """JSON-ready form (what the benchmark records emit)."""
        return {
            "wall_seconds": self.wall_seconds,
            "event_count": self.event_count,
            "events_per_sec": self.events_per_sec,
            "stale_skipped": self.stale_skipped,
            "coalesced_advances": self.coalesced_advances,
            "match_scan_calls": self.match_scan_calls,
            "match_scan_length": self.match_scan_length,
            "mean_match_scan": self.mean_match_scan,
            "pool_allocs": self.pool_allocs,
            "pool_reuses": self.pool_reuses,
            "pool_peak": self.pool_peak,
            "slab_grows": self.slab_grows,
            "batch_max": self.batch_max,
            "free_reuse_ratio": self.free_reuse_ratio,
            "shards": self.shards,
            "shard_windows": self.shard_windows,
            "shard_lockstep_rounds": self.shard_lockstep_rounds,
            "shard_barrier_seconds": self.shard_barrier_seconds,
            "shard_critical_path_seconds": self.shard_critical_path_seconds,
            "shard_worker_busy_seconds": self.shard_worker_busy_seconds,
            "shard_imbalance": self.shard_imbalance,
            "shard_cross_messages": self.shard_cross_messages,
            "phases": [
                {
                    "label": p.label,
                    "virtual_seconds": p.virtual_seconds,
                    "events": p.events,
                }
                for p in self.phases
            ],
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"events          {self.event_count:>12,}",
            f"wall time       {self.wall_seconds:>12.3f} s",
            f"throughput      {self.events_per_sec:>12,.0f} events/s",
            f"stale skipped   {self.stale_skipped:>12,}",
            f"coalesced adv.  {self.coalesced_advances:>12,}",
            f"matching scans  {self.match_scan_calls:>12,} (mean length {self.mean_match_scan:.1f})",
        ]
        if self.pool_allocs:
            lines.extend(
                [
                    f"pool peak       {self.pool_peak:>12,} slots"
                    f" ({self.slab_grows:,} slab grows)",
                    f"free-list reuse {self.free_reuse_ratio:>12.1%}"
                    f" ({self.pool_reuses:,}/{self.pool_allocs:,} allocs)",
                    f"max batch       {self.batch_max:>12,} events",
                ]
            )
        if self.shards:
            lines.extend(
                [
                    f"shards          {self.shards:>12,}",
                    f"safe windows    {self.shard_windows:>12,}"
                    f" (+{self.shard_lockstep_rounds:,} lockstep rounds)",
                    f"barrier overhead{self.shard_barrier_seconds:>12.3f} s",
                    f"critical path   {self.shard_critical_path_seconds:>12.3f} s"
                    f" (of {self.shard_worker_busy_seconds:.3f} s worker time)",
                    f"shard imbalance {self.shard_imbalance:>12.2f} (max/mean events)",
                    f"cross-shard msgs{self.shard_cross_messages:>12,}",
                ]
            )
        for p in self.phases:
            lines.append(
                f"  phase {p.label:<16} {p.virtual_seconds:>12.3f} vs  {p.events:>10,} events"
            )
        return "\n".join(lines)


class EngineProfiler:
    """Attach profiling to one engine run (context manager).

    Attaching installs the phase-mark list the engine's
    :meth:`~repro.pdes.engine.Engine.mark_phase` appends to; everything
    else is read from counters the simulator maintains anyway, so the
    instrumented run's hot path is unchanged.  Pass the
    :class:`~repro.mpi.world.MpiWorld` to include matching-scan
    statistics.
    """

    def __init__(self, engine: "Engine", world: "MpiWorld | None" = None):
        self.engine = engine
        self.world = world
        self._marks: list[tuple[str, float, int]] = []
        engine._phase_marks = self._marks
        self._t0 = time.perf_counter()
        self._wall: float | None = None

    def __enter__(self) -> "EngineProfiler":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def stop(self) -> None:
        """Freeze the wall-clock measurement (idempotent)."""
        if self._wall is None:
            self._wall = time.perf_counter() - self._t0

    def report(self) -> ProfileReport:
        """Build the report from the engine's current counters."""
        self.stop()
        engine = self.engine
        wall = self._wall or 0.0
        phases: list[PhaseStats] = []
        marks = self._marks + [("<end>", engine.now, engine.event_count)]
        for (label, t0, e0), (_, t1, e1) in zip(marks, marks[1:]):
            phases.append(PhaseStats(label=label, virtual_seconds=t1 - t0, events=e1 - e0))
        # A sharded run (repro.pdes.sharded) leaves its coordination
        # statistics on the engine at merge time; serial runs have none.
        stats = getattr(engine, "shard_stats", None)
        return ProfileReport(
            wall_seconds=wall,
            event_count=engine.event_count,
            events_per_sec=engine.event_count / wall if wall > 0 else 0.0,
            stale_skipped=engine.stale_skipped,
            coalesced_advances=engine.coalesced_advances,
            match_scan_calls=self.world.match_scan_calls if self.world is not None else 0,
            match_scan_length=self.world.match_scan_length if self.world is not None else 0,
            phases=tuple(phases),
            # Flat-core slab/batch gauges; the heap engine has none of
            # these attributes, so a heap run reports all-zero.
            pool_allocs=getattr(engine, "pool_allocs", 0),
            pool_reuses=getattr(engine, "pool_reuses", 0),
            pool_peak=getattr(engine, "pool_peak", 0),
            slab_grows=getattr(engine, "slab_grows", 0),
            batch_max=getattr(engine, "batch_max", 0),
            shards=stats.nshards if stats is not None else 0,
            shard_windows=stats.windows if stats is not None else 0,
            shard_lockstep_rounds=stats.lockstep_rounds if stats is not None else 0,
            shard_barrier_seconds=stats.barrier_seconds if stats is not None else 0.0,
            shard_critical_path_seconds=(
                stats.critical_path_seconds if stats is not None else 0.0
            ),
            shard_worker_busy_seconds=(
                stats.worker_busy_seconds if stats is not None else 0.0
            ),
            shard_imbalance=stats.imbalance if stats is not None else 0.0,
            shard_cross_messages=stats.cross_shard_messages if stats is not None else 0,
        )
