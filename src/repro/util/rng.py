"""Deterministic named random-number streams.

The paper stresses that "the experiments are repeatable as the simulator and
the application are deterministic".  To keep every stochastic component
reproducible *and* independent — the failure injector must draw the same
rank/time pairs regardless of whether the soft-error injector also ran —
each consumer asks :class:`RngStreams` for a stream by name.  Streams are
derived from the root seed with :class:`numpy.random.SeedSequence` spawning
keyed by the stream name, so adding a new named stream never perturbs
existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """A family of independent, reproducible :class:`numpy.random.Generator` s.

    >>> streams = RngStreams(1234)
    >>> a = streams.get("failures")
    >>> b = RngStreams(1234).get("failures")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so a consumer that draws incrementally keeps its position.
        """
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` rewound to its start."""
        self._streams.pop(name, None)
        return self.get(name)

    def spawn_child(self, name: str, index: int) -> np.random.Generator:
        """Sub-stream ``index`` of the named stream family, per
        :meth:`numpy.random.SeedSequence.spawn` semantics.

        ``SeedSequence.spawn`` derives child ``i`` by appending ``i`` to
        the parent's spawn key, so this constructs
        ``SeedSequence(entropy=seed, spawn_key=(crc32(name),)).spawn(index + 1)[index]``
        directly in O(1) — no predecessor children are materialized.
        Children are pairwise independent and collision-free by
        construction, unlike ad-hoc name-mangled keys (``f"{name}/{i}"``),
        whose 32-bit CRC keys can collide between sub-streams.  A fresh
        generator is returned on every call (campaign workers own their
        positions), unlike the cached :meth:`get` streams.
        """
        if index < 0:
            raise ValueError(f"spawn index must be >= 0, got {index}")
        key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key, index))
        return np.random.Generator(np.random.PCG64(seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
