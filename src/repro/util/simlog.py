"""Structured simulator log.

xSim prints informational messages on the command line when notable
simulated events occur — e.g. the time and rank of an injected process
failure, or of an ``MPI_Abort``.  :class:`SimLog` records those messages as
structured entries (so tests and the experiment harness can assert on them)
and optionally echoes them to a stream like the original tool.

Long campaigns can bound the memory the log holds: ``max_entries`` turns
the backing store into a ring buffer keeping only the newest entries
(``dropped`` counts evictions), and ``min_level`` filters out low-severity
entries before they are stored at all.  Both default off — an unbounded
log recording every entry, the historical behavior.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import IO, Iterator, MutableSequence

#: Severity order of log levels, least to most severe.
LEVELS: dict[str, int] = {"debug": 0, "info": 1, "warning": 2, "error": 3}


@dataclass(frozen=True)
class LogEntry:
    """One informational simulator message."""

    time: float
    """Virtual time (seconds) the event occurred at."""
    category: str
    """Machine-matchable kind, e.g. ``"failure"``, ``"abort"``, ``"detect"``."""
    rank: int | None
    """Simulated MPI rank concerned, or ``None`` for whole-simulation events."""
    message: str
    level: str = "info"
    """Severity (see :data:`LEVELS`); informational by default."""

    def render(self) -> str:
        """The command-line form of the message."""
        where = f"rank {self.rank}" if self.rank is not None else "simulator"
        return f"[xsim {self.time:14.6f}s {where}] {self.category}: {self.message}"


@dataclass
class SimLog:
    """Event log with category filtering, optionally bounded.

    Parameters
    ----------
    stream:
        If given, every recorded entry is also written there as it is
        logged, mirroring xSim's command-line output.
    max_entries:
        When set, keep only the newest ``max_entries`` entries (ring
        buffer); :attr:`dropped` counts the evicted ones.  ``None`` (the
        default) keeps everything.
    min_level:
        Entries below this severity are discarded instead of recorded
        (they are not echoed to ``stream`` either).  The default
        (``"debug"``) records every entry.
    """

    stream: IO[str] | None = None
    max_entries: int | None = None
    min_level: str = "debug"
    entries: MutableSequence[LogEntry] = field(default_factory=list)
    #: Entries evicted by the ring buffer (0 when unbounded).
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.min_level not in LEVELS:
            raise ValueError(
                f"min_level must be one of {sorted(LEVELS)}, got {self.min_level!r}"
            )
        if self.max_entries is not None:
            if self.max_entries < 1:
                raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")
            seeded = len(self.entries)
            self.entries = deque(self.entries, maxlen=self.max_entries)
            # Seed entries evicted by the maxlen cap count as dropped too,
            # keeping len(log) + log.dropped equal to the events ever logged.
            self.dropped += seeded - len(self.entries)

    def log(
        self,
        time: float,
        category: str,
        message: str,
        rank: int | None = None,
        level: str = "info",
    ) -> None:
        """Record (and optionally echo) one entry, subject to the filters."""
        if LEVELS[level] < LEVELS[self.min_level]:
            return
        entry = LogEntry(time=time, category=category, rank=rank, message=message, level=level)
        if self.max_entries is not None and len(self.entries) == self.max_entries:
            self.dropped += 1
        self.entries.append(entry)
        if self.stream is not None:
            print(entry.render(), file=self.stream)

    def category(self, category: str) -> list[LogEntry]:
        """All entries of one category, in log order."""
        return [e for e in self.entries if e.category == category]

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
